//! Segment files: the header format, naming, and the fail-closed scan.
//!
//! A segment is `seg-<first_seq, 20 digits>.wal`: a 26-byte header
//! followed by records ([`crate::record`]). The header is
//!
//! ```text
//!     0            14          22        26
//!     +------------+-----------+----------+
//!     | magic      | u64 LE    | u32 LE   |
//!     | 14 bytes   | first_seq | crc32    |
//!     +------------+-----------+----------+
//! ```
//!
//! with the crc32 covering magic plus first_seq. The zero-padded
//! decimal name makes lexical directory order equal sequence order.
//!
//! # Torn tail vs structural damage
//!
//! The scan applies the WAL's central distinction:
//!
//! * A **sealed** segment (any segment that is not the last) was
//!   fsynced in full before its successor was created. Every byte of
//!   it must parse; any fault is structural damage and fails the scan.
//! * The **active** (last) segment may legally end mid-record — a
//!   crash tears the tail. The scan stops at the first fault, reports
//!   the valid prefix length so the caller can truncate the file, and
//!   counts the discarded bytes. Damage *before* the tail looks
//!   identical to a torn tail from this side, which is exactly why
//!   acked durability is defined by the fsync boundary, not by what a
//!   later scan salvages.
//!
//! Sequence numbers are strictly consecutive: the first record must
//! carry the header's `first_seq`, and every record increments by one.
//! A gap or regression is structural (records are appended under one
//! lock; nothing can legally skip).

use crate::record::{parse_record, Record};
use hh_space::checksum::crc32;

/// Magic prefix of every segment file.
pub const SEGMENT_MAGIC: &[u8; 14] = b"hh.wal.seg.v1\n";

/// Byte length of the segment header.
pub const SEGMENT_HEADER_LEN: usize = 26;

/// Builds the file name for the segment whose first record is
/// `first_seq`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("seg-{first_seq:020}.wal")
}

/// Parses a segment file name back to its `first_seq`, if it is one.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".wal")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Encodes the 26-byte segment header.
pub fn encode_header(first_seq: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut out = [0u8; SEGMENT_HEADER_LEN];
    out[..14].copy_from_slice(SEGMENT_MAGIC);
    out[14..22].copy_from_slice(&first_seq.to_le_bytes());
    let crc = crc32(&out[..22]);
    out[22..].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Verifies a header and returns its `first_seq`.
pub fn decode_header(bytes: &[u8]) -> Result<u64, String> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(format!(
            "segment header truncated at {} of {SEGMENT_HEADER_LEN} bytes",
            bytes.len()
        ));
    }
    if &bytes[..14] != SEGMENT_MAGIC {
        return Err("segment magic mismatch".to_string());
    }
    let stored = u32::from_le_bytes(bytes[22..26].try_into().expect("sized above"));
    if crc32(&bytes[..22]) != stored {
        return Err("segment header checksum mismatch".to_string());
    }
    Ok(u64::from_le_bytes(
        bytes[14..22].try_into().expect("sized above"),
    ))
}

/// What a segment scan found.
#[derive(Debug)]
pub struct SegmentScan {
    /// Records in order, sequence numbers consecutive from the header.
    pub records: Vec<Record>,
    /// Bytes of the file that parsed cleanly (header plus whole
    /// records). For an active segment with a torn tail this is where
    /// the file should be truncated before appending resumes.
    pub valid_len: u64,
    /// Bytes past `valid_len` that were discarded (torn tail). Always
    /// zero for sealed segments (damage there fails the scan instead).
    pub discarded_bytes: u64,
}

/// Scans one segment's bytes. `sealed` selects the damage policy (see
/// the module docs); `expect_first` is the sequence number continuity
/// requires of the header.
pub fn scan_segment(bytes: &[u8], sealed: bool, expect_first: u64) -> Result<SegmentScan, String> {
    let first_seq = decode_header(bytes)?;
    if first_seq != expect_first {
        return Err(format!(
            "segment claims first seq {first_seq} but continuity requires {expect_first}"
        ));
    }
    let mut records = Vec::new();
    let mut off = SEGMENT_HEADER_LEN;
    let mut next_seq = first_seq;
    loop {
        if off == bytes.len() {
            break;
        }
        match parse_record(&bytes[off..]) {
            Ok((rec, used)) => {
                if rec.seq != next_seq {
                    return Err(format!(
                        "record seq {} where continuity requires {next_seq}",
                        rec.seq
                    ));
                }
                next_seq += 1;
                off += used;
                records.push(rec);
            }
            Err(fault) => {
                if sealed {
                    return Err(format!("sealed segment damaged at byte {off}: {fault}"));
                }
                break;
            }
        }
    }
    Ok(SegmentScan {
        records,
        valid_len: off as u64,
        discarded_bytes: (bytes.len() - off) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode_record;

    fn segment_bytes(first_seq: u64, payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = encode_header(first_seq).to_vec();
        for (i, p) in payloads.iter().enumerate() {
            encode_record(first_seq + i as u64, p, &mut buf);
        }
        buf
    }

    #[test]
    fn names_sort_in_sequence_order_and_parse_back() {
        let names: Vec<String> = [1u64, 9, 10, 4_000_000_007]
            .iter()
            .map(|&s| segment_file_name(s))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names);
        for (name, &seq) in names.iter().zip(&[1u64, 9, 10, 4_000_000_007]) {
            assert_eq!(parse_segment_file_name(name), Some(seq));
        }
        assert_eq!(parse_segment_file_name("seg-12.wal"), None);
        assert_eq!(parse_segment_file_name("spec.hhs"), None);
    }

    #[test]
    fn clean_scan_returns_consecutive_records() {
        let buf = segment_bytes(5, &[b"a", b"bb", b"ccc"]);
        let scan = scan_segment(&buf, true, 5).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].seq, 7);
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert_eq!(scan.discarded_bytes, 0);
    }

    #[test]
    fn torn_tail_truncates_in_active_but_fails_sealed() {
        let whole = segment_bytes(1, &[b"first", b"second"]);
        let first_end = {
            let one = segment_bytes(1, &[b"first"]);
            one.len()
        };
        for cut in first_end + 1..whole.len() {
            let torn = &whole[..cut];
            let scan = scan_segment(torn, false, 1).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, first_end);
            assert_eq!(scan.discarded_bytes as usize, cut - first_end);
            assert!(scan_segment(torn, true, 1).is_err(), "sealed cut at {cut}");
        }
    }

    #[test]
    fn header_damage_and_seq_gaps_are_structural_everywhere() {
        let mut buf = segment_bytes(3, &[b"x"]);
        buf[2] ^= 0x01;
        assert!(scan_segment(&buf, false, 3).is_err());

        // A record claiming the wrong seq is a gap, not a torn tail.
        let mut gap = encode_header(1).to_vec();
        encode_record(2, b"skipped one", &mut gap);
        assert!(scan_segment(&gap, false, 1).is_err());

        // Continuity with the previous segment is enforced.
        let fine = segment_bytes(9, &[b"y"]);
        assert!(scan_segment(&fine, true, 8).is_err());
        assert!(scan_segment(&fine, true, 9).is_ok());
    }
}
