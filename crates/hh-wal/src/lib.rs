//! Segmented write-ahead log for the serving daemon.
//!
//! PR 8's daemon bounded crash loss to "at most the un-checkpointed
//! window"; this crate closes that window. Every acked ingest is
//! appended here as a checksummed record *before* the ack, so recovery
//! can replay `snapshot + WAL tail` and lose nothing that was ever
//! acknowledged.
//!
//! The BDW16 setting makes this unusually cheap: the entire recovery
//! state is an O(ε⁻¹ log n)-word snapshot plus a log whose depth is
//! bounded by the checkpoint cadence — so real group-commit durability
//! costs one amortized fsync per interval, not per ack.
//!
//! The layers, bottom up:
//!
//! * [`record`] — one checksummed unit: `[len][seq + payload][crc32]`,
//!   fail-closed decode (bounded lengths, no panic on any byte soup).
//! * [`segment`] — header format, naming, and the scan that separates
//!   legal torn tails (active segment, truncate) from structural
//!   damage (sealed segment, quarantine).
//! * [`wal`] — the log: append / commit under an [`FsyncPolicy`],
//!   group-commit thread, rotation, replay, and checkpoint-gated
//!   [`Wal::compact`].

pub mod record;
pub mod segment;
pub mod wal;

pub use record::{Record, RecordFault, MAX_RECORD_LEN};
pub use wal::{
    record_disk_len, replay_dir, FsyncPolicy, Wal, WalConfig, WalError, WalReplay, WalStats,
};
