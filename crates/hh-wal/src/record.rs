//! The WAL record codec: one checksummed unit of appended payload.
//!
//! A record on disk is
//!
//! ```text
//!     0        4            4+8          4+8+P        4+8+P+4
//!     +--------+------------+--------------+------------+
//!     | u32 LE |  u64 LE    |   payload    |  u32 LE    |
//!     | len    |  seq       |   (P bytes)  |  crc32     |
//!     +--------+------------+--------------+------------+
//!               \_________ body (len bytes) _/
//! ```
//!
//! `len` counts the body (sequence number plus payload); the crc32
//! trailer (the same IEEE-reflected table `hh-space` uses for its
//! snapshot checksums) covers exactly the body bytes. Decoding is
//! fail-closed in the v3 snapshot-codec discipline: the length prefix
//! is bounded by [`MAX_RECORD_LEN`] *before* any slice is taken, a
//! short buffer is reported as [`RecordFault::Incomplete`] rather than
//! read past, and a checksum mismatch never yields a byte of payload.
//!
//! The parser deliberately cannot distinguish a torn tail from a
//! corrupted record — a torn write of the length field itself produces
//! arbitrary garbage. The segment scanner makes that call by position:
//! any fault in a **sealed** segment is structural damage (sealed
//! segments were fsynced whole before rotation), while a fault at the
//! tail of the **active** segment is the torn tail a crash legally
//! leaves behind (see [`crate::segment`]).

use hh_space::checksum::crc32;

/// Hard ceiling on one record body. An ingest frame is bounded well
/// under this by the server's batch cap; anything larger in a length
/// prefix is damage, not data.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Bytes of framing around a record body: the u32 length prefix plus
/// the u32 crc32 trailer.
pub const RECORD_OVERHEAD: usize = 8;

/// The body's fixed prefix: the u64 sequence number.
const SEQ_LEN: usize = 8;

/// One decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotone sequence number (assigned by the log at append).
    pub seq: u64,
    /// Opaque payload bytes (the caller's encoding).
    pub payload: Vec<u8>,
}

/// Why a buffer position does not parse as a complete record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordFault {
    /// Fewer bytes remain than the record (or its framing) needs. At
    /// the tail of an active segment this is the normal torn write.
    Incomplete,
    /// The length prefix is outside `(SEQ_LEN..=MAX_RECORD_LEN)` — it
    /// cannot be a real record under any completion of the buffer.
    BadLength(u32),
    /// The body is present but its crc32 trailer does not match.
    Checksum,
}

impl std::fmt::Display for RecordFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Incomplete => write!(f, "record truncated mid-write"),
            Self::BadLength(len) => write!(f, "record length {len} outside any legal record"),
            Self::Checksum => write!(f, "record checksum mismatch"),
        }
    }
}

/// The on-disk byte length of a record carrying `payload_len` payload
/// bytes.
pub fn encoded_len(payload_len: usize) -> usize {
    RECORD_OVERHEAD + SEQ_LEN + payload_len
}

/// Appends the encoding of `(seq, payload)` to `out`.
///
/// # Panics
/// If `payload` would overflow [`MAX_RECORD_LEN`] — the caller bounds
/// payloads (the server's frame caps are far below this).
pub fn encode_record(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    let body_len = SEQ_LEN + payload.len();
    assert!(
        body_len <= MAX_RECORD_LEN,
        "record payload of {} bytes exceeds the {MAX_RECORD_LEN}-byte ceiling",
        payload.len()
    );
    out.reserve(RECORD_OVERHEAD + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let body_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Parses one record at the start of `buf`. Returns the record and the
/// bytes it consumed, or the structured fault that stopped it.
pub fn parse_record(buf: &[u8]) -> Result<(Record, usize), RecordFault> {
    if buf.len() < 4 {
        return Err(RecordFault::Incomplete);
    }
    let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    // Bound the length before any arithmetic sizes an access from it.
    if (body_len as usize) < SEQ_LEN || body_len as usize > MAX_RECORD_LEN {
        return Err(RecordFault::BadLength(body_len));
    }
    let body_len = body_len as usize;
    let total = RECORD_OVERHEAD + body_len;
    if buf.len() < total {
        return Err(RecordFault::Incomplete);
    }
    let body = &buf[4..4 + body_len];
    let stored = u32::from_le_bytes([
        buf[4 + body_len],
        buf[4 + body_len + 1],
        buf[4 + body_len + 2],
        buf[4 + body_len + 3],
    ]);
    if crc32(body) != stored {
        return Err(RecordFault::Checksum);
    }
    let seq = u64::from_le_bytes(body[..SEQ_LEN].try_into().expect("bounded above"));
    Ok((
        Record {
            seq,
            payload: body[SEQ_LEN..].to_vec(),
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_seq_and_payload() {
        let mut buf = Vec::new();
        encode_record(7, b"hello", &mut buf);
        encode_record(8, &[], &mut buf);
        let (first, used) = parse_record(&buf).unwrap();
        assert_eq!(first.seq, 7);
        assert_eq!(first.payload, b"hello");
        assert_eq!(used, encoded_len(5));
        let (second, used2) = parse_record(&buf[used..]).unwrap();
        assert_eq!(second.seq, 8);
        assert!(second.payload.is_empty());
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn every_truncation_is_incomplete_or_bad_length_never_a_panic() {
        let mut buf = Vec::new();
        encode_record(42, &[0xAB; 33], &mut buf);
        for cut in 0..buf.len() {
            match parse_record(&buf[..cut]) {
                Err(RecordFault::Incomplete | RecordFault::BadLength(_)) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_caught() {
        let mut buf = Vec::new();
        encode_record(9, &[1, 2, 3, 4, 5, 6, 7, 8], &mut buf);
        for i in 0..buf.len() {
            let mut bent = buf.clone();
            bent[i] ^= 0x20;
            assert!(
                parse_record(&bent).is_err(),
                "flip at byte {i} slipped through"
            );
        }
    }

    #[test]
    fn hostile_length_is_rejected_before_any_slice() {
        let mut evil = (u32::MAX).to_le_bytes().to_vec();
        evil.extend_from_slice(&[0u8; 64]);
        assert_eq!(
            parse_record(&evil).unwrap_err(),
            RecordFault::BadLength(u32::MAX)
        );
        // A length below the seq prefix is equally impossible.
        let mut tiny = 4u32.to_le_bytes().to_vec();
        tiny.extend_from_slice(&[0u8; 64]);
        assert_eq!(parse_record(&tiny).unwrap_err(), RecordFault::BadLength(4));
    }
}
