//! The log itself: append, commit (durability wait), replay, segment
//! rotation, and checkpoint-gated compaction.
//!
//! # Durability model
//!
//! [`Wal::append`] assigns the next sequence number and buffers the
//! record into the active segment (one `write` syscall, no fsync).
//! [`Wal::commit`] then makes a sequence number *durable* according to
//! the configured [`FsyncPolicy`]:
//!
//! * [`FsyncPolicy::PerBatch`] — `commit` fsyncs the active segment
//!   inline. Every acked batch survives power loss; every ack pays a
//!   full fsync (cheap on the battery-backed or tmpfs stores the tests
//!   use, expensive on spinning metal).
//! * [`FsyncPolicy::GroupCommit`] — a dedicated committer thread
//!   fsyncs at most once per interval; `commit` blocks until the
//!   group fsync covering its sequence number lands. Concurrent acks
//!   share one fsync, so the per-ack cost amortizes to near zero while
//!   the power-loss guarantee is unchanged — acked means fsynced.
//! * [`FsyncPolicy::OsBuffered`] — `commit` returns immediately.
//!   Acked data survives a *process* crash (the page cache outlives
//!   the process) but not power loss. The fastest policy, and the
//!   honest name for what many systems silently do.
//!
//! # Failure handling
//!
//! The log is **fail-stop**: the first append or fsync error latches
//! [`WalError::Failed`] and every later operation refuses. A
//! half-written record from a failed append is rolled back with
//! `set_len` where possible so the latch, not interleaved garbage, is
//! what the next reader finds. Replay damage policy lives in
//! [`crate::segment`]: torn active tails truncate, anything else is
//! structural and surfaces as [`WalError::Structural`] for the caller
//! to quarantine.
//!
//! # Compaction invariant
//!
//! [`Wal::compact`]`(covered)` deletes a sealed segment only when
//! *every* sequence number it holds is at most `covered` — the
//! caller's promise that a durable checkpoint already reflects those
//! records. The active segment is never deleted, so the sequence
//! numbering never loses its anchor.

use crate::record::{encode_record, encoded_len, Record};
use crate::segment::{
    encode_header, parse_segment_file_name, scan_segment, segment_file_name, SEGMENT_HEADER_LEN,
};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When acked appends reach the platter; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync inline in every [`Wal::commit`].
    PerBatch,
    /// A committer thread fsyncs at most once per this interval;
    /// commits block until their group fsync lands.
    GroupCommit(Duration),
    /// Never fsync on the append path (process-crash durability only).
    OsBuffered,
}

/// Log tunables.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Durability policy for [`Wal::commit`].
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A config rooted at `dir` with production-shaped defaults
    /// (4 MiB segments, 1 ms group commit).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::GroupCommit(Duration::from_millis(1)),
        }
    }
}

/// Everything that can go wrong operating the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A filesystem operation failed (kind plus context).
    Io(std::io::ErrorKind, String),
    /// Replay found damage that cannot be a legal torn tail; the log
    /// cannot be trusted and its tenant should be quarantined.
    Structural(String),
    /// The log latched fail-stop after an earlier error; no further
    /// appends or commits are accepted.
    Failed(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(kind, what) => write!(f, "wal io failure ({kind:?}): {what}"),
            Self::Structural(what) => write!(f, "wal structurally damaged: {what}"),
            Self::Failed(what) => write!(f, "wal is fail-stopped: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.kind(), e.to_string())
    }
}

/// What [`Wal::open`] salvaged from disk.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every surviving record, in sequence order. The caller filters
    /// against its checkpoint high-water marks for idempotent replay.
    pub records: Vec<Record>,
    /// Torn-tail bytes truncated from the active segment.
    pub truncated_bytes: u64,
    /// Segment files scanned.
    pub segments: u64,
}

/// A point-in-time stats snapshot (all counters since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appended_records: u64,
    /// On-disk bytes appended (framing included).
    pub appended_bytes: u64,
    /// Highest sequence number appended (0 if none ever).
    pub appended_seq: u64,
    /// Highest sequence number known durable under the policy.
    pub durable_seq: u64,
    /// Fsync calls issued.
    pub fsyncs: u64,
    /// Live segment files (sealed plus active).
    pub segments: u64,
    /// Bytes across all live segment files.
    pub log_bytes: u64,
    /// Records appended but not yet covered by a checkpoint
    /// (`appended_seq - covered_seq`): the replay debt a crash incurs.
    pub depth_records: u64,
    /// Worst single [`Wal::commit`] wait observed, in microseconds —
    /// the fsync lag an acked ingest paid.
    pub max_commit_wait_us: u64,
    /// Sealed segments retired by compaction.
    pub compacted_segments: u64,
}

/// A sealed (rotated, fully fsynced) segment still on disk.
struct SealedSeg {
    first_seq: u64,
    path: PathBuf,
    bytes: u64,
}

struct WalState {
    /// Active segment file, opened for append.
    file: File,
    active_path: PathBuf,
    active_first_seq: u64,
    active_len: u64,
    /// Sequence number the next append receives.
    next_seq: u64,
    appended_seq: u64,
    durable_seq: u64,
    /// Highest sequence number a checkpoint covers (compaction input).
    covered_seq: u64,
    sealed: Vec<SealedSeg>,
    /// Fail-stop latch; set by the first irrecoverable error.
    failed: Option<String>,
    // Counters (snapshotted by `stats`).
    appended_records: u64,
    appended_bytes: u64,
    fsyncs: u64,
    max_commit_wait_us: u64,
    compacted_segments: u64,
    /// Scratch buffer for record encoding (reused across appends).
    scratch: Vec<u8>,
}

struct WalShared {
    config: WalConfig,
    state: Mutex<WalState>,
    /// Signaled when `durable_seq` advances or the log fail-stops
    /// (commit waiters), and to nudge the committer thread.
    cond: Condvar,
    stop: AtomicBool,
}

/// One tenant's write-ahead log. Internally synchronized: share it as
/// `Arc<Wal>` and call [`Wal::append`] / [`Wal::commit`] from any
/// thread.
pub struct Wal {
    shared: Arc<WalShared>,
    committer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.shared.config.dir)
            .field("fsync", &self.shared.config.fsync)
            .finish_non_exhaustive()
    }
}

/// Fsyncs a directory so entry creations/deletions inside it are
/// durable (the same discipline as the store's atomic writes).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Creates a fresh segment file (header written and fsynced, directory
/// entry fsynced) and returns it opened for append.
fn create_segment(dir: &Path, first_seq: u64) -> std::io::Result<(File, PathBuf)> {
    let path = dir.join(segment_file_name(first_seq));
    let mut f = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)?;
    f.write_all(&encode_header(first_seq))?;
    f.sync_all()?;
    sync_dir(dir)?;
    Ok((f, path))
}

impl Wal {
    /// Opens (creating if needed) the log in `config.dir` and replays
    /// every surviving record. `next_seq_hint` seeds the numbering of
    /// an *empty* directory (a fresh tenant passes 1; a caller
    /// re-creating a wiped log passes its checkpoint high-water mark
    /// plus one); a non-empty log derives its numbering from disk.
    ///
    /// # Errors
    /// [`WalError::Structural`] on damage outside a legal torn tail —
    /// the caller should quarantine, not retry. [`WalError::Io`] on
    /// filesystem failure.
    pub fn open(config: WalConfig, next_seq_hint: u64) -> Result<(Self, WalReplay), WalError> {
        std::fs::create_dir_all(&config.dir)?;
        let mut firsts: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if let Some(first) = parse_segment_file_name(&name) {
                firsts.push(first);
            }
        }
        firsts.sort_unstable();
        firsts.dedup();

        let mut replay = WalReplay::default();
        let mut sealed = Vec::new();
        let (file, active_path, active_first_seq, active_len, next_seq) = if firsts.is_empty() {
            let first = next_seq_hint.max(1);
            let (f, path) = create_segment(&config.dir, first)?;
            (f, path, first, SEGMENT_HEADER_LEN as u64, first)
        } else {
            let mut expect = firsts[0];
            let mut active = None;
            for (i, &first) in firsts.iter().enumerate() {
                let is_last = i + 1 == firsts.len();
                let path = config.dir.join(segment_file_name(first));
                if first != expect {
                    return Err(WalError::Structural(format!(
                        "segment {} breaks continuity (expected first seq {expect})",
                        path.display()
                    )));
                }
                let bytes = std::fs::read(&path)?;
                let scan = scan_segment(&bytes, !is_last, expect)
                    .map_err(|e| WalError::Structural(format!("{}: {e}", path.display())))?;
                if !is_last && scan.records.is_empty() {
                    return Err(WalError::Structural(format!(
                        "sealed segment {} holds no records",
                        path.display()
                    )));
                }
                expect += scan.records.len() as u64;
                replay.segments += 1;
                replay.records.extend(scan.records);
                if is_last {
                    if scan.discarded_bytes > 0 {
                        // Torn tail: cut the file back to the last whole
                        // record so appends resume on a clean boundary.
                        let f = OpenOptions::new().write(true).open(&path)?;
                        f.set_len(scan.valid_len)?;
                        f.sync_all()?;
                        replay.truncated_bytes = scan.discarded_bytes;
                    }
                    active = Some((path, first, scan.valid_len));
                } else {
                    sealed.push(SealedSeg {
                        first_seq: first,
                        path,
                        bytes: bytes.len() as u64,
                    });
                }
            }
            let (path, first, len) = active.expect("non-empty segment list");
            let f = OpenOptions::new().append(true).open(&path)?;
            (f, path, first, len, expect)
        };

        let appended_seq = next_seq.saturating_sub(1);
        let covered_seq = sealed
            .first()
            .map_or(active_first_seq, |s| s.first_seq)
            .saturating_sub(1);
        let shared = Arc::new(WalShared {
            state: Mutex::new(WalState {
                file,
                active_path,
                active_first_seq,
                active_len,
                next_seq,
                appended_seq,
                // Whatever survived to be replayed is as durable as it
                // will ever get.
                durable_seq: appended_seq,
                covered_seq,
                sealed,
                failed: None,
                appended_records: 0,
                appended_bytes: 0,
                fsyncs: 0,
                max_commit_wait_us: 0,
                compacted_segments: 0,
                scratch: Vec::new(),
            }),
            cond: Condvar::new(),
            stop: AtomicBool::new(false),
            config,
        });
        let committer = match shared.config.fsync {
            FsyncPolicy::GroupCommit(interval) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("hh-wal-commit".into())
                        .spawn(move || group_commit_loop(&shared, interval))
                        .map_err(WalError::from)?,
                )
            }
            _ => None,
        };
        Ok((Self { shared, committer }, replay))
    }

    fn lock(&self) -> MutexGuard<'_, WalState> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends `payload` as the next record and returns its sequence
    /// number. Buffered only — pair with [`Wal::commit`] before acking.
    ///
    /// # Errors
    /// [`WalError::Failed`] once fail-stopped; [`WalError::Io`] on the
    /// write that latches it.
    pub fn append(&self, payload: &[u8]) -> Result<u64, WalError> {
        let mut st = self.lock();
        if let Some(why) = &st.failed {
            return Err(WalError::Failed(why.clone()));
        }
        // Rotate first so a record never straddles the size threshold
        // by more than one record.
        if st.active_len >= self.shared.config.segment_bytes {
            if let Err(e) = rotate(&mut st, &self.shared.config) {
                let why = format!("rotation failed: {e}");
                st.failed = Some(why.clone());
                self.shared.cond.notify_all();
                return Err(WalError::Failed(why));
            }
        }
        let seq = st.next_seq;
        let mut scratch = std::mem::take(&mut st.scratch);
        scratch.clear();
        encode_record(seq, payload, &mut scratch);
        let wrote = st.file.write_all(&scratch);
        let rec_len = scratch.len() as u64;
        st.scratch = scratch;
        if let Err(e) = wrote {
            // Roll the file back to the last record boundary; if even
            // that fails the latch still protects correctness (replay
            // truncates the torn tail).
            let _ = st.file.set_len(st.active_len);
            let why = format!("append of seq {seq} failed: {e}");
            st.failed = Some(why.clone());
            self.shared.cond.notify_all();
            return Err(WalError::Failed(why));
        }
        st.active_len += rec_len;
        st.next_seq += 1;
        st.appended_seq = seq;
        st.appended_records += 1;
        st.appended_bytes += rec_len;
        if matches!(self.shared.config.fsync, FsyncPolicy::GroupCommit(_)) {
            // Nudge the committer so an idle-interval wait does not add
            // a full interval of latency to a lone append.
            self.shared.cond.notify_all();
        }
        Ok(seq)
    }

    /// Blocks until `seq` is durable under the configured policy (see
    /// the module docs). Acking a client before `commit` returns
    /// forfeits the zero-acked-loss guarantee.
    ///
    /// # Errors
    /// [`WalError::Failed`] if the log fail-stopped before durability
    /// was reached.
    pub fn commit(&self, seq: u64) -> Result<(), WalError> {
        let t0 = Instant::now();
        let mut st = self.lock();
        let result = match self.shared.config.fsync {
            FsyncPolicy::OsBuffered => Ok(()),
            FsyncPolicy::PerBatch => sync_active(&mut st, seq),
            FsyncPolicy::GroupCommit(_) => loop {
                if st.durable_seq >= seq.min(st.appended_seq) {
                    break Ok(());
                }
                if let Some(why) = &st.failed {
                    break Err(WalError::Failed(why.clone()));
                }
                // Bounded wait: if the committer thread died (or was
                // never there), fall back to syncing inline rather
                // than hanging an ack forever.
                let (guard, timeout) = self
                    .shared
                    .cond
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = guard;
                if timeout.timed_out() && st.durable_seq < seq.min(st.appended_seq) {
                    break sync_active(&mut st, seq);
                }
            },
        };
        let waited = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        st.max_commit_wait_us = st.max_commit_wait_us.max(waited);
        result
    }

    /// Forces everything appended so far to disk, regardless of
    /// policy.
    pub fn sync(&self) -> Result<(), WalError> {
        let mut st = self.lock();
        let up_to = st.appended_seq;
        sync_active(&mut st, up_to)
    }

    /// Retires every sealed segment whose records are all at or below
    /// `covered` (the caller's durable checkpoint high-water mark).
    /// Returns segments deleted. The active segment always survives.
    pub fn compact(&self, covered: u64) -> Result<u64, WalError> {
        let mut st = self.lock();
        st.covered_seq = st.covered_seq.max(covered);
        let mut removed = 0;
        while let Some(front) = st.sealed.first() {
            // The front sealed segment ends where its successor starts.
            let end = st
                .sealed
                .get(1)
                .map_or(st.active_first_seq, |next| next.first_seq)
                .saturating_sub(1);
            if end > covered {
                break;
            }
            let path = front.path.clone();
            std::fs::remove_file(&path)?;
            st.sealed.remove(0);
            st.compacted_segments += 1;
            removed += 1;
        }
        if removed > 0 {
            sync_dir(&self.shared.config.dir)?;
        }
        Ok(removed)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> WalStats {
        let st = self.lock();
        WalStats {
            appended_records: st.appended_records,
            appended_bytes: st.appended_bytes,
            appended_seq: st.appended_seq,
            durable_seq: st.durable_seq,
            fsyncs: st.fsyncs,
            segments: st.sealed.len() as u64 + 1,
            log_bytes: st.sealed.iter().map(|s| s.bytes).sum::<u64>() + st.active_len,
            depth_records: st.appended_seq.saturating_sub(st.covered_seq),
            max_commit_wait_us: st.max_commit_wait_us,
            compacted_segments: st.compacted_segments,
        }
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// The on-disk byte offset durability has reached in the active
    /// segment (everything before it survives power loss; the tail
    /// past it may tear). Test oracles cut files here.
    pub fn durable_active_bytes(&self) -> u64 {
        let st = self.lock();
        match self.shared.config.fsync {
            // Never fsynced: only what the OS happened to flush — the
            // conservative answer is the header alone.
            FsyncPolicy::OsBuffered if st.fsyncs == 0 => SEGMENT_HEADER_LEN as u64,
            _ if st.durable_seq >= st.appended_seq => st.active_len,
            _ => {
                // Durability lags: conservatively, nothing past the
                // last explicit fsync point is promised. Policies that
                // ack only after commit never expose this window.
                SEGMENT_HEADER_LEN as u64
            }
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
    }
}

/// Fsyncs the active segment and advances `durable_seq`; latches
/// fail-stop on error. `seq` is only used to short-circuit when the
/// work is already done.
fn sync_active(st: &mut WalState, seq: u64) -> Result<(), WalError> {
    if let Some(why) = &st.failed {
        return Err(WalError::Failed(why.clone()));
    }
    if st.durable_seq >= seq.min(st.appended_seq) {
        return Ok(());
    }
    match st.file.sync_data() {
        Ok(()) => {
            st.durable_seq = st.appended_seq;
            st.fsyncs += 1;
            Ok(())
        }
        Err(e) => {
            let why = format!("fsync failed: {e}");
            st.failed = Some(why.clone());
            Err(WalError::Failed(why))
        }
    }
}

/// Seals the active segment (fsynced whole — the invariant replay's
/// damage policy rests on) and starts a new one.
fn rotate(st: &mut WalState, config: &WalConfig) -> std::io::Result<()> {
    st.file.sync_all()?;
    st.durable_seq = st.appended_seq;
    st.fsyncs += 1;
    let (file, path) = create_segment(&config.dir, st.next_seq)?;
    let old_path = std::mem::replace(&mut st.active_path, path);
    st.sealed.push(SealedSeg {
        first_seq: st.active_first_seq,
        path: old_path,
        bytes: st.active_len,
    });
    st.file = file;
    st.active_first_seq = st.next_seq;
    st.active_len = SEGMENT_HEADER_LEN as u64;
    Ok(())
}

fn group_commit_loop(shared: &WalShared, interval: Duration) {
    loop {
        let mut st = shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Tick: wake early if nudged by an append or a drop.
        let (guard, _) = shared
            .cond
            .wait_timeout(st, interval)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st = guard;
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if st.failed.is_none() && st.appended_seq > st.durable_seq {
            let up_to = st.appended_seq;
            let _ = sync_active(&mut st, up_to);
            drop(st);
            shared.cond.notify_all();
        }
    }
}

/// A convenience for tests and tooling: replays a directory without
/// constructing a live log (no truncation side effects, no committer
/// thread).
pub fn replay_dir(dir: &Path) -> Result<WalReplay, WalError> {
    let mut firsts: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if let Some(first) = parse_segment_file_name(&name) {
            firsts.push(first);
        }
    }
    firsts.sort_unstable();
    let mut replay = WalReplay::default();
    let mut expect = firsts.first().copied().unwrap_or(1);
    for (i, &first) in firsts.iter().enumerate() {
        let is_last = i + 1 == firsts.len();
        let path = dir.join(segment_file_name(first));
        if first != expect {
            return Err(WalError::Structural(format!(
                "segment {} breaks continuity (expected first seq {expect})",
                path.display()
            )));
        }
        let bytes = std::fs::read(&path)?;
        let scan = scan_segment(&bytes, !is_last, expect)
            .map_err(|e| WalError::Structural(format!("{}: {e}", path.display())))?;
        expect += scan.records.len() as u64;
        replay.segments += 1;
        replay.truncated_bytes += scan.discarded_bytes;
        replay.records.extend(scan.records);
    }
    Ok(replay)
}

/// The on-disk size of a record with this payload length (exposed so
/// tests can compute exact cut offsets).
pub fn record_disk_len(payload_len: usize) -> usize {
    encoded_len(payload_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hh-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path, fsync: FsyncPolicy) -> WalConfig {
        WalConfig {
            dir: dir.to_path_buf(),
            segment_bytes: 256, // tiny: rotation every few records
            fsync,
        }
    }

    #[test]
    fn append_commit_reopen_replays_everything() {
        let dir = tmpdir("roundtrip");
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 1 + i as usize]).collect();
        {
            let (wal, replay) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
            assert!(replay.records.is_empty());
            for p in &payloads {
                let seq = wal.append(p).unwrap();
                wal.commit(seq).unwrap();
            }
            let stats = wal.stats();
            assert_eq!(stats.appended_records, 20);
            assert_eq!(stats.durable_seq, 20);
            assert!(stats.segments > 1, "tiny segments must rotate");
        }
        let (wal, replay) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
        assert_eq!(replay.records.len(), 20);
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.payload, payloads[i]);
        }
        assert_eq!(wal.next_seq(), 21);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_blocks_until_durable_and_shares_fsyncs() {
        let dir = tmpdir("group");
        let (wal, _) = Wal::open(
            cfg(&dir, FsyncPolicy::GroupCommit(Duration::from_millis(2))),
            1,
        )
        .unwrap();
        let wal = Arc::new(wal);
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..25u8 {
                        let seq = wal.append(&[w, i]).unwrap();
                        wal.commit(seq).unwrap();
                        assert!(wal.stats().durable_seq >= seq, "acked before durable");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appended_records, 100);
        assert!(
            stats.fsyncs < 100,
            "group commit must batch fsyncs, saw {}",
            stats.fsyncs
        );
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn os_buffered_acks_without_fsync() {
        let dir = tmpdir("buffered");
        let (wal, _) = Wal::open(cfg(&dir, FsyncPolicy::OsBuffered), 1).unwrap();
        let seq = wal.append(b"fast").unwrap();
        wal.commit(seq).unwrap();
        assert_eq!(wal.stats().fsyncs, 0);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_retires_only_fully_covered_sealed_segments() {
        let dir = tmpdir("compact");
        let (wal, _) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
        for i in 0..30u8 {
            let seq = wal.append(&[i; 16]).unwrap();
            wal.commit(seq).unwrap();
        }
        let before = wal.stats();
        assert!(before.segments >= 3);
        // Cover nothing: nothing may go.
        assert_eq!(wal.compact(0).unwrap(), 0);
        // Cover everything: all sealed segments go, the active stays.
        let removed = wal.compact(30).unwrap();
        assert_eq!(removed, before.segments - 1);
        assert_eq!(wal.stats().segments, 1);
        assert_eq!(wal.stats().depth_records, 0);
        // Appends keep their numbering after full compaction.
        let seq = wal.append(b"after").unwrap();
        assert_eq!(seq, 31);
        wal.commit(seq).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert!(seqs.contains(&31));
        assert!(seqs.iter().all(|&s| s > 0), "seq anchor survived");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_compaction_never_drops_uncovered_records() {
        let dir = tmpdir("partial-compact");
        let (wal, _) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
        for i in 0..30u8 {
            let seq = wal.append(&[i; 16]).unwrap();
            wal.commit(seq).unwrap();
        }
        for covered in [5u64, 12, 19, 26] {
            wal.compact(covered).unwrap();
            let replay = replay_dir(&dir).unwrap();
            let min_seq = replay.records.iter().map(|r| r.seq).min().unwrap();
            assert!(
                min_seq <= covered + 1,
                "compact({covered}) dropped uncovered seq {min_seq}"
            );
            let max_seq = replay.records.iter().map(|r| r.seq).max().unwrap();
            assert_eq!(max_seq, 30);
        }
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let dir = tmpdir("torn");
        let disk_len = record_disk_len(16);
        {
            let (wal, _) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
            for i in 0..3u8 {
                let seq = wal.append(&[i; 16]).unwrap();
                wal.commit(seq).unwrap();
            }
        }
        // Tear the last record in half.
        let seg = dir.join(segment_file_name(1));
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - disk_len as u64 / 2).unwrap();
        drop(f);

        let (wal, replay) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
        assert_eq!(replay.records.len(), 2, "torn record dropped");
        assert!(replay.truncated_bytes > 0);
        // The next append takes over the torn record's seq.
        assert_eq!(wal.append(b"recovered").unwrap(), 3);
        wal.commit(3).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[2].payload, b"recovered");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_in_a_sealed_segment_is_structural() {
        let dir = tmpdir("sealed-damage");
        {
            let (wal, _) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1).unwrap();
            for i in 0..30u8 {
                let seq = wal.append(&[i; 16]).unwrap();
                wal.commit(seq).unwrap();
            }
            assert!(wal.stats().segments >= 2);
        }
        let first = dir.join(segment_file_name(1));
        let mut bytes = std::fs::read(&first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&first, &bytes).unwrap();
        match Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1) {
            Err(WalError::Structural(_)) => {}
            other => panic!("expected structural damage, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_honors_the_seq_hint() {
        let dir = tmpdir("hint");
        let (wal, replay) = Wal::open(cfg(&dir, FsyncPolicy::PerBatch), 1000).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(wal.append(b"x").unwrap(), 1000);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
