//! The read-side cache primitive behind the incremental query engine.
//!
//! Every summary in the workspace answers `report()` (and often
//! `estimate()`) by recomputing from its tables. The write path is
//! hardware-fast after PRs 2–3, which makes recomputation the read
//! side's whole cost: a serving process that takes millions of point
//! queries against a quiescent summary pays the full table scan per
//! query. [`QueryCache`] turns that scan into a one-time cost per
//! *write epoch*: queries materialize their result once and reuse it
//! until the next mutation invalidates it.
//!
//! # The invalidation contract (see DESIGN.md §8)
//!
//! * Queries take `&self` and must stay callable concurrently, so the
//!   cache is a [`std::sync::OnceLock`]: the first query after a write
//!   builds the value, racers block briefly, everyone shares the result.
//! * Every mutation that can change a query answer **must** call
//!   [`QueryCache::invalidate`]. Mutations take `&mut self`, so
//!   invalidation is a plain (non-atomic) store — it costs nothing on
//!   the update hot path beyond one branch when the cache is empty.
//!   That covers `insert` (for summaries whose every insert is
//!   query-visible), the *sampled* branch of sampling summaries (an
//!   unsampled item changes only sampler state, which no query reads),
//!   `insert_batch`, `merge_from`, and window rotation.
//! * Restore (`from_bytes`) constructs a fresh value, which starts
//!   cold by definition; snapshots never carry the cache.
//! * [`Clone`] produces a **cold** clone. The cache is derived state, so
//!   this preserves semantics, keeps clones cheap, and gives tests a
//!   one-line way to compare a warm summary against a cold rebuild.

use std::sync::OnceLock;

/// A dirty-flag materialized query result: built lazily under `&self`,
/// dropped eagerly under `&mut self`.
///
/// The type deliberately has no generation counter — mutations hold
/// `&mut self`, so "bump the generation" and "drop the value" are the
/// same operation, and a stale read is unrepresentable.
#[derive(Default)]
pub struct QueryCache<T> {
    slot: OnceLock<T>,
}

impl<T> QueryCache<T> {
    /// An empty (cold) cache.
    pub const fn new() -> Self {
        Self {
            slot: OnceLock::new(),
        }
    }

    /// The cached value, or `None` when cold.
    #[inline]
    pub fn get(&self) -> Option<&T> {
        self.slot.get()
    }

    /// The cached value, building it with `build` on a cold cache.
    #[inline]
    pub fn get_or_build(&self, build: impl FnOnce() -> T) -> &T {
        self.slot.get_or_init(build)
    }

    /// Drops the cached value. Every `&mut self` mutation whose effect a
    /// query could observe must call this; see the module docs for the
    /// full contract.
    #[inline]
    pub fn invalidate(&mut self) {
        // `take` needs no atomics under `&mut`: on the common (already
        // cold) update path this is one load and a branch.
        self.slot.take();
    }
}

/// Clones are cold: the cache holds derived state that the clone can
/// rebuild on first query (and `OnceLock` clones would otherwise force
/// `T: Clone` on every holder even where it is never used).
impl<T> Clone for QueryCache<T> {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for QueryCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.get() {
            Some(_) => f.write_str("QueryCache(warm)"),
            None => f.write_str("QueryCache(cold)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_and_reuses() {
        let cache: QueryCache<u64> = QueryCache::new();
        assert_eq!(cache.get(), None);
        let mut builds = 0;
        for _ in 0..3 {
            let v = *cache.get_or_build(|| {
                builds += 1;
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.get(), Some(&42));
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let mut cache: QueryCache<u64> = QueryCache::new();
        assert_eq!(*cache.get_or_build(|| 1), 1);
        cache.invalidate();
        assert_eq!(cache.get(), None);
        assert_eq!(*cache.get_or_build(|| 2), 2);
    }

    #[test]
    fn clones_are_cold() {
        let cache: QueryCache<u64> = QueryCache::new();
        cache.get_or_build(|| 7);
        let cloned = cache.clone();
        assert_eq!(cloned.get(), None);
        assert_eq!(cache.get(), Some(&7));
    }
}
