//! ε-Maximum: estimate the maximum frequency (and a witness item) to
//! ±εm (Theorem 3), resolving IITK 2006 Open Question 3 for ℓ1.
//!
//! Theorem 3 is Algorithm 1 with one change: *"Instead of maintaining the
//! table T2 ... we just store the actual id of the item with maximum
//! frequency in the sampled items."* — so the `φ⁻¹ log n` term collapses
//! to a single `log n`.
//!
//! The bound is `O(min{ε⁻¹, n}(log ε⁻¹ + log log δ⁻¹) + log n + log log m)`
//! bits: when the universe is smaller than the Misra–Gries table would be,
//! exact counting over the sampled stream is cheaper, so the
//! implementation switches to a dense counter array (the `min{ε⁻¹, n}`
//! case split).

use crate::config::{Constants, HhParams};
use crate::error::ParamError;
use crate::mg::MisraGries;
use crate::report::{ItemEstimate, Report};
use crate::traits::{HeavyHitters, StreamSummary};
use hh_hash::{CarterWegmanFamily, CarterWegmanHash, HashFamily, HashFunction};
use hh_sampling::SkipSampler;
use hh_space::{SpaceUsage, VarCounterArray};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The two counting backends behind the `min{ε⁻¹, n}` term.
#[derive(Debug, Clone)]
enum Backend {
    /// Universe no larger than the Misra–Gries table: count every
    /// universe item exactly (over the sampled stream).
    Dense(VarCounterArray),
    /// Large universe: Misra–Gries over hashed ids plus the raw id of the
    /// current maximum.
    Sketched {
        hash: CarterWegmanHash,
        t1: MisraGries,
        /// `(raw id, hashed id)` of the current argmax, if any.
        best: Option<(u64, u64)>,
    },
}

/// The ε-Maximum algorithm (Theorem 3). δ is carried inside
/// [`HhParams`]; φ is ignored (the problem has no threshold).
#[derive(Debug, Clone)]
pub struct EpsMaximum {
    eps: f64,
    universe: u64,
    sampler: SkipSampler,
    p: f64,
    backend: Backend,
    samples: u64,
    rng: StdRng,
}

impl EpsMaximum {
    /// Creates the algorithm for additive error `ε·m` with failure
    /// probability `delta`, over universe `[0, universe)` and advertised
    /// stream length `m`.
    pub fn new(eps: f64, delta: f64, universe: u64, m: u64, seed: u64) -> Result<Self, ParamError> {
        Self::with_constants(eps, delta, universe, m, seed, Constants::default())
    }

    /// Creates the algorithm with an explicit constants profile.
    pub fn with_constants(
        eps: f64,
        delta: f64,
        universe: u64,
        m: u64,
        seed: u64,
        consts: Constants,
    ) -> Result<Self, ParamError> {
        if !(eps > 0.0 && eps < 1.0 && eps.is_finite()) {
            return Err(ParamError::EpsOutOfRange(eps));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ParamError::DeltaOutOfRange(delta));
        }
        if universe == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        if m == 0 {
            return Err(ParamError::ZeroLength);
        }
        let mut rng = StdRng::seed_from_u64(seed);

        let ell = (consts.sample_factor * (6.0 / delta).ln() / (eps * eps)).ceil();
        let p_target = (2.0 * ell / m as f64).min(1.0);
        let sampler = SkipSampler::with_probability(p_target);
        let p = sampler.probability();

        let k = (consts.mg_capacity_factor / eps).ceil() as usize;
        let backend = if universe <= k as u64 {
            Backend::Dense(VarCounterArray::new(universe as usize))
        } else {
            let s_cap = 6.0 * ell + 64.0;
            let hash_range = ((consts.hash_range_factor * s_cap * s_cap / delta).ceil() as u64)
                .clamp(64, 1 << 60);
            Backend::Sketched {
                hash: CarterWegmanFamily::new(hash_range).sample(&mut rng),
                t1: MisraGries::new(k.max(1), hh_space::id_bits(hash_range)),
                best: None,
            }
        };

        Ok(Self {
            eps,
            universe,
            sampler,
            p,
            backend,
            samples: 0,
            rng,
        })
    }

    /// The witness item and estimated maximum frequency, or `None` on an
    /// empty (sub)stream.
    pub fn max_estimate(&self) -> Option<ItemEstimate> {
        match &self.backend {
            Backend::Dense(counts) => counts.argmax().map(|i| ItemEstimate {
                item: i as u64,
                count: counts.get(i) as f64 / self.p,
            }),
            Backend::Sketched { t1, best, .. } => best.map(|(raw, hashed)| ItemEstimate {
                item: raw,
                count: t1.estimate(hashed) as f64 / self.p,
            }),
        }
    }

    /// Number of sampled items.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The additive error fraction ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Convenience constructor matching [`crate::SimpleListHh`]'s
    /// signature (φ in the params is ignored).
    pub fn from_params(
        params: HhParams,
        universe: u64,
        m: u64,
        seed: u64,
    ) -> Result<Self, ParamError> {
        Self::new(params.eps(), params.delta(), universe, m, seed)
    }
}

impl StreamSummary for EpsMaximum {
    fn insert(&mut self, item: u64) {
        debug_assert!(item < self.universe, "item outside declared universe");
        if !self.sampler.accept(&mut self.rng) {
            return;
        }
        self.samples += 1;
        match &mut self.backend {
            Backend::Dense(counts) => {
                counts.increment(item as usize);
            }
            Backend::Sketched { hash, t1, best } => {
                let hashed = hash.hash(item);
                t1.insert(hashed);
                let count = t1.estimate(hashed);
                let best_count = best.map_or(0, |(_, bh)| t1.estimate(bh));
                if count > best_count {
                    *best = Some((item, hashed));
                }
            }
        }
    }
}

impl HeavyHitters for EpsMaximum {
    fn report(&self) -> Report {
        Report::new(self.max_estimate().into_iter().collect())
    }
}

impl SpaceUsage for EpsMaximum {
    fn model_bits(&self) -> u64 {
        let backend = match &self.backend {
            Backend::Dense(counts) => counts.model_bits(),
            Backend::Sketched { hash, t1, best } => {
                t1.model_bits()
                    + hash.model_bits()
                    + 1
                    + best.map_or(0, |_| hh_space::id_bits(self.universe))
            }
        };
        backend + self.sampler.model_bits()
    }

    fn heap_bytes(&self) -> usize {
        match &self.backend {
            Backend::Dense(counts) => counts.heap_bytes(),
            Backend::Sketched { t1, .. } => t1.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_streams::{arrange, OrderPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream_with_max(m: u64, top: u64, top_frac: f64, seed: u64) -> Vec<u64> {
        let top_count = (top_frac * m as f64).round() as u64;
        let mut counts = vec![(top, top_count)];
        let rest = m - top_count;
        let fillers = 512u64;
        for j in 0..fillers {
            let c = rest / fillers + u64::from(j < rest % fillers);
            if c > 0 {
                counts.push((10_000 + j, c));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        arrange(&counts, OrderPolicy::Shuffled, &mut rng)
    }

    #[test]
    fn estimates_max_within_eps() {
        let m = 300_000u64;
        let stream = stream_with_max(m, 77, 0.35, 1);
        let mut a = EpsMaximum::new(0.03, 0.1, 1 << 40, m, 5).unwrap();
        a.insert_all(&stream);
        let est = a.max_estimate().unwrap();
        assert!(
            (est.count - 0.35 * m as f64).abs() <= 0.03 * m as f64,
            "estimate {} vs truth {}",
            est.count,
            0.35 * m as f64
        );
    }

    #[test]
    fn identifies_witness_when_max_is_clear() {
        let m = 300_000u64;
        let stream = stream_with_max(m, 123, 0.4, 2);
        let mut a = EpsMaximum::new(0.05, 0.1, 1 << 40, m, 3).unwrap();
        a.insert_all(&stream);
        assert_eq!(a.max_estimate().unwrap().item, 123);
        // Report is the single-witness set.
        let r = a.report();
        assert_eq!(r.len(), 1);
        assert!(r.contains(123));
    }

    #[test]
    fn dense_backend_for_tiny_universe() {
        let m = 100_000u64;
        // Universe of 8 items with eps giving k = 4/0.1 = 40 > 8 → dense.
        let mut a = EpsMaximum::new(0.1, 0.1, 8, m, 4).unwrap();
        assert!(matches!(a.backend, Backend::Dense(_)));
        let mut rng = StdRng::seed_from_u64(6);
        let stream = arrange(
            &[(0, 50_000), (1, 30_000), (2, 20_000)],
            OrderPolicy::Shuffled,
            &mut rng,
        );
        a.insert_all(&stream);
        let est = a.max_estimate().unwrap();
        assert_eq!(est.item, 0);
        assert!((est.count - 50_000.0).abs() <= 0.1 * m as f64);
    }

    #[test]
    fn empty_stream_reports_none() {
        let a = EpsMaximum::new(0.1, 0.1, 100, 1000, 0).unwrap();
        assert!(a.max_estimate().is_none());
        assert!(a.report().is_empty());
    }

    #[test]
    fn space_has_single_log_n_not_phi_inverse_many() {
        let m = 1 << 20;
        let n = 1u64 << 50;
        let stream = stream_with_max(m, 9, 0.5, 7);
        let mut a = EpsMaximum::new(0.02, 0.1, n, m, 8).unwrap();
        a.insert_all(&stream);
        let bits = a.model_bits();
        // The id-storage share should be one 50-bit id, not dozens.
        // Overall budget: ~ (4/ε)(log ε⁻¹-ish counters + hashed keys) + n-id.
        // Crude cap: 40 bits per MG slot plus slack.
        let k = 4.0 / 0.02;
        assert!(
            (bits as f64) < k * 64.0 + 512.0,
            "unexpectedly large: {bits} bits"
        );
    }

    #[test]
    fn constructor_validates() {
        assert!(EpsMaximum::new(0.0, 0.1, 10, 10, 0).is_err());
        assert!(EpsMaximum::new(0.1, 1.0, 10, 10, 0).is_err());
        assert!(EpsMaximum::new(0.1, 0.1, 0, 10, 0).is_err());
        assert!(EpsMaximum::new(0.1, 0.1, 10, 0, 0).is_err());
    }
}
