//! The Misra–Gries frequent-items summary \[MG82\].
//!
//! Both of the paper's heavy-hitter algorithms embed a Misra–Gries table:
//! Algorithm 1 runs it over *hashed* ids ("Instead of storing the id of
//! any item x in the Misra-Gries table we only store the hash h(x)"),
//! Algorithm 2 runs it over raw ids with `2/φ` counters to produce its
//! candidate set. It is also the `O(ε⁻¹(log n + log m))`-bit baseline the
//! paper improves on, re-exported as such by `hh-baselines`.
//!
//! Guarantee: after `s` insertions, every estimate satisfies
//! `f_x − s/(k+1) ≤ estimate(x) ≤ f_x` where `k` is the capacity.
//!
//! The decrement-all step is implemented directly; each decrement is paid
//! for by an earlier increment, so updates are amortized `O(1)` (worst-case
//! `O(1)` variants exist via the \[DLOM02\] doubly-linked group structure;
//! the paper's `O(1)` worst-case claim instead comes from spreading work
//! across the gaps between *sampled* items, which is how Algorithm 1 uses
//! this table).

use crate::traits::StreamSummary;
use hh_space::space::{gamma_bits, SpaceUsage};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A Misra–Gries table with `k` counters over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisraGries {
    counters: HashMap<u64, u64>,
    capacity: usize,
    /// Bits charged per stored key (callers price raw ids at `log n` and
    /// hashed ids at `log(hash range)`).
    key_bits: u64,
    processed: u64,
}

impl MisraGries {
    /// Table with `capacity ≥ 1` counters, charging `key_bits` per stored
    /// key in the space model.
    pub fn new(capacity: usize, key_bits: u64) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        Self {
            counters: HashMap::with_capacity(capacity + 1),
            capacity,
            key_bits,
            processed: 0,
        }
    }

    /// Convenience constructor pricing keys as ids from `[0, universe)`.
    pub fn for_universe(capacity: usize, universe: u64) -> Self {
        Self::new(capacity, hh_space::id_bits(universe))
    }

    /// Number of counters configured.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently held.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Items inserted so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The lower-bound estimate for `key` (0 if absent).
    pub fn estimate(&self, key: u64) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// The worst-case undercount: `processed / (capacity + 1)`.
    pub fn max_error(&self) -> u64 {
        self.processed / (self.capacity as u64 + 1)
    }

    /// Current `(key, count)` pairs in decreasing count order.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counters.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by_key(|&(k, c)| (std::cmp::Reverse(c), k));
        v
    }

    /// The key with the largest counter, if any.
    pub fn argmax(&self) -> Option<(u64, u64)> {
        self.counters
            .iter()
            .map(|(&k, &c)| (k, c))
            .max_by_key(|&(k, c)| (c, std::cmp::Reverse(k)))
    }

    /// Merges another table into this one (sums counters, then reduces
    /// back to capacity by subtracting the (k+1)-th largest count — the
    /// standard mergeable-summaries construction, which preserves the
    /// error bound `s/(k+1)` for the combined stream).
    pub fn merge(&mut self, other: &MisraGries) {
        for (&k, &c) in &other.counters {
            *self.counters.entry(k).or_insert(0) += c;
        }
        self.processed += other.processed;
        if self.counters.len() > self.capacity {
            let mut counts: Vec<u64> = self.counters.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let cut = counts[self.capacity];
            self.counters.retain(|_, c| {
                if *c > cut {
                    *c -= cut;
                    true
                } else {
                    false
                }
            });
        }
    }
}

impl StreamSummary for MisraGries {
    fn insert(&mut self, key: u64) {
        self.processed += 1;
        if let Some(c) = self.counters.get_mut(&key) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, 1);
            return;
        }
        // Table full and key absent: decrement everything (the incoming
        // item's single unit annihilates with one unit of every counter).
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }
}

impl SpaceUsage for MisraGries {
    fn model_bits(&self) -> u64 {
        let filled: u64 = self
            .counters
            .values()
            .map(|&c| self.key_bits + gamma_bits(c))
            .sum();
        // Empty slots still need a presence bit; the stream-position
        // counter is charged at its variable-length cost.
        let empty = (self.capacity - self.counters.len()) as u64;
        filled + empty + gamma_bits(self.processed)
    }

    fn heap_bytes(&self) -> usize {
        self.counters.capacity() * (8 + 8 + 8) // key, value, bucket overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(capacity: usize, stream: &[u64]) -> MisraGries {
        let mut mg = MisraGries::new(capacity, 16);
        mg.insert_all(stream);
        mg
    }

    #[test]
    fn exact_when_under_capacity() {
        let mg = run(10, &[1, 2, 2, 3, 3, 3]);
        assert_eq!(mg.estimate(1), 1);
        assert_eq!(mg.estimate(2), 2);
        assert_eq!(mg.estimate(3), 3);
        assert_eq!(mg.estimate(9), 0);
        assert_eq!(mg.max_error(), 0);
    }

    #[test]
    fn classic_error_bound_holds() {
        // Stream: item 0 heavy (400), 200 singletons. k = 7.
        let mut stream: Vec<u64> = std::iter::repeat_n(0, 400).collect();
        stream.extend(1000..1200u64);
        // Interleave adversarially: singleton after every other heavy copy.
        let mut inter = Vec::new();
        let mut singles = 1000..1200u64;
        for (i, &x) in stream.iter().enumerate() {
            if x == 0 {
                inter.push(0);
                if i % 2 == 0 {
                    if let Some(s) = singles.next() {
                        inter.push(s);
                    }
                }
            }
        }
        let mg = run(7, &inter);
        let s = mg.processed();
        let est = mg.estimate(0);
        assert!(est <= 400);
        assert!(
            est + s / 8 >= 400,
            "undercount too large: est {est}, bound {}",
            s / 8
        );
    }

    #[test]
    fn never_overestimates_on_random_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let stream: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..50)).collect();
        let mg = run(9, &stream);
        for key in 0..50u64 {
            let truth = stream.iter().filter(|&&x| x == key).count() as u64;
            let est = mg.estimate(key);
            assert!(est <= truth, "key {key}: est {est} > truth {truth}");
            assert!(est + mg.max_error() >= truth, "key {key} undercount");
        }
    }

    #[test]
    fn table_never_exceeds_capacity() {
        let mut mg = MisraGries::new(5, 16);
        for x in 0..10_000u64 {
            mg.insert(x % 97);
            assert!(mg.len() <= 5);
        }
    }

    #[test]
    fn entries_sorted_descending() {
        let mg = run(10, &[7, 7, 7, 8, 8, 9]);
        let e = mg.entries();
        assert_eq!(e[0], (7, 3));
        assert_eq!(e[1], (8, 2));
        assert_eq!(e[2], (9, 1));
        assert_eq!(mg.argmax(), Some((7, 3)));
    }

    #[test]
    fn merge_preserves_error_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let a_stream: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..40)).collect();
        let b_stream: Vec<u64> = (0..2000).map(|_| rng.gen_range(0..40)).collect();
        let k = 9usize;
        let mut a = run(k, &a_stream);
        let b = run(k, &b_stream);
        a.merge(&b);
        assert!(a.len() <= k);
        assert_eq!(a.processed(), 5000);
        let bound = 5000 / (k as u64 + 1);
        for key in 0..40u64 {
            let truth = a_stream
                .iter()
                .chain(&b_stream)
                .filter(|&&x| x == key)
                .count() as u64;
            let est = a.estimate(key);
            assert!(est <= truth, "key {key} overestimates after merge");
            assert!(est + bound >= truth, "key {key} undercounts after merge");
        }
    }

    #[test]
    fn space_accounts_keys_and_counters() {
        let mg = run(4, &[1, 1, 1]);
        // One filled slot: 16 key bits + gamma(3) = 5 bits; 3 empty slots;
        // processed = 3 → gamma(3) = 5.
        assert_eq!(mg.model_bits(), 16 + 5 + 3 + 5);
    }
}
