//! The Misra–Gries frequent-items summary \[MG82\].
//!
//! Both of the paper's heavy-hitter algorithms embed a Misra–Gries table:
//! Algorithm 1 runs it over *hashed* ids ("Instead of storing the id of
//! any item x in the Misra-Gries table we only store the hash h(x)"),
//! Algorithm 2 runs it over raw ids with `2/φ` counters to produce its
//! candidate set. It is also the `O(ε⁻¹(log n + log m))`-bit baseline the
//! paper improves on, re-exported as such by `hh-baselines`.
//!
//! Guarantee: after `s` insertions, every estimate satisfies
//! `f_x − s/(k+1) ≤ estimate(x) ≤ f_x` where `k` is the capacity.
//!
//! The table is a small open-addressed array (multiplicative hash, linear
//! probing, ≤ 50% load) rather than a `HashMap`: this insert sits on the
//! per-sampled-item path of both heavy-hitter algorithms and *is* the
//! `misra_gries` baseline, so the hit path must be a multiply, a masked
//! probe, and one increment. A slot is live iff its count is nonzero —
//! Misra–Gries removes entries exactly when their counter hits zero, so
//! no tombstones are needed: the decrement-all step rebuilds the (tiny)
//! table, which the standard argument amortizes against earlier
//! increments.
//!
//! The decrement-all step is implemented directly; each decrement is paid
//! for by an earlier increment, so updates are amortized `O(1)` (worst-case
//! `O(1)` variants exist via the \[DLOM02\] doubly-linked group structure;
//! the paper's `O(1)` worst-case claim instead comes from spreading work
//! across the gaps between *sampled* items, which is how Algorithm 1 uses
//! this table).

use crate::error::{MergeError, SnapshotError};
use crate::mergeable::{check_compatible, snapshot, MergeableSummary, RestoreReport};
use crate::traits::StreamSummary;
use hh_space::space::{gamma_bits, SpaceUsage};
use serde::{Deserialize, Serialize};

/// Multiplicative-hash constant (2⁶⁴/φ, odd).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A Misra–Gries table with `k` counters over `u64` keys.
#[derive(Debug, Clone)]
pub struct MisraGries {
    /// Open-addressed parallel arrays; `counts[i] == 0` marks an empty
    /// slot. Power-of-two length `> 2·capacity`, so probe chains stay
    /// short and an empty slot always terminates a scan.
    keys: Vec<u64>,
    counts: Vec<u64>,
    /// `keys.len() - 1` (power-of-two mask).
    mask: usize,
    /// `64 − log₂(keys.len())`, the multiplicative-hash shift.
    shift: u32,
    /// Live entries.
    len: usize,
    capacity: usize,
    /// Bits charged per stored key (callers price raw ids at `log n` and
    /// hashed ids at `log(hash range)`).
    key_bits: u64,
    processed: u64,
    /// Reused survivor buffer for decrement-all / merge rebuilds.
    scratch: Vec<(u64, u64)>,
}

impl MisraGries {
    /// Table with `capacity ≥ 1` counters, charging `key_bits` per stored
    /// key in the space model.
    pub fn new(capacity: usize, key_bits: u64) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        // ≥ 2·(capacity+1) slots: at most ~50% load, so probes stay short
        // and an empty slot always exists to stop them.
        let slots = ((capacity + 1) * 2).next_power_of_two().max(4);
        Self {
            keys: vec![0; slots],
            counts: vec![0; slots],
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
            capacity,
            key_bits,
            processed: 0,
            scratch: Vec::new(),
        }
    }

    /// Convenience constructor pricing keys as ids from `[0, universe)`.
    pub fn for_universe(capacity: usize, universe: u64) -> Self {
        Self::new(capacity, hh_space::id_bits(universe))
    }

    /// Number of counters configured.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Items inserted so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        (key.wrapping_mul(SEED) >> self.shift) as usize
    }

    /// The lower-bound estimate for `key` (0 if absent).
    pub fn estimate(&self, key: u64) -> u64 {
        let mut i = self.home_slot(key);
        loop {
            let c = self.counts[i];
            if c == 0 {
                return 0;
            }
            if self.keys[i] == key {
                return c;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The worst-case undercount: `processed / (capacity + 1)`.
    pub fn max_error(&self) -> u64 {
        self.processed / (self.capacity as u64 + 1)
    }

    /// Live `(key, count)` pairs in slot order (unsorted).
    fn live(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys
            .iter()
            .zip(&self.counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&k, &c)| (k, c))
    }

    /// Live `(key, count)` pairs in **slot order** (unsorted, no
    /// allocation). This is the read-side fast path for embedding
    /// algorithms that only need the candidate key set — e.g.
    /// Algorithm 2's report pass — and re-rank by their own estimates
    /// anyway; use [`MisraGries::entries`] when decreasing-count order
    /// matters.
    pub fn live_entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.live()
    }

    /// Current `(key, count)` pairs in decreasing count order.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.live().collect();
        v.sort_unstable_by_key(|&(k, c)| (std::cmp::Reverse(c), k));
        v
    }

    /// The key with the largest counter, if any.
    pub fn argmax(&self) -> Option<(u64, u64)> {
        self.live().max_by_key(|&(k, c)| (c, std::cmp::Reverse(k)))
    }

    /// Places a key known to be absent, without capacity bookkeeping.
    fn place(&mut self, key: u64, count: u64) {
        debug_assert!(count > 0);
        let mut i = self.home_slot(key);
        while self.counts[i] != 0 {
            debug_assert_ne!(self.keys[i], key, "place() requires an absent key");
            i = (i + 1) & self.mask;
        }
        self.keys[i] = key;
        self.counts[i] = count;
        self.len += 1;
    }

    /// Rebuilds the table from `scratch` (survivor pairs). Clearing and
    /// re-placing sidesteps linear-probing tombstones: the table is at
    /// most `2·capacity` entries and rebuilds are amortized against the
    /// increments that funded the removed counts.
    fn rebuild_from_scratch(&mut self) {
        self.counts.fill(0);
        self.len = 0;
        let mut survivors = std::mem::take(&mut self.scratch);
        for &(k, c) in &survivors {
            self.place(k, c);
        }
        survivors.clear();
        self.scratch = survivors;
    }

    /// Merges another table into this one (sums counters, then reduces
    /// back to capacity by subtracting the (k+1)-th largest count — the
    /// standard mergeable-summaries construction, which preserves the
    /// error bound `s/(k+1)` for the combined stream).
    ///
    /// The counter sums run **in-table**: keys `other` shares with this
    /// table add straight into their slots (one probe each, no sorting
    /// or searching side structures), and only the keys this table has
    /// never seen go to a scratch list. If everything then fits within
    /// capacity the merge is done — the common case when the two tables
    /// track similar key sets, e.g. two halves of one skewed stream. On
    /// overflow the combined multiset is assembled in the (reused)
    /// scratch buffer, the `(k+1)`-th largest count is selected in
    /// place, and the survivors rebuild the slot array — `other` may
    /// hold more live entries than this table has slots (capacities
    /// need not match), so unconditional in-table *insertion* could
    /// fill every slot and leave the probe loops nowhere to terminate.
    /// Merges sit on the read side's window-rotation and combiner
    /// cadence, so the whole path allocates nothing after the first
    /// call.
    pub fn merge(&mut self, other: &MisraGries) {
        // Saturating: stays total even for near-u64::MAX stream
        // positions carried in through a restored snapshot.
        self.processed = self.processed.saturating_add(other.processed);
        let mut extra = std::mem::take(&mut self.scratch);
        extra.clear();
        for (k, c) in other.live() {
            if !self.add_if_present(k, c) {
                extra.push((k, c));
            }
        }
        if self.len + extra.len() <= self.capacity {
            for &(k, c) in &extra {
                self.place(k, c);
            }
            extra.clear();
            self.scratch = extra;
            return;
        }
        // Overflow: reduce the combined multiset by the (k+1)-th
        // largest count (the standard mergeable-summaries cut; key
        // order is irrelevant from here on — the rebuild places by
        // hash).
        let mut combined = extra;
        combined.extend(self.live());
        let cap = self.capacity;
        let (_, &mut (_, cut), _) = combined.select_nth_unstable_by(cap, |a, b| b.1.cmp(&a.1));
        combined.retain_mut(|(_, c)| {
            if *c > cut {
                *c -= cut;
                true
            } else {
                false
            }
        });
        self.scratch = combined;
        self.rebuild_from_scratch();
    }

    /// Adds `c` to `key`'s counter if the key is live; `false` leaves
    /// the table untouched (merge helper).
    #[inline]
    fn add_if_present(&mut self, key: u64, c: u64) -> bool {
        let mut i = self.home_slot(key);
        loop {
            let cc = self.counts[i];
            if cc == 0 {
                return false;
            }
            if self.keys[i] == key {
                self.counts[i] = cc.saturating_add(c);
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Snapshot format version tag (see [`MergeableSummary::to_bytes`]).
/// v3 appends the trailing FNV-1a/64 integrity checksum; v2 carried
/// the keys and counts as two varint blocks through the codec's bulk
/// byte channel instead of one codec call per pair.
const MG_TAG: &str = "hh.misra-gries.v3";
/// Previous (checksum-less) format, still accepted for restore.
const MG_TAG_V2: &str = "hh.misra-gries.v2";

/// Content snapshot: parameters, stream position, and the live
/// `(key, count)` entries as one interleaved varint block (key, count,
/// key, count, …) in slot order — a single buffer built and written in
/// one pass, which is what keeps the round trip cheap for the
/// few-dozen-entry tables the algorithms embed. The physical slot
/// layout is probe-history noise and is deliberately not captured —
/// restore rebuilds a fresh table with identical content, estimates,
/// and space accounting (equality on this type is content-based for
/// the same reason).
impl Serialize for MisraGries {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.reserve(self.len * 6 + 64);
        serializer.write_u64(self.capacity as u64)?;
        serializer.write_u64(self.key_bits)?;
        serializer.write_u64(self.processed)?;
        serializer.write_seq_len(self.len)?;
        let mut block = Vec::with_capacity(self.len * 6 + 8);
        for (k, c) in self.live() {
            hh_space::varint::push_uvarint(&mut block, k);
            hh_space::varint::push_uvarint(&mut block, c);
        }
        serializer.write_byte_seq(&block)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for MisraGries {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        // The table allocates 2·capacity slots eagerly, so the bound must
        // be tight enough that a crafted buffer cannot provoke a huge
        // allocation: 2^20 counters covers eps down to ~10^-6, far past
        // any configuration the constructors produce.
        let capacity = deserializer.read_u64()?;
        if capacity == 0 || capacity > (1 << 20) {
            return Err(serde::de::Error::invariant(
                "MisraGries capacity out of range",
            ));
        }
        let key_bits = deserializer.read_u64()?;
        if key_bits > 64 {
            return Err(serde::de::Error::invariant(
                "MisraGries key width above 64 bits",
            ));
        }
        let processed = deserializer.read_u64()?;
        let n = deserializer.read_seq_len()?;
        if n > capacity as usize {
            return Err(serde::de::Error::invariant(
                "MisraGries entries exceed capacity",
            ));
        }
        let block = deserializer.read_byte_seq()?;
        let mut entries = Vec::with_capacity(n);
        let mut total = 0u64;
        let mut pos = 0usize;
        for _ in 0..n {
            let bad = || serde::de::Error::invariant("MisraGries malformed entry block");
            let k = hh_space::varint::read_uvarint(&block, &mut pos).ok_or_else(bad)?;
            let c = hh_space::varint::read_uvarint(&block, &mut pos).ok_or_else(bad)?;
            if c == 0 {
                return Err(serde::de::Error::invariant("MisraGries zero-count entry"));
            }
            total = total.checked_add(c).ok_or_else(|| {
                serde::de::Error::invariant("MisraGries counts exceed stream position")
            })?;
            entries.push((k, c));
        }
        // Retained counts can never exceed the stream positions that
        // funded them — a forged buffer violating this would poison
        // every downstream threshold computation.
        if total > processed {
            return Err(serde::de::Error::invariant(
                "MisraGries counts exceed stream position",
            ));
        }
        if pos != block.len() {
            return Err(serde::de::Error::invariant("MisraGries trailing bytes"));
        }
        // Validate key uniqueness *before* any entry is placed —
        // `place()` requires absent keys.
        let mut keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(serde::de::Error::invariant("MisraGries duplicate keys"));
        }
        let mut table = MisraGries::new(capacity as usize, key_bits);
        for (k, c) in entries {
            table.place(k, c);
        }
        table.processed = processed;
        Ok(table)
    }
}

impl MergeableSummary for MisraGries {
    /// The classic mergeable-summaries counter merge (see
    /// [`MisraGries::merge`]): sum counters, subtract the `(k+1)`-th
    /// largest. Requires equal capacity and key pricing, so the merged
    /// table carries the combined stream's `s/(k+1)` bound at the same
    /// `k`.
    ///
    /// # Example
    ///
    /// ```
    /// use hh_core::{MergeableSummary, MisraGries, StreamSummary};
    ///
    /// let mut a = MisraGries::new(4, 16);
    /// a.insert_batch(&[7, 7, 7, 1]);
    /// let mut b = MisraGries::new(4, 16);
    /// b.insert_batch(&[7, 2, 2]);
    /// a.merge_from(&b).unwrap();
    /// assert_eq!(a.processed(), 7);
    /// assert_eq!(a.argmax().unwrap().0, 7);
    /// ```
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        check_compatible(&self.capacity, &other.capacity, "capacities")?;
        check_compatible(&self.key_bits, &other.key_bits, "key widths")?;
        self.merge(other);
        Ok(())
    }

    fn to_bytes(&self) -> bytes::Bytes {
        snapshot::encode(MG_TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(MG_TAG, &[MG_TAG_V2], bytes)
    }
}

impl PartialEq for MisraGries {
    /// Content equality (same entries, parameters, and stream position);
    /// the physical slot layout is history-dependent and irrelevant.
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.key_bits == other.key_bits
            && self.processed == other.processed
            && self.entries() == other.entries()
    }
}

impl Eq for MisraGries {}

impl MisraGries {
    /// The insert body after the stream-position increment, with the
    /// home slot already computed (shared by the scalar and batch paths;
    /// the home slot depends only on the key and the fixed table shape,
    /// so precomputed slots stay valid across decrement rebuilds).
    #[inline]
    fn insert_at(&mut self, key: u64, home: usize) {
        let mut i = home;
        loop {
            let c = self.counts[i];
            if c == 0 {
                break;
            }
            if self.keys[i] == key {
                self.counts[i] = c + 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
        if self.len < self.capacity {
            self.keys[i] = key;
            self.counts[i] = 1;
            self.len += 1;
            return;
        }
        // Table full and key absent: decrement everything (the incoming
        // item's single unit annihilates with one unit of every counter)
        // and rebuild from the survivors.
        let mut survivors = std::mem::take(&mut self.scratch);
        survivors.clear();
        survivors.extend(self.live().filter(|&(_, c)| c > 1).map(|(k, c)| (k, c - 1)));
        self.scratch = survivors;
        self.rebuild_from_scratch();
    }
}

impl StreamSummary for MisraGries {
    fn insert(&mut self, key: u64) {
        self.processed += 1;
        self.insert_at(key, self.home_slot(key));
    }

    /// Batch ingestion: a hash pass fills a tile of home slots (a tight
    /// multiply/shift loop the compiler can pipeline, free of the probe
    /// loop's dependent loads), then the update pass probes in element
    /// order. State after the batch is bit-identical to element-wise
    /// insertion.
    fn insert_batch(&mut self, items: &[u64]) {
        const TILE: usize = 256;
        let mut slots = [0u32; TILE];
        for tile in items.chunks(TILE) {
            for (s, &key) in slots.iter_mut().zip(tile) {
                *s = self.home_slot(key) as u32;
            }
            self.processed += tile.len() as u64;
            for (&key, &home) in tile.iter().zip(&slots) {
                self.insert_at(key, home as usize);
            }
        }
    }
}

impl SpaceUsage for MisraGries {
    fn model_bits(&self) -> u64 {
        let filled: u64 = self
            .live()
            .map(|(_, c)| self.key_bits + gamma_bits(c))
            .sum();
        // Empty slots still need a presence bit; the stream-position
        // counter is charged at its variable-length cost.
        let empty = (self.capacity - self.len.min(self.capacity)) as u64;
        filled + empty + gamma_bits(self.processed)
    }

    fn heap_bytes(&self) -> usize {
        (self.keys.capacity() + self.counts.capacity()) * 8 + self.scratch.capacity() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(capacity: usize, stream: &[u64]) -> MisraGries {
        let mut mg = MisraGries::new(capacity, 16);
        mg.insert_all(stream);
        mg
    }

    #[test]
    fn exact_when_under_capacity() {
        let mg = run(10, &[1, 2, 2, 3, 3, 3]);
        assert_eq!(mg.estimate(1), 1);
        assert_eq!(mg.estimate(2), 2);
        assert_eq!(mg.estimate(3), 3);
        assert_eq!(mg.estimate(9), 0);
        assert_eq!(mg.max_error(), 0);
    }

    #[test]
    fn classic_error_bound_holds() {
        // Stream: item 0 heavy (400), 200 singletons. k = 7.
        let mut stream: Vec<u64> = std::iter::repeat_n(0, 400).collect();
        stream.extend(1000..1200u64);
        // Interleave adversarially: singleton after every other heavy copy.
        let mut inter = Vec::new();
        let mut singles = 1000..1200u64;
        for (i, &x) in stream.iter().enumerate() {
            if x == 0 {
                inter.push(0);
                if i % 2 == 0 {
                    if let Some(s) = singles.next() {
                        inter.push(s);
                    }
                }
            }
        }
        let mg = run(7, &inter);
        let s = mg.processed();
        let est = mg.estimate(0);
        assert!(est <= 400);
        assert!(
            est + s / 8 >= 400,
            "undercount too large: est {est}, bound {}",
            s / 8
        );
    }

    #[test]
    fn never_overestimates_on_random_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let stream: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..50)).collect();
        let mg = run(9, &stream);
        for key in 0..50u64 {
            let truth = stream.iter().filter(|&&x| x == key).count() as u64;
            let est = mg.estimate(key);
            assert!(est <= truth, "key {key}: est {est} > truth {truth}");
            assert!(est + mg.max_error() >= truth, "key {key} undercount");
        }
    }

    #[test]
    fn table_never_exceeds_capacity() {
        let mut mg = MisraGries::new(5, 16);
        for x in 0..10_000u64 {
            mg.insert(x % 97);
            assert!(mg.len() <= 5);
        }
    }

    #[test]
    fn entries_sorted_descending() {
        let mg = run(10, &[7, 7, 7, 8, 8, 9]);
        let e = mg.entries();
        assert_eq!(e[0], (7, 3));
        assert_eq!(e[1], (8, 2));
        assert_eq!(e[2], (9, 1));
        assert_eq!(mg.argmax(), Some((7, 3)));
    }

    #[test]
    fn content_equality_ignores_probe_history() {
        // Same multiset of counters via different histories (one table
        // went through decrement churn) must compare equal.
        let a = run(3, &[5, 5, 6]);
        let b = run(3, &[9, 7, 8, 5, 5, 6, 9, 7, 8]);
        // a: {5: 2, 6: 1}; b ends with the same survivors only if the
        // churn removed the rest — verify and compare content.
        assert_eq!(a.entries(), vec![(5, 2), (6, 1)]);
        let mut c = run(3, &[6, 5, 5]);
        c.processed = a.processed; // align stream position for Eq
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_preserves_error_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let a_stream: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..40)).collect();
        let b_stream: Vec<u64> = (0..2000).map(|_| rng.gen_range(0..40)).collect();
        let k = 9usize;
        let mut a = run(k, &a_stream);
        let b = run(k, &b_stream);
        a.merge(&b);
        assert!(a.len() <= k);
        assert_eq!(a.processed(), 5000);
        let bound = 5000 / (k as u64 + 1);
        for key in 0..40u64 {
            let truth = a_stream
                .iter()
                .chain(&b_stream)
                .filter(|&&x| x == key)
                .count() as u64;
            let est = a.estimate(key);
            assert!(est <= truth, "key {key} overestimates after merge");
            assert!(est + bound >= truth, "key {key} undercounts after merge");
        }
    }

    #[test]
    fn merge_from_larger_capacity_table_terminates_and_reduces() {
        // `other` holds more live entries than `a` has slots; the merge
        // must reduce to `a`'s capacity, not hang probing a full table.
        let mut a = run(4, &[1, 1, 1, 2, 2, 3, 4]);
        let mut b = MisraGries::new(32, 16);
        for k in 100..130u64 {
            for _ in 0..=(k - 100) {
                b.insert(k);
            }
        }
        assert!(b.len() > a.keys.len());
        a.merge(&b);
        assert!(a.len() <= 4);
        assert_eq!(a.processed(), 7 + b.processed());
        // The heaviest incoming key survives the cut.
        assert!(a.estimate(129) > 0);
    }

    #[test]
    fn space_accounts_keys_and_counters() {
        let mg = run(4, &[1, 1, 1]);
        // One filled slot: 16 key bits + gamma(3) = 5 bits; 3 empty slots;
        // processed = 3 → gamma(3) = 5.
        assert_eq!(mg.model_bits(), 16 + 5 + 3 + 5);
    }

    #[test]
    fn batch_insert_matches_element_wise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let stream: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..500)).collect();
        let mut scalar = MisraGries::new(13, 16);
        for &x in &stream {
            scalar.insert(x);
        }
        let mut batch = MisraGries::new(13, 16);
        for chunk in stream.chunks(777) {
            batch.insert_batch(chunk);
        }
        assert_eq!(scalar, batch);
    }

    #[test]
    fn snapshot_roundtrip_is_content_identical() {
        use crate::mergeable::MergeableSummary;
        let mg = run(7, &(0..5000u64).map(|i| i % 61).collect::<Vec<_>>());
        let back = MisraGries::from_bytes(&mg.to_bytes()).unwrap();
        assert_eq!(mg, back);
        assert_eq!(mg.entries(), back.entries());
        assert_eq!(mg.model_bits(), back.model_bits());
        // Wrong tag and truncation are rejected.
        assert!(MisraGries::from_bytes(b"junk").is_err());
        let buf = mg.to_bytes();
        assert!(MisraGries::from_bytes(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn trait_merge_rejects_mismatched_tables() {
        use crate::error::MergeError;
        use crate::mergeable::MergeableSummary;
        let mut a = MisraGries::new(4, 16);
        let b = MisraGries::new(5, 16);
        assert_eq!(
            a.merge_from(&b),
            Err(MergeError::Incompatible("capacities"))
        );
        let c = MisraGries::new(4, 20);
        assert_eq!(
            a.merge_from(&c),
            Err(MergeError::Incompatible("key widths"))
        );
    }

    #[test]
    fn heavy_survivor_outlives_decrement_churn() {
        // A genuinely heavy key must survive many decrement-all rebuilds
        // with the classic bound intact.
        let mut stream = Vec::new();
        for i in 0..4000u64 {
            stream.push(42);
            stream.push(10_000 + i); // fresh singleton every step
        }
        let mg = run(4, &stream);
        assert!(mg.estimate(42) >= 4000 - mg.max_error());
        assert!(mg.estimate(42) <= 4000);
    }
}
