//! The paper's algorithms: optimal ℓ1-heavy hitters and friends.
//!
//! This crate implements every algorithm of Bhattacharyya–Dey–Woodruff,
//! *An Optimal Algorithm for ℓ1-Heavy Hitters in Insertion Streams and
//! Related Problems* (PODS 2016):
//!
//! | Paper | Type | Guarantee |
//! |-------|------|-----------|
//! | Algorithm 1 / Thm 1 | [`SimpleListHh`] | (ε,φ)-heavy hitters, `O(ε⁻¹ log ε⁻¹ + φ⁻¹ log n + log log m)` bits |
//! | Algorithm 2 / Thm 2 | [`OptimalListHh`] | (ε,φ)-heavy hitters, `O(ε⁻¹ log φ⁻¹ + φ⁻¹ log n + log log m)` bits |
//! | Thm 3 | [`EpsMaximum`] | max frequency ±εm, `O(min(ε⁻¹,n) log ε⁻¹ + log n + log log m)` bits |
//! | Algorithm 3 / Thm 4 | [`EpsMinimum`] | min frequency ±εm, `O(ε⁻¹ log log (εδ)⁻¹ + log log m)` bits |
//! | Thm 7 | [`UnknownLengthHh`] | (ε,φ)-heavy hitters without knowing `m` |
//!
//! (The voting-stream algorithms of Theorems 5, 6 and 8 live in the
//! `hh-votes` crate; the baselines the paper improves on live in
//! `hh-baselines`.)
//!
//! # Example
//!
//! ```
//! use hh_core::{HhParams, SimpleListHh, HeavyHitters, StreamSummary};
//!
//! // 1% additive error, report everything above 5% frequency.
//! let params = HhParams::new(0.01, 0.05).unwrap();
//! let m = 100_000u64;
//! let mut algo = SimpleListHh::new(params, 1 << 20, m, 42).unwrap();
//! for i in 0..m {
//!     // item 7 has frequency 50%, the rest is noise
//!     algo.insert(if i % 2 == 0 { 7 } else { i });
//! }
//! let report = algo.report();
//! assert!(report.contains(7));
//! let est = report.estimate(7).unwrap();
//! assert!((est - 50_000.0).abs() <= 0.01 * m as f64);
//! ```
//!
//! # Randomness and determinism
//!
//! Every algorithm owns a seeded [`rand::rngs::StdRng`]; runs are exactly
//! reproducible given the seed. Failure probability δ is a first-class
//! parameter: with probability at most δ a report may violate its
//! guarantee, exactly as in the paper.
//!
//! # Space accounting
//!
//! Every algorithm implements [`hh_space::SpaceUsage`]. `model_bits()`
//! charges the paper's storage model (§2.3): ids at `⌈log₂ range⌉` bits,
//! counters at Elias-gamma width, hash seeds, and `O(log log m)` sampler
//! state. The Table-1 experiments plot that number against the bound
//! formulas in `hh_space::bounds`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo1;
pub mod algo2;
pub mod cache;
pub mod config;
pub mod error;
pub mod maximum;
pub mod mergeable;
pub mod mg;
pub mod minimum;
pub mod report;
pub mod traits;
pub mod unknown;

pub use algo1::SimpleListHh;
pub use algo2::{EpochMode, OptimalListHh};
pub use cache::QueryCache;
pub use config::{Constants, HhParams};
pub use error::{MergeError, ParamError, SnapshotError};
pub use maximum::EpsMaximum;
pub use mergeable::{MergeableSummary, RestoreReport};
pub use mg::MisraGries;
pub use minimum::EpsMinimum;
pub use report::{ItemEstimate, Report};
pub use traits::{FrequencyEstimator, HeavyHitters, StreamSummary};
pub use unknown::{PositionTracking, UnknownLengthHh};

pub mod prelude {
    //! One-line import for downstream crates: the summary traits
    //! (including [`MergeableSummary`]) plus the five paper algorithms
    //! and their parameter type.
    //!
    //! ```
    //! use hh_core::prelude::*;
    //!
    //! let params = HhParams::new(0.01, 0.05).unwrap();
    //! let mut algo = SimpleListHh::new(params, 1 << 20, 1000, 42).unwrap();
    //! algo.insert(7);
    //! assert!(algo.report().estimate(7).is_some());
    //! ```

    pub use crate::config::HhParams;
    pub use crate::mergeable::MergeableSummary;
    pub use crate::report::{ItemEstimate, Report};
    pub use crate::traits::{FrequencyEstimator, HeavyHitters, StreamSummary};
    pub use crate::{EpsMaximum, EpsMinimum, OptimalListHh, SimpleListHh, UnknownLengthHh};
}
