//! Algorithm 3: ε-Minimum — find an item whose frequency is within εm of
//! the minimum over the whole universe (Theorem 4).
//!
//! The problem only makes sense for small universes ("This only makes
//! sense for small universes, as otherwise outputting a random item
//! typically works"), and the algorithm exploits exactly that. Its REPORT
//! procedure (§3.3) cascades through four regimes:
//!
//! 1. **Huge universe** (`|U| ≥ 1/((1−δ)ε)`): a uniformly random item is,
//!    with probability ≥ 1−δ, one of the many items of frequency < εm.
//! 2. **Unsampled item exists** (`S1 ≠ U`): `S1` samples at rate
//!    `Θ(ℓ₁/m)` with `ℓ₁ = Θ(ε⁻¹ log(εδ)⁻¹)`; any item missing from the
//!    `S1` bit vector has frequency `O(εm / log(1/ε))` and is a valid
//!    answer.
//! 3. **Few distinct items** (`≤ 1/(ε log ε⁻¹)`): exact counts of a
//!    `Θ(ε⁻² log δ⁻¹)`-size sample (`S2`) resolve the minimum to ±εm.
//! 4. **Otherwise**: the minimum frequency is sandwiched in
//!    `[Θ(εm/log ε⁻¹), Θ(εm·log ε⁻¹)]`, so the `S3` counters can be
//!    **truncated** at `polylog(1/εδ)` — each costs only
//!    `O(log log (εδ)⁻¹)` bits, which is where the improvement over
//!    running an (ε, ε)-heavy-hitters algorithm comes from.
//!
//! Because the universe is small, `S2`/`S3` are dense arrays indexed by
//! item id — no id storage at all (the paper stores ids; a dense array is
//! never larger here since `|U| < 1/((1−δ)ε)`, see DESIGN.md).

use crate::config::Constants;
use crate::error::ParamError;
use crate::report::ItemEstimate;
use crate::traits::StreamSummary;
use hh_sampling::SkipSampler;
use hh_space::{BitVec, SpaceUsage, VarCounterArray};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The state for universes small enough to track.
#[derive(Debug, Clone)]
struct Tracked {
    /// Bit per universe item: sampled into `S1`?
    s1: BitVec,
    s1_sampler: SkipSampler,
    /// Bit per universe item: seen at all? (exact distinct tracking; the
    /// universe is small so this costs `|U| < 1/((1−δ)ε)` bits).
    seen: BitVec,
    distinct: u64,
    /// Case-3 threshold `1/(ε log(1/ε))`.
    distinct_cap: u64,
    /// Exact counts over the `S2` sample; frozen once `distinct` passes
    /// the cap (lines 9–10 of the pseudocode).
    s2: VarCounterArray,
    s2_sampler: SkipSampler,
    s2_active: bool,
    /// Truncated counts over the `S3` sample.
    s3: VarCounterArray,
    s3_sampler: SkipSampler,
    /// Truncation cap `Θ(log⁴(2/εδ))`.
    cap3: u64,
}

#[derive(Debug, Clone)]
enum Backend {
    /// Case 1: universe too large — a pre-drawn random item is the answer.
    RandomItem(u64),
    Tracked(Box<Tracked>),
}

/// The ε-Minimum algorithm (Theorem 4).
#[derive(Debug, Clone)]
pub struct EpsMinimum {
    eps: f64,
    delta: f64,
    universe: u64,
    backend: Backend,
    rng: StdRng,
    p1: f64,
    p2: f64,
    p3: f64,
}

impl EpsMinimum {
    /// Creates the algorithm over universe `[0, universe)` for a stream of
    /// advertised length `m`.
    pub fn new(eps: f64, delta: f64, universe: u64, m: u64, seed: u64) -> Result<Self, ParamError> {
        Self::with_constants(eps, delta, universe, m, seed, Constants::default())
    }

    /// Creates the algorithm with an explicit constants profile.
    pub fn with_constants(
        eps: f64,
        delta: f64,
        universe: u64,
        m: u64,
        seed: u64,
        consts: Constants,
    ) -> Result<Self, ParamError> {
        if !(eps > 0.0 && eps < 1.0 && eps.is_finite()) {
            return Err(ParamError::EpsOutOfRange(eps));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ParamError::DeltaOutOfRange(delta));
        }
        if universe == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        if m == 0 {
            return Err(ParamError::ZeroLength);
        }
        let mut rng = StdRng::seed_from_u64(seed);

        // Case 1: |U| ≥ 1/((1−δ)ε) — answer with a random item (lines
        // 14–15 of the pseudocode).
        let cutoff = 1.0 / ((1.0 - delta) * eps);
        if universe as f64 >= cutoff {
            let span = (cutoff.ceil() as u64).min(universe);
            let choice = rng.gen_range(0..span);
            return Ok(Self {
                eps,
                delta,
                universe,
                backend: Backend::RandomItem(choice),
                rng,
                p1: 0.0,
                p2: 0.0,
                p3: 0.0,
            });
        }

        let log_term = (6.0 / (eps * delta)).ln().max(1.0);
        let l1 = (consts.min_l1_factor * log_term / eps).ceil();
        let l2 = (consts.sample_factor * (6.0 / delta).ln() / (eps * eps)).ceil();
        let l3 = (consts.min_l3_factor * log_term.powi(3) / eps).ceil();
        let cap_log = (2.0 / (eps * delta)).ln().max(1.0);
        let cap3 = (consts.min_cap_factor * cap_log.powi(4)).ceil() as u64;

        let s1_sampler = SkipSampler::with_probability((2.0 * l1 / m as f64).min(1.0));
        let s2_sampler = SkipSampler::with_probability((2.0 * l2 / m as f64).min(1.0));
        let s3_sampler = SkipSampler::with_probability((2.0 * l3 / m as f64).min(1.0));
        let (p1, p2, p3) = (
            s1_sampler.probability(),
            s2_sampler.probability(),
            s3_sampler.probability(),
        );

        let ln_inv_eps = (1.0 / eps).ln().max(1.0);
        let tracked = Tracked {
            s1: BitVec::zeros(universe as usize),
            s1_sampler,
            seen: BitVec::zeros(universe as usize),
            distinct: 0,
            distinct_cap: (1.0 / (eps * ln_inv_eps)).ceil() as u64,
            s2: VarCounterArray::new(universe as usize),
            s2_sampler,
            s2_active: true,
            s3: VarCounterArray::new(universe as usize),
            s3_sampler,
            cap3,
        };

        Ok(Self {
            eps,
            delta,
            universe,
            backend: Backend::Tracked(Box::new(tracked)),
            rng,
            p1,
            p2,
            p3,
        })
    }

    /// The reported ε-minimum item with its frequency estimate. Follows
    /// the REPORT cascade of the pseudocode.
    pub fn min_estimate(&self) -> ItemEstimate {
        match &self.backend {
            Backend::RandomItem(choice) => ItemEstimate {
                item: *choice,
                count: 0.0,
            },
            Backend::Tracked(t) => {
                // Case 2: some item never entered S1.
                if let Some(missing) = t.s1.first_zero() {
                    return ItemEstimate {
                        item: missing as u64,
                        count: t.s2.get(missing) as f64 / self.p2.max(f64::MIN_POSITIVE),
                    };
                }
                // Case 3: few distinct items — exact-count sample decides.
                if t.distinct <= t.distinct_cap && t.s2_active {
                    let idx = t.s2.argmin().unwrap_or(0);
                    return ItemEstimate {
                        item: idx as u64,
                        count: t.s2.get(idx) as f64 / self.p2,
                    };
                }
                // Case 4: truncated counters decide.
                let idx = t.s3.argmin().unwrap_or(0);
                ItemEstimate {
                    item: idx as u64,
                    count: t.s3.get(idx) as f64 / self.p3,
                }
            }
        }
    }

    /// Universe size.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Whether the large-universe shortcut (case 1) is active.
    pub fn is_random_mode(&self) -> bool {
        matches!(self.backend, Backend::RandomItem(_))
    }

    /// Diagnostic: the three realized sampling probabilities `(p1,p2,p3)`.
    pub fn probabilities(&self) -> (f64, f64, f64) {
        (self.p1, self.p2, self.p3)
    }
}

impl StreamSummary for EpsMinimum {
    fn insert(&mut self, item: u64) {
        debug_assert!(item < self.universe, "item outside declared universe");
        let t = match &mut self.backend {
            Backend::RandomItem(_) => return,
            Backend::Tracked(t) => t,
        };
        let idx = item as usize;

        // Exact distinct tracking (drives the S2 freeze).
        if !t.seen.get(idx) {
            t.seen.set(idx, true);
            t.distinct += 1;
            if t.distinct > t.distinct_cap {
                t.s2_active = false;
            }
        }

        // S1 membership bit (line 8).
        if t.s1_sampler.accept(&mut self.rng) {
            t.s1.set(idx, true);
        }

        // S2 exact counts while the distinct count is small (lines 9–10).
        if t.s2_active && t.s2_sampler.accept(&mut self.rng) {
            t.s2.increment(idx);
        }

        // S3 truncated counts (line 11).
        if t.s3_sampler.accept(&mut self.rng) {
            t.s3.increment(idx);
            t.s3.truncate_at(idx, t.cap3);
        }
    }
}

impl SpaceUsage for EpsMinimum {
    fn model_bits(&self) -> u64 {
        match &self.backend {
            // Case 1 stores one id out of the first ⌈1/((1−δ)ε)⌉ items.
            Backend::RandomItem(_) => {
                hh_space::id_bits((1.0 / ((1.0 - self.delta) * self.eps)).ceil() as u64)
            }
            Backend::Tracked(t) => {
                t.s1.model_bits()
                    + t.seen.model_bits()
                    + if t.s2_active { t.s2.model_bits() } else { 0 }
                    + t.s3.model_bits()
                    + t.s1_sampler.model_bits()
                    + t.s2_sampler.model_bits()
                    + t.s3_sampler.model_bits()
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match &self.backend {
            Backend::RandomItem(_) => 0,
            Backend::Tracked(t) => {
                t.s1.heap_bytes() + t.seen.heap_bytes() + t.s2.heap_bytes() + t.s3.heap_bytes()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_streams::{arrange, ExactCounts, OrderPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn large_universe_returns_random_light_item() {
        // ε = 0.1, δ = 0.2 → cutoff 12.5; universe 1000 triggers case 1.
        let a = EpsMinimum::new(0.1, 0.2, 1000, 10_000, 3).unwrap();
        assert!(a.is_random_mode());
        let e = a.min_estimate();
        assert!(e.item < 13);
    }

    #[test]
    fn finds_zero_frequency_item_when_one_exists() {
        // Universe 10; stream never contains item 6.
        let m = 100_000u64;
        let mut counts: Vec<(u64, u64)> =
            (0..10u64).filter(|&i| i != 6).map(|i| (i, m / 9)).collect();
        let rem = m - counts.iter().map(|&(_, c)| c).sum::<u64>();
        counts[0].1 += rem;
        let mut rng = StdRng::seed_from_u64(5);
        let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
        let mut a = EpsMinimum::new(0.1, 0.2, 10, m, 6).unwrap();
        assert!(!a.is_random_mode());
        a.insert_all(&stream);
        assert_eq!(a.min_estimate().item, 6);
    }

    #[test]
    fn few_distinct_items_resolved_by_exact_sample() {
        // Universe 8, only 3 distinct items, clear minimum at item 2.
        let m = 200_000u64;
        let counts = [(0u64, 120_000u64), (1, 70_000), (2, 10_000)];
        let mut rng = StdRng::seed_from_u64(7);
        let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
        let mut a = EpsMinimum::new(0.05, 0.2, 8, m, 8).unwrap();
        a.insert_all(&stream);
        let e = a.min_estimate();
        // Items 3..8 have frequency 0 — they are the true minima.
        let oracle = ExactCounts::from_stream(&stream);
        let slack = (0.05 * m as f64) as u64;
        assert!(
            oracle.is_eps_minimum(e.item, 8, slack),
            "reported {} which is not an eps-minimum",
            e.item
        );
    }

    #[test]
    fn full_support_minimum_within_eps() {
        // Every universe item present; min planted at item 4.
        let m = 400_000u64;
        let universe = 12u64;
        let mut counts: Vec<(u64, u64)> = (0..universe).map(|i| (i, 36_000)).collect();
        counts[4].1 = 4_000; // the minimum
        let planted: u64 = counts.iter().map(|&(_, c)| c).sum();
        counts[0].1 += m - planted;
        let mut rng = StdRng::seed_from_u64(9);
        let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
        let mut a = EpsMinimum::new(0.04, 0.2, universe, m, 10).unwrap();
        a.insert_all(&stream);
        let e = a.min_estimate();
        let oracle = ExactCounts::from_stream(&stream);
        let slack = (0.04 * m as f64) as u64;
        assert!(
            oracle.is_eps_minimum(e.item, universe, slack),
            "reported item {} freq {} vs min {}",
            e.item,
            oracle.freq(e.item),
            oracle.min_over_universe(universe)
        );
    }

    #[test]
    fn truncation_caps_are_enforced() {
        let m = 1_000_000u64;
        let mut a = EpsMinimum::new(0.05, 0.2, 8, m, 11).unwrap();
        for i in 0..m {
            a.insert(i % 8);
        }
        if let Backend::Tracked(t) = &a.backend {
            let cap = t.cap3;
            assert!(t.s3.iter().all(|c| c <= cap), "counter exceeded cap {cap}");
        } else {
            panic!("expected tracked backend");
        }
    }

    #[test]
    fn space_stays_small_even_for_long_streams() {
        let m = 1 << 22;
        let mut a = EpsMinimum::new(0.05, 0.2, 16, m, 12).unwrap();
        for i in 0..(1 << 18) {
            a.insert(i % 16);
        }
        // Budget shape: O(ε⁻¹ log log (εδ)⁻¹ + log log m); generous cap.
        assert!(a.model_bits() < 4096, "model bits {}", a.model_bits());
    }

    #[test]
    fn constructor_validates() {
        assert!(EpsMinimum::new(0.0, 0.1, 10, 10, 0).is_err());
        assert!(EpsMinimum::new(0.1, 0.0, 10, 10, 0).is_err());
        assert!(EpsMinimum::new(0.1, 0.1, 0, 10, 0).is_err());
        assert!(EpsMinimum::new(0.1, 0.1, 10, 0, 0).is_err());
    }
}
