//! Mergeable summaries and binary snapshot/restore.
//!
//! A streaming summary is *mergeable* when summaries built over an
//! arbitrary partition of a stream can be combined into one summary of
//! the whole stream with the same guarantee — the standard route
//! (Agarwal–Cormode–Huang–Phillips–Wei–Yi 2012) to distributed
//! aggregation, checkpoint/resume, and windowed reporting. The
//! deterministic counter summaries (Misra–Gries, Space-Saving, Lossy
//! Counting) merge unconditionally; the randomized ones (the paper's
//! Algorithms 1 and 2, Count-Min, CountSketch) merge **only between
//! seed-aligned instances**: both sides must have drawn the same hash
//! functions, so that "bucket `i` of repetition `j`" means the same
//! item set in both tables and cell-wise addition is meaningful. The
//! `hh-pipeline` presets construct such instances by splitting the
//! *structure seed* (hash draws, shared) from the *stream seed*
//! (sampling coins, per-shard); see DESIGN.md §"Mergeable summaries".
//!
//! Snapshots are the persistence half of the same contract: a summary
//! serializes to a tagged binary buffer ([`MergeableSummary::to_bytes`],
//! a vendored-[`bytes::Bytes`] value) that restores to a bit-identical
//! summary — same future reports, same space accounting, and, because
//! the RNG and sampler states are captured too, the same behavior under
//! continued ingestion.
//!
//! # Example: partition, merge, snapshot, restore
//!
//! ```
//! use hh_core::{HeavyHitters, MergeableSummary, MisraGries, StreamSummary};
//!
//! let stream: Vec<u64> = (0..9_000u64).map(|i| if i % 3 == 0 { 7 } else { i }).collect();
//! let (left, right) = stream.split_at(4_000);
//!
//! // Summarize the two partitions independently (e.g. on two machines).
//! let mut a = MisraGries::new(16, 32);
//! a.insert_batch(left);
//! let mut b = MisraGries::new(16, 32);
//! b.insert_batch(right);
//!
//! // Ship `b` as bytes, restore it, and fold it into `a`.
//! let wire = b.to_bytes();
//! let restored = MisraGries::from_bytes(&wire).unwrap();
//! a.merge_from(&restored).unwrap();
//!
//! // The merged summary covers the whole stream: the 33% item is the
//! // undisputed maximum, with the combined stream's error bound.
//! assert_eq!(a.processed(), 9_000);
//! assert_eq!(a.argmax().unwrap().0, 7);
//! ```

use crate::error::{MergeError, SnapshotError};
use crate::traits::StreamSummary;
use bytes::Bytes;

/// A summary of a substream that can be merged with summaries of
/// disjoint substreams, and checkpointed to bytes.
///
/// # Contract
///
/// * **Merge soundness.** If `self` summarizes substream `A` and
///   `other` summarizes a disjoint substream `B` (and the two are
///   structurally compatible — same parameters, same hash/sampler
///   seeds), then after `self.merge_from(&other)` the receiver
///   summarizes `A ⊎ B` with its type's error guarantee evaluated at
///   the combined stream length. The `prop_merge` suite enforces this
///   for every implementation in the workspace.
/// * **Snapshot fidelity.** `Self::from_bytes(&s.to_bytes())` succeeds
///   and reproduces `s.report()` (where applicable), `s`'s estimates,
///   and `s`'s space accounting bit-for-bit; randomized summaries also
///   restore their RNG/sampler state, so continued ingestion behaves
///   exactly as the original would have.
/// * **Tagging.** Buffers are tagged with a type-and-version string;
///   feeding one type's snapshot to another type's `from_bytes` returns
///   [`SnapshotError::WrongTag`] instead of misinterpreting bytes.
///
/// # Example
///
/// ```
/// use hh_core::{HhParams, HeavyHitters, MergeableSummary, SimpleListHh, StreamSummary};
///
/// let params = HhParams::new(0.05, 0.2).unwrap();
/// let m = 100_000u64;
/// // Seed-aligned instances: same structure seed (hash draws), distinct
/// // stream seeds (sampling coins) — the shape the pipeline presets build.
/// let mut a = SimpleListHh::with_seeds(params, 1 << 30, m, 7, 1).unwrap();
/// let mut b = SimpleListHh::with_seeds(params, 1 << 30, m, 7, 2).unwrap();
/// for i in 0..m {
///     let x = if i % 2 == 0 { 42 } else { i };
///     // An arbitrary position-based partition (not key-based): every
///     // third item goes left, the rest go right.
///     if i % 3 == 0 { a.insert(x) } else { b.insert(x) }
/// }
/// a.merge_from(&b).unwrap();
/// assert!(a.report().contains(42)); // the 50% item, found after merging
/// ```
pub trait MergeableSummary: StreamSummary + Sized {
    /// Folds `other` — a summary of a **disjoint** substream — into
    /// `self`, so that `self` afterwards summarizes the concatenation.
    ///
    /// # Errors
    /// [`MergeError::Incompatible`] if the two summaries were not built
    /// with the same parameters and structural seeds; `self` is left
    /// unchanged in that case.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError>;

    /// Serializes the full summary state (tables, counters, hash seeds,
    /// RNG and sampler state) into a tagged binary buffer with a
    /// trailing integrity checksum.
    fn to_bytes(&self) -> Bytes;

    /// Restores a summary from a buffer produced by
    /// [`MergeableSummary::to_bytes`], reporting how the buffer was
    /// verified: current-format buffers have their checksum validated
    /// before a single payload byte is interpreted; legacy (pre-v3)
    /// buffers carry no checksum and restore with
    /// [`RestoreReport::checksum_verified`] `= false`.
    ///
    /// Restore is total over arbitrary input: corrupted, truncated, or
    /// adversarially inflated bytes return a structured
    /// [`SnapshotError`] — never a panic, never an allocation sized
    /// from an unvalidated length prefix.
    ///
    /// # Errors
    /// [`SnapshotError`] if the buffer carries another type's tag, a
    /// bad checksum, or a malformed payload.
    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError>;

    /// Restores a summary from a buffer produced by
    /// [`MergeableSummary::to_bytes`]; the verification report of
    /// [`MergeableSummary::from_bytes_report`] is dropped.
    ///
    /// # Errors
    /// [`SnapshotError`] if the buffer carries another type's tag or a
    /// malformed payload.
    fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Ok(Self::from_bytes_report(bytes)?.0)
    }
}

/// How a restored snapshot buffer was verified; returned by
/// [`MergeableSummary::from_bytes_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreReport {
    /// Whether a trailing integrity checksum was present and matched.
    /// `false` exactly when the buffer used a legacy (pre-checksum)
    /// format version — such restores are best-effort: the payload
    /// validations all ran, but bit rot cannot be ruled out.
    pub checksum_verified: bool,
    /// Whether the buffer used a legacy format version (an older tag
    /// that is still accepted for restore).
    pub legacy_format: bool,
}

/// Shared snapshot plumbing: the tagged-buffer encode/decode helpers
/// every [`MergeableSummary`] implementation routes through.
///
/// # Wire format (v3)
///
/// ```text
/// ┌──────────────────────┬─────────────────┬──────────────────────┐
/// │ tag ("hh.<type>.vN") │ payload (serde) │ fnv1a64x4 trailer 8B │
/// └──────────────────────┴─────────────────┴──────────────────────┘
/// ```
///
/// The trailer is the striped FNV-1a/64 digest
/// (`hh_space::checksum::fnv1a64x4`, four pipelined lanes — the
/// scalar chain would dominate large-snapshot round-trips) of
/// everything before it (tag included) and is verified **before** any
/// payload byte is
/// interpreted, so a corrupt buffer is rejected by one linear scan
/// rather than by whichever decoder happens to trip over it. Legacy
/// (pre-checksum) tags are still accepted through
/// [`decode_compat`](snapshot::decode_compat)'s `legacy_tags` list —
/// those buffers decode
/// exactly as before and report `checksum_verified = false`.
pub mod snapshot {
    use super::{Bytes, RestoreReport, SnapshotError};
    use serde::bincode;
    use serde::{Deserialize, Serialize};

    /// Size of the trailing integrity checksum in bytes.
    pub const CHECKSUM_LEN: usize = 8;

    /// Maps a codec failure class onto the snapshot error taxonomy.
    fn codec_err(e: bincode::Error) -> SnapshotError {
        match e.kind() {
            bincode::ErrorKind::Truncated => SnapshotError::Truncated,
            bincode::ErrorKind::LengthOverflow => SnapshotError::LengthOverflow(e.to_string()),
            bincode::ErrorKind::Invariant => SnapshotError::InvariantViolated(e.to_string()),
            bincode::ErrorKind::Invalid => SnapshotError::Malformed(e.to_string()),
        }
    }

    /// Whether `bytes` starts with the encoding `write_str(tag)`
    /// produces (u64 length prefix + raw bytes). A bounded peek: no
    /// allocation, no cursor, no trust in the prefix.
    fn starts_with_tag(bytes: &[u8], tag: &str) -> bool {
        let Some(prefix) = bytes.get(..8) else {
            return false;
        };
        let len = u64::from_le_bytes(prefix.try_into().expect("8-byte slice"));
        len == tag.len() as u64 && bytes[8..].starts_with(tag.as_bytes())
    }

    /// Encodes `value` behind `tag` (a `"hh.<type>.v<N>"` string that
    /// names the summary type and snapshot-format version) and appends
    /// the FNV-1a/64 digest of the whole buffer as an 8-byte
    /// little-endian trailer.
    pub fn encode<T: Serialize>(tag: &str, value: &T) -> Bytes {
        let mut w = bincode::Writer::default();
        use serde::Serializer as _;
        w.write_str(tag).expect("in-memory write cannot fail");
        value
            .serialize(&mut w)
            .expect("in-memory write cannot fail");
        let mut buf = w.done().expect("in-memory write cannot fail");
        let digest = hh_space::checksum::fnv1a64x4(&buf);
        buf.extend_from_slice(&digest.to_le_bytes());
        Bytes::from(buf)
    }

    /// Decodes a buffer produced by [`encode`] with the same `tag`,
    /// accepting any of `legacy_tags` (older, checksum-less format
    /// versions) as a fallback. Returns the value together with a
    /// [`RestoreReport`] saying which path verified it.
    pub fn decode_compat<T: for<'de> Deserialize<'de>>(
        tag: &'static str,
        legacy_tags: &[&'static str],
        bytes: &[u8],
    ) -> Result<(T, RestoreReport), SnapshotError> {
        use serde::Deserializer as _;
        if starts_with_tag(bytes, tag) {
            // Current format: verify the trailer over everything before
            // it, then decode the payload between tag and trailer.
            let body_len = bytes
                .len()
                .checked_sub(CHECKSUM_LEN)
                .ok_or(SnapshotError::Truncated)?;
            let (body, trailer) = bytes.split_at(body_len);
            if body.len() < 8 + tag.len() {
                // The trailer split ate into the tag itself: the buffer
                // lost bytes after encoding.
                return Err(SnapshotError::Truncated);
            }
            let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
            if hh_space::checksum::fnv1a64x4(body) != stored {
                return Err(SnapshotError::ChecksumMismatch);
            }
            let mut r = bincode::Reader::new(body);
            let matched = r.check_str(tag).map_err(codec_err)?;
            debug_assert!(matched, "starts_with_tag pre-checked the tag");
            let value = T::deserialize(&mut r).map_err(codec_err)?;
            if r.remaining() != 0 {
                return Err(SnapshotError::InvariantViolated(format!(
                    "{} trailing bytes after payload",
                    r.remaining()
                )));
            }
            return Ok((
                value,
                RestoreReport {
                    checksum_verified: true,
                    legacy_format: false,
                },
            ));
        }
        for &legacy in legacy_tags {
            if !starts_with_tag(bytes, legacy) {
                continue;
            }
            // Legacy format: no trailer to verify; the payload
            // validations are the only line of defense, exactly as they
            // were when this format was current.
            let mut r = bincode::Reader::new(bytes);
            let matched = r.check_str(legacy).map_err(codec_err)?;
            debug_assert!(matched, "starts_with_tag pre-checked the tag");
            let value = T::deserialize(&mut r).map_err(codec_err)?;
            return Ok((
                value,
                RestoreReport {
                    checksum_verified: false,
                    legacy_format: true,
                },
            ));
        }
        let mut found = bincode::Reader::new(bytes)
            .read_string()
            .map_err(codec_err)?;
        found.truncate(64);
        Err(SnapshotError::WrongTag {
            expected: tag,
            found,
        })
    }

    /// Decodes a buffer produced by [`encode`] with the same `tag` (no
    /// legacy fallback; the verification report is dropped).
    pub fn decode<T: for<'de> Deserialize<'de>>(
        tag: &'static str,
        bytes: &[u8],
    ) -> Result<T, SnapshotError> {
        Ok(decode_compat(tag, &[], bytes)?.0)
    }

    /// Writes a `u64` counter slice as one varint block through the
    /// codec's bulk byte channel: element count, then every value
    /// LEB128-encoded into a single length-prefixed byte string. For
    /// the counter tables of the paper's algorithms — tens of
    /// thousands of cells worth `O(1)` expected bits each — this
    /// replaces one codec call and 8 bytes per cell with one bulk call
    /// and ~1 byte per cell.
    pub fn write_u64_slice<S: serde::Serializer>(
        values: &[u64],
        serializer: &mut S,
    ) -> Result<(), S::Error> {
        serializer.write_seq_len(values.len())?;
        serializer.write_byte_seq(&hh_space::encode_uvarints(values))
    }

    /// Reads back a slice written by [`write_u64_slice`], validating
    /// the block exhaustively (count, truncation, overlong runs,
    /// trailing bytes).
    pub fn read_u64_slice<'de, D: serde::Deserializer<'de>>(
        deserializer: &mut D,
    ) -> Result<Vec<u64>, D::Error> {
        let n = deserializer.read_seq_len()?;
        let block = deserializer.read_byte_seq()?;
        hh_space::decode_uvarints(&block, n)
            .ok_or_else(|| serde::de::Error::invariant("malformed varint counter block"))
    }

    /// Like [`write_u64_slice`] but delta-encoded, for **non-decreasing**
    /// slices (threshold tables): first value, then LEB128 gaps.
    ///
    /// # Errors
    /// If the slice decreases anywhere (a caller bug, surfaced as a
    /// serialization error rather than silently mis-encoded).
    pub fn write_u64_slice_delta<S: serde::Serializer>(
        values: &[u64],
        serializer: &mut S,
    ) -> Result<(), S::Error> {
        let block = hh_space::encode_deltas(values)
            .ok_or_else(|| serde::ser::Error::custom("delta-encoding a decreasing slice"))?;
        serializer.write_seq_len(values.len())?;
        serializer.write_byte_seq(&block)
    }

    /// Reads back a slice written by [`write_u64_slice_delta`].
    pub fn read_u64_slice_delta<'de, D: serde::Deserializer<'de>>(
        deserializer: &mut D,
    ) -> Result<Vec<u64>, D::Error> {
        let n = deserializer.read_seq_len()?;
        let block = deserializer.read_byte_seq()?;
        hh_space::decode_deltas(&block, n)
            .ok_or_else(|| serde::de::Error::invariant("malformed delta counter block"))
    }

    /// Serializes a `[u64; 4]` RNG state (helper for the manual serde
    /// impls of the randomized summaries).
    pub fn write_rng_state<S: serde::Serializer>(
        state: [u64; 4],
        serializer: &mut S,
    ) -> Result<(), S::Error> {
        for w in state {
            serializer.write_u64(w)?;
        }
        Ok(())
    }

    /// Reads back a `[u64; 4]` RNG state written by [`write_rng_state`].
    pub fn read_rng_state<'de, D: serde::Deserializer<'de>>(
        deserializer: &mut D,
    ) -> Result<[u64; 4], D::Error> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = deserializer.read_u64()?;
        }
        Ok(s)
    }
}

/// Equality check helper for merge compatibility: returns the
/// incompatibility error when the two values differ.
pub(crate) fn check_compatible<T: PartialEq>(
    a: &T,
    b: &T,
    what: &'static str,
) -> Result<(), MergeError> {
    if a == b {
        Ok(())
    } else {
        Err(MergeError::Incompatible(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_and_tag_mismatch() {
        let v: Vec<u64> = vec![1, 2, 3];
        let buf = snapshot::encode("hh.test.v1", &v);
        let back: Vec<u64> = snapshot::decode("hh.test.v1", &buf).unwrap();
        assert_eq!(back, v);
        let err = snapshot::decode::<Vec<u64>>("hh.other.v1", &buf).unwrap_err();
        assert!(matches!(err, SnapshotError::WrongTag { .. }));
        // Losing trailing bytes shifts the trailer onto payload bytes:
        // the digest cannot match.
        let err = snapshot::decode::<Vec<u64>>("hh.test.v1", &buf[..buf.len() - 3]).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch));
    }

    #[test]
    fn snapshot_checksum_rejects_every_bit_flip() {
        let v: Vec<u64> = vec![9, 8, 7, 6];
        let buf = snapshot::encode("hh.test.v1", &v);
        for i in 0..buf.len() {
            let mut bad = buf.to_vec();
            bad[i] ^= 1;
            let err = snapshot::decode::<Vec<u64>>("hh.test.v1", &bad).unwrap_err();
            // A flip in the tag region surfaces as WrongTag (or, when
            // it lands in the tag's length prefix, as a bounded-length
            // rejection); anywhere else the trailer catches it. Either
            // way: structured Err, never a panic.
            assert!(
                matches!(
                    err,
                    SnapshotError::ChecksumMismatch
                        | SnapshotError::WrongTag { .. }
                        | SnapshotError::LengthOverflow(_)
                        | SnapshotError::Truncated
                ),
                "offset {i}: {err}"
            );
        }
    }

    #[test]
    fn legacy_checksumless_buffers_restore_with_verified_false() {
        // Hand-build a legacy buffer: tag + payload, no trailer.
        let v: Vec<u64> = vec![4, 5];
        let mut w = serde::bincode::Writer::default();
        use serde::Serializer as _;
        w.write_str("hh.test.v1").unwrap();
        serde::Serialize::serialize(&v, &mut w).unwrap();
        let legacy = w.done().unwrap();

        let (back, report) =
            snapshot::decode_compat::<Vec<u64>>("hh.test.v2", &["hh.test.v1"], &legacy).unwrap();
        assert_eq!(back, v);
        assert!(!report.checksum_verified);
        assert!(report.legacy_format);

        // The current format reports full verification.
        let buf = snapshot::encode("hh.test.v2", &v);
        let (back, report) =
            snapshot::decode_compat::<Vec<u64>>("hh.test.v2", &["hh.test.v1"], &buf).unwrap();
        assert_eq!(back, v);
        assert!(report.checksum_verified);
        assert!(!report.legacy_format);
    }

    #[test]
    fn snapshot_rejects_trailing_garbage_and_empty_buffers() {
        let v: Vec<u64> = vec![1];
        let buf = snapshot::encode("hh.test.v1", &v);
        // Appending bytes (with a recomputed trailer) is caught by the
        // strict exact-consumption check.
        let mut padded = buf[..buf.len() - snapshot::CHECKSUM_LEN].to_vec();
        padded.extend_from_slice(&[0, 0, 0]);
        let digest = hh_space::checksum::fnv1a64x4(&padded);
        padded.extend_from_slice(&digest.to_le_bytes());
        let err = snapshot::decode::<Vec<u64>>("hh.test.v1", &padded).unwrap_err();
        assert!(matches!(err, SnapshotError::InvariantViolated(_)));
        // Degenerate inputs are classified, not panicked on.
        for bad in [&[][..], &[0u8; 3], &[0xFF; 16]] {
            assert!(snapshot::decode::<Vec<u64>>("hh.test.v1", bad).is_err());
        }
    }

    #[test]
    fn compatibility_helper_reports_field_name() {
        assert!(check_compatible(&1u64, &1u64, "x").is_ok());
        let err = check_compatible(&1u64, &2u64, "stream seeds").unwrap_err();
        assert_eq!(err, MergeError::Incompatible("stream seeds"));
        assert!(err.to_string().contains("stream seeds"));
    }
}
