//! Mergeable summaries and binary snapshot/restore.
//!
//! A streaming summary is *mergeable* when summaries built over an
//! arbitrary partition of a stream can be combined into one summary of
//! the whole stream with the same guarantee — the standard route
//! (Agarwal–Cormode–Huang–Phillips–Wei–Yi 2012) to distributed
//! aggregation, checkpoint/resume, and windowed reporting. The
//! deterministic counter summaries (Misra–Gries, Space-Saving, Lossy
//! Counting) merge unconditionally; the randomized ones (the paper's
//! Algorithms 1 and 2, Count-Min, CountSketch) merge **only between
//! seed-aligned instances**: both sides must have drawn the same hash
//! functions, so that "bucket `i` of repetition `j`" means the same
//! item set in both tables and cell-wise addition is meaningful. The
//! `hh-pipeline` presets construct such instances by splitting the
//! *structure seed* (hash draws, shared) from the *stream seed*
//! (sampling coins, per-shard); see DESIGN.md §"Mergeable summaries".
//!
//! Snapshots are the persistence half of the same contract: a summary
//! serializes to a tagged binary buffer ([`MergeableSummary::to_bytes`],
//! a vendored-[`bytes::Bytes`] value) that restores to a bit-identical
//! summary — same future reports, same space accounting, and, because
//! the RNG and sampler states are captured too, the same behavior under
//! continued ingestion.
//!
//! # Example: partition, merge, snapshot, restore
//!
//! ```
//! use hh_core::{HeavyHitters, MergeableSummary, MisraGries, StreamSummary};
//!
//! let stream: Vec<u64> = (0..9_000u64).map(|i| if i % 3 == 0 { 7 } else { i }).collect();
//! let (left, right) = stream.split_at(4_000);
//!
//! // Summarize the two partitions independently (e.g. on two machines).
//! let mut a = MisraGries::new(16, 32);
//! a.insert_batch(left);
//! let mut b = MisraGries::new(16, 32);
//! b.insert_batch(right);
//!
//! // Ship `b` as bytes, restore it, and fold it into `a`.
//! let wire = b.to_bytes();
//! let restored = MisraGries::from_bytes(&wire).unwrap();
//! a.merge_from(&restored).unwrap();
//!
//! // The merged summary covers the whole stream: the 33% item is the
//! // undisputed maximum, with the combined stream's error bound.
//! assert_eq!(a.processed(), 9_000);
//! assert_eq!(a.argmax().unwrap().0, 7);
//! ```

use crate::error::{MergeError, SnapshotError};
use crate::traits::StreamSummary;
use bytes::Bytes;

/// A summary of a substream that can be merged with summaries of
/// disjoint substreams, and checkpointed to bytes.
///
/// # Contract
///
/// * **Merge soundness.** If `self` summarizes substream `A` and
///   `other` summarizes a disjoint substream `B` (and the two are
///   structurally compatible — same parameters, same hash/sampler
///   seeds), then after `self.merge_from(&other)` the receiver
///   summarizes `A ⊎ B` with its type's error guarantee evaluated at
///   the combined stream length. The `prop_merge` suite enforces this
///   for every implementation in the workspace.
/// * **Snapshot fidelity.** `Self::from_bytes(&s.to_bytes())` succeeds
///   and reproduces `s.report()` (where applicable), `s`'s estimates,
///   and `s`'s space accounting bit-for-bit; randomized summaries also
///   restore their RNG/sampler state, so continued ingestion behaves
///   exactly as the original would have.
/// * **Tagging.** Buffers are tagged with a type-and-version string;
///   feeding one type's snapshot to another type's `from_bytes` returns
///   [`SnapshotError::WrongTag`] instead of misinterpreting bytes.
///
/// # Example
///
/// ```
/// use hh_core::{HhParams, HeavyHitters, MergeableSummary, SimpleListHh, StreamSummary};
///
/// let params = HhParams::new(0.05, 0.2).unwrap();
/// let m = 100_000u64;
/// // Seed-aligned instances: same structure seed (hash draws), distinct
/// // stream seeds (sampling coins) — the shape the pipeline presets build.
/// let mut a = SimpleListHh::with_seeds(params, 1 << 30, m, 7, 1).unwrap();
/// let mut b = SimpleListHh::with_seeds(params, 1 << 30, m, 7, 2).unwrap();
/// for i in 0..m {
///     let x = if i % 2 == 0 { 42 } else { i };
///     // An arbitrary position-based partition (not key-based): every
///     // third item goes left, the rest go right.
///     if i % 3 == 0 { a.insert(x) } else { b.insert(x) }
/// }
/// a.merge_from(&b).unwrap();
/// assert!(a.report().contains(42)); // the 50% item, found after merging
/// ```
pub trait MergeableSummary: StreamSummary + Sized {
    /// Folds `other` — a summary of a **disjoint** substream — into
    /// `self`, so that `self` afterwards summarizes the concatenation.
    ///
    /// # Errors
    /// [`MergeError::Incompatible`] if the two summaries were not built
    /// with the same parameters and structural seeds; `self` is left
    /// unchanged in that case.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError>;

    /// Serializes the full summary state (tables, counters, hash seeds,
    /// RNG and sampler state) into a tagged binary buffer.
    fn to_bytes(&self) -> Bytes;

    /// Restores a summary from a buffer produced by
    /// [`MergeableSummary::to_bytes`].
    ///
    /// # Errors
    /// [`SnapshotError`] if the buffer carries another type's tag or a
    /// malformed payload.
    fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError>;
}

/// Shared snapshot plumbing: the tagged-buffer encode/decode helpers
/// every [`MergeableSummary`] implementation routes through.
pub mod snapshot {
    use super::{Bytes, SnapshotError};
    use serde::bincode;
    use serde::{Deserialize, Serialize};

    /// Encodes `value` behind `tag` (a `"hh.<type>.v<N>"` string that
    /// names the summary type and snapshot-format version).
    pub fn encode<T: Serialize>(tag: &str, value: &T) -> Bytes {
        let mut w = bincode::Writer::default();
        use serde::Serializer as _;
        w.write_str(tag).expect("in-memory write cannot fail");
        value
            .serialize(&mut w)
            .expect("in-memory write cannot fail");
        Bytes::from(w.done().expect("in-memory write cannot fail"))
    }

    /// Decodes a buffer produced by [`encode`] with the same `tag`.
    pub fn decode<T: for<'de> Deserialize<'de>>(
        tag: &'static str,
        bytes: &[u8],
    ) -> Result<T, SnapshotError> {
        let mut r = bincode::Reader::new(bytes);
        use serde::Deserializer as _;
        // In-place tag comparison — the matching (hot) case allocates
        // nothing; only a mismatch re-reads the tag for the error.
        let matches = r
            .check_str(tag)
            .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        if !matches {
            let mut found = bincode::Reader::new(bytes)
                .read_string()
                .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
            found.truncate(64);
            return Err(SnapshotError::WrongTag {
                expected: tag,
                found,
            });
        }
        T::deserialize(&mut r).map_err(|e| SnapshotError::Malformed(e.to_string()))
    }

    /// Writes a `u64` counter slice as one varint block through the
    /// codec's bulk byte channel: element count, then every value
    /// LEB128-encoded into a single length-prefixed byte string. For
    /// the counter tables of the paper's algorithms — tens of
    /// thousands of cells worth `O(1)` expected bits each — this
    /// replaces one codec call and 8 bytes per cell with one bulk call
    /// and ~1 byte per cell.
    pub fn write_u64_slice<S: serde::Serializer>(
        values: &[u64],
        serializer: &mut S,
    ) -> Result<(), S::Error> {
        serializer.write_seq_len(values.len())?;
        serializer.write_byte_seq(&hh_space::encode_uvarints(values))
    }

    /// Reads back a slice written by [`write_u64_slice`], validating
    /// the block exhaustively (count, truncation, overlong runs,
    /// trailing bytes).
    pub fn read_u64_slice<'de, D: serde::Deserializer<'de>>(
        deserializer: &mut D,
    ) -> Result<Vec<u64>, D::Error> {
        let n = deserializer.read_seq_len()?;
        let block = deserializer.read_byte_seq()?;
        hh_space::decode_uvarints(&block, n)
            .ok_or_else(|| serde::de::Error::custom("malformed varint counter block"))
    }

    /// Like [`write_u64_slice`] but delta-encoded, for **non-decreasing**
    /// slices (threshold tables): first value, then LEB128 gaps.
    ///
    /// # Errors
    /// If the slice decreases anywhere (a caller bug, surfaced as a
    /// serialization error rather than silently mis-encoded).
    pub fn write_u64_slice_delta<S: serde::Serializer>(
        values: &[u64],
        serializer: &mut S,
    ) -> Result<(), S::Error> {
        let block = hh_space::encode_deltas(values)
            .ok_or_else(|| serde::ser::Error::custom("delta-encoding a decreasing slice"))?;
        serializer.write_seq_len(values.len())?;
        serializer.write_byte_seq(&block)
    }

    /// Reads back a slice written by [`write_u64_slice_delta`].
    pub fn read_u64_slice_delta<'de, D: serde::Deserializer<'de>>(
        deserializer: &mut D,
    ) -> Result<Vec<u64>, D::Error> {
        let n = deserializer.read_seq_len()?;
        let block = deserializer.read_byte_seq()?;
        hh_space::decode_deltas(&block, n)
            .ok_or_else(|| serde::de::Error::custom("malformed delta counter block"))
    }

    /// Serializes a `[u64; 4]` RNG state (helper for the manual serde
    /// impls of the randomized summaries).
    pub fn write_rng_state<S: serde::Serializer>(
        state: [u64; 4],
        serializer: &mut S,
    ) -> Result<(), S::Error> {
        for w in state {
            serializer.write_u64(w)?;
        }
        Ok(())
    }

    /// Reads back a `[u64; 4]` RNG state written by [`write_rng_state`].
    pub fn read_rng_state<'de, D: serde::Deserializer<'de>>(
        deserializer: &mut D,
    ) -> Result<[u64; 4], D::Error> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = deserializer.read_u64()?;
        }
        Ok(s)
    }
}

/// Equality check helper for merge compatibility: returns the
/// incompatibility error when the two values differ.
pub(crate) fn check_compatible<T: PartialEq>(
    a: &T,
    b: &T,
    what: &'static str,
) -> Result<(), MergeError> {
    if a == b {
        Ok(())
    } else {
        Err(MergeError::Incompatible(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_and_tag_mismatch() {
        let v: Vec<u64> = vec![1, 2, 3];
        let buf = snapshot::encode("hh.test.v1", &v);
        let back: Vec<u64> = snapshot::decode("hh.test.v1", &buf).unwrap();
        assert_eq!(back, v);
        let err = snapshot::decode::<Vec<u64>>("hh.other.v1", &buf).unwrap_err();
        assert!(matches!(err, SnapshotError::WrongTag { .. }));
        let err = snapshot::decode::<Vec<u64>>("hh.test.v1", &buf[..buf.len() - 3]).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)));
    }

    #[test]
    fn compatibility_helper_reports_field_name() {
        assert!(check_compatible(&1u64, &1u64, "x").is_ok());
        let err = check_compatible(&1u64, &2u64, "stream seeds").unwrap_err();
        assert_eq!(err, MergeError::Incompatible("stream seeds"));
        assert!(err.to_string().contains("stream seeds"));
    }
}
