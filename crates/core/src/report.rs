//! Report types returned by the heavy-hitter algorithms.

use serde::{Deserialize, Serialize};

/// One reported item with its frequency estimate `f̃_i` (in stream counts,
/// not fractions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItemEstimate {
    /// The item id.
    pub item: u64,
    /// Estimated number of occurrences; Definition 1 guarantees
    /// `|f̃_i − f_i| ≤ εm` for reported items (with probability 1 − δ).
    pub count: f64,
}

/// The output set `S` of Definition 1 with estimates, sorted by decreasing
/// estimate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    entries: Vec<ItemEstimate>,
}

impl Report {
    /// Builds a report, sorting entries by decreasing estimate (ties by
    /// item id) and dropping duplicates.
    pub fn new(mut entries: Vec<ItemEstimate>) -> Self {
        entries.sort_by(|a, b| {
            b.count
                .partial_cmp(&a.count)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        entries.dedup_by_key(|e| e.item);
        Self { entries }
    }

    /// The reported entries, heaviest first.
    pub fn entries(&self) -> &[ItemEstimate] {
        &self.entries
    }

    /// Number of reported items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `item` is in the output set.
    pub fn contains(&self, item: u64) -> bool {
        self.entries.iter().any(|e| e.item == item)
    }

    /// The estimate for `item`, if reported.
    pub fn estimate(&self, item: u64) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.item == item)
            .map(|e| e.count)
    }

    /// The items only, heaviest first.
    pub fn items(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.item).collect()
    }

    /// The heaviest entry, if any.
    pub fn top(&self) -> Option<ItemEstimate> {
        self.entries.first().copied()
    }
}

impl FromIterator<ItemEstimate> for Report {
    fn from_iter<I: IntoIterator<Item = ItemEstimate>>(iter: I) -> Self {
        Report::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(item: u64, count: f64) -> ItemEstimate {
        ItemEstimate { item, count }
    }

    #[test]
    fn sorted_by_decreasing_estimate() {
        let r = Report::new(vec![e(1, 5.0), e(2, 9.0), e(3, 7.0)]);
        assert_eq!(r.items(), vec![2, 3, 1]);
        assert_eq!(r.top().unwrap().item, 2);
    }

    #[test]
    fn duplicate_items_deduped() {
        let r = Report::new(vec![e(1, 5.0), e(1, 4.0)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.estimate(1), Some(5.0));
    }

    #[test]
    fn lookup_helpers() {
        let r = Report::new(vec![e(10, 3.0)]);
        assert!(r.contains(10));
        assert!(!r.contains(11));
        assert_eq!(r.estimate(10), Some(3.0));
        assert_eq!(r.estimate(11), None);
        assert!(!r.is_empty());
        assert!(Report::default().is_empty());
    }

    #[test]
    fn ties_broken_by_item_id() {
        let r = Report::new(vec![e(5, 2.0), e(3, 2.0)]);
        assert_eq!(r.items(), vec![3, 5]);
    }
}
