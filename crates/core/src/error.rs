//! Parameter-validation errors.

use std::fmt;

/// Rejected configuration for one of the streaming algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// ε must lie in (0, 1).
    EpsOutOfRange(f64),
    /// φ must lie in (0, 1].
    PhiOutOfRange(f64),
    /// The problem definition requires ε < φ.
    EpsNotBelowPhi {
        /// Supplied ε.
        eps: f64,
        /// Supplied φ.
        phi: f64,
    },
    /// δ must lie in (0, 1).
    DeltaOutOfRange(f64),
    /// The universe must be non-empty.
    EmptyUniverse,
    /// The advertised stream length must be positive.
    ZeroLength,
    /// A constants profile produced an unusable internal value.
    BadConstants(&'static str),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::EpsOutOfRange(e) => write!(f, "epsilon {e} must be in (0, 1)"),
            ParamError::PhiOutOfRange(p) => write!(f, "phi {p} must be in (0, 1]"),
            ParamError::EpsNotBelowPhi { eps, phi } => {
                write!(f, "epsilon {eps} must be strictly below phi {phi}")
            }
            ParamError::DeltaOutOfRange(d) => write!(f, "delta {d} must be in (0, 1)"),
            ParamError::EmptyUniverse => write!(f, "universe size must be at least 1"),
            ParamError::ZeroLength => write!(f, "stream length must be at least 1"),
            ParamError::BadConstants(what) => write!(f, "constants profile error: {what}"),
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParamError::EpsNotBelowPhi { eps: 0.5, phi: 0.2 };
        let s = e.to_string();
        assert!(s.contains("0.5") && s.contains("0.2"));
        assert!(ParamError::EmptyUniverse.to_string().contains("universe"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ParamError::ZeroLength);
        assert!(e.to_string().contains("stream length"));
    }
}
