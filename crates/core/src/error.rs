//! Parameter-validation errors.

use std::fmt;

/// Rejected configuration for one of the streaming algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// ε must lie in (0, 1).
    EpsOutOfRange(f64),
    /// φ must lie in (0, 1].
    PhiOutOfRange(f64),
    /// The problem definition requires ε < φ.
    EpsNotBelowPhi {
        /// Supplied ε.
        eps: f64,
        /// Supplied φ.
        phi: f64,
    },
    /// δ must lie in (0, 1).
    DeltaOutOfRange(f64),
    /// The universe must be non-empty.
    EmptyUniverse,
    /// The advertised stream length must be positive.
    ZeroLength,
    /// A constants profile produced an unusable internal value.
    BadConstants(&'static str),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::EpsOutOfRange(e) => write!(f, "epsilon {e} must be in (0, 1)"),
            ParamError::PhiOutOfRange(p) => write!(f, "phi {p} must be in (0, 1]"),
            ParamError::EpsNotBelowPhi { eps, phi } => {
                write!(f, "epsilon {eps} must be strictly below phi {phi}")
            }
            ParamError::DeltaOutOfRange(d) => write!(f, "delta {d} must be in (0, 1)"),
            ParamError::EmptyUniverse => write!(f, "universe size must be at least 1"),
            ParamError::ZeroLength => write!(f, "stream length must be at least 1"),
            ParamError::BadConstants(what) => write!(f, "constants profile error: {what}"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Rejected merge of two summaries (see
/// [`crate::MergeableSummary::merge_from`]).
///
/// Merging is only defined between summaries of *disjoint substreams of
/// the same logical stream* built with the *same structural randomness*
/// — identical parameters and identical hash/sampler seeds. A mismatch
/// is a caller bug (summaries from different deployments or differently
/// seeded factories), reported rather than silently producing garbage
/// estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The two summaries disagree on a structural field; the payload
    /// names which one.
    Incompatible(&'static str),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Incompatible(what) => {
                write!(f, "summaries are not merge-compatible: {what} differ")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Rejected snapshot restore (see
/// [`crate::MergeableSummary::from_bytes`]).
///
/// Restore is a **total function over arbitrary bytes**: every decoder
/// in the workspace classifies hostile input into one of these variants
/// instead of panicking or allocating on its say-so. `Truncated`,
/// `ChecksumMismatch`, and `LengthOverflow` describe damage to the
/// buffer itself; `InvariantViolated` means the bytes decoded but the
/// decoded value is structurally impossible for the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the expected type tag — it is a
    /// snapshot of a different summary type, a different format
    /// version, or not a snapshot at all.
    WrongTag {
        /// The tag the caller's type writes.
        expected: &'static str,
        /// What the buffer actually started with (truncated).
        found: String,
    },
    /// The buffer ended before the payload did.
    Truncated,
    /// The trailing integrity checksum does not match the buffer
    /// contents: the snapshot was corrupted in storage or transit.
    ChecksumMismatch,
    /// A length prefix or element count exceeds what the remaining
    /// buffer could possibly hold; rejected before any allocation is
    /// sized from it.
    LengthOverflow(String),
    /// The payload decoded, but the decoded state violates a structural
    /// invariant of the summary (impossible table shapes, out-of-range
    /// parameters, inconsistent counters).
    InvariantViolated(String),
    /// Any other malformed payload (bad UTF-8, unknown field
    /// encodings).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::WrongTag { expected, found } => {
                write!(
                    f,
                    "snapshot tag mismatch: expected {expected:?}, found {found:?}"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated: input ended mid-payload"),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch: buffer corrupted")
            }
            SnapshotError::LengthOverflow(why) => {
                write!(f, "snapshot length prefix overflows its buffer: {why}")
            }
            SnapshotError::InvariantViolated(why) => {
                write!(f, "snapshot violates a structural invariant: {why}")
            }
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParamError::EpsNotBelowPhi { eps: 0.5, phi: 0.2 };
        let s = e.to_string();
        assert!(s.contains("0.5") && s.contains("0.2"));
        assert!(ParamError::EmptyUniverse.to_string().contains("universe"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ParamError::ZeroLength);
        assert!(e.to_string().contains("stream length"));
    }
}
