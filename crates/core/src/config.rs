//! Problem parameters and internal constants profiles.

use crate::error::ParamError;
use serde::{Deserialize, Serialize};

/// The `(ε, φ, δ)` triple of Definition 1: additive error `εm`, report
/// threshold `φm`, failure probability `δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HhParams {
    eps: f64,
    phi: f64,
    delta: f64,
}

/// Field-wise snapshot of the validated `(ε, φ, δ)` triple; restore
/// re-runs the constructor validation, so a corrupted buffer cannot
/// smuggle in an invalid configuration.
impl Serialize for HhParams {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_f64(self.eps)?;
        serializer.write_f64(self.phi)?;
        serializer.write_f64(self.delta)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for HhParams {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let eps = deserializer.read_f64()?;
        let phi = deserializer.read_f64()?;
        let delta = deserializer.read_f64()?;
        Self::with_delta(eps, phi, delta).map_err(serde::de::Error::invariant)
    }
}

impl HhParams {
    /// Default failure probability. The paper states results "with
    /// arbitrarily large constant probability"; we default to 90%.
    pub const DEFAULT_DELTA: f64 = 0.1;

    /// Validates `0 < ε < φ ≤ 1` with the default δ.
    pub fn new(eps: f64, phi: f64) -> Result<Self, ParamError> {
        Self::with_delta(eps, phi, Self::DEFAULT_DELTA)
    }

    /// Validates `0 < ε < φ ≤ 1` and `δ ∈ (0, 1)`.
    pub fn with_delta(eps: f64, phi: f64, delta: f64) -> Result<Self, ParamError> {
        if !(eps > 0.0 && eps < 1.0 && eps.is_finite()) {
            return Err(ParamError::EpsOutOfRange(eps));
        }
        if !(phi > 0.0 && phi <= 1.0 && phi.is_finite()) {
            return Err(ParamError::PhiOutOfRange(phi));
        }
        if eps >= phi {
            return Err(ParamError::EpsNotBelowPhi { eps, phi });
        }
        if !(delta > 0.0 && delta < 1.0 && delta.is_finite()) {
            return Err(ParamError::DeltaOutOfRange(delta));
        }
        Ok(Self { eps, phi, delta })
    }

    /// Additive error fraction ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Report threshold fraction φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

/// Internal constants of Algorithms 1–3.
///
/// The paper fixes proof-convenient constants ("the numerical constants
/// are chosen for convenience of analysis and have not been optimized",
/// §3.1.2). Both profiles keep the *formulas*; only the multipliers
/// differ. Experiments state which profile they use; the practical profile
/// is the default and is what the guarantee experiments (E11) validate
/// empirically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constants {
    /// Sample-budget multiplier: Algorithm 1 draws
    /// `ℓ = sample_factor · ln(6/δ) / ε²` samples in expectation
    /// (paper: 6, plus a hidden 6× in `p = 6ℓ/m`).
    pub sample_factor: f64,
    /// Misra–Gries table capacity: `⌈mg_capacity_factor / ε⌉` counters
    /// (paper: 1/ε; we default to 4/ε so the MG error `s/k` consumes only
    /// a quarter of the ε budget).
    pub mg_capacity_factor: f64,
    /// Hashed-id range: `⌈hash_range_factor · s_max² / δ⌉` where `s_max`
    /// is the high-probability cap on the sample count (paper: 4ℓ²/δ).
    pub hash_range_factor: f64,
    /// Algorithm 2 sample budget: `ℓ = a2_sample_factor / ε²`
    /// (paper: 10⁵).
    pub a2_sample_factor: f64,
    /// Algorithm 2 bucket count: `⌈a2_bucket_factor / ε⌉` hash buckets per
    /// repetition (paper: 100), realized as the doubled power of two that
    /// keeps the plain-universal repetition hash within the `1/buckets`
    /// collision budget (see `MultiplyShift64Family::covering_universal`).
    pub a2_bucket_factor: f64,
    /// Algorithm 2 repetitions: `max(a2_rep_min, ⌈a2_rep_factor·ln(12/φ)⌉)`
    /// (paper: 200·log(12/φ)).
    pub a2_rep_factor: f64,
    /// Minimum number of Algorithm 2 repetitions.
    pub a2_rep_min: usize,
    /// Algorithm 2 epoch scale: epoch `t = ⌊log₂(a2_epoch_scale·T2²)⌋`
    /// (paper: 10⁻⁶).
    pub a2_epoch_scale: f64,
    /// Algorithm 2 candidate-table capacity factor: `⌈a2_t1_factor/φ⌉`
    /// Misra-Gries entries over raw ids (paper: 2).
    pub a2_t1_factor: f64,
    /// ε-Minimum `S1` budget: `ℓ₁ = min_l1_factor · ln(6/(εδ)) / ε`
    /// (paper: 1).
    pub min_l1_factor: f64,
    /// ε-Minimum `S3` budget: `ℓ₃ = min_l3_factor · ln³(6/(εδ)) / ε`
    /// (paper: ln⁶ with factor 1; the practical profile lowers the power
    /// to 3 — see DESIGN.md substitutions).
    pub min_l3_factor: f64,
    /// ε-Minimum truncation cap: `min_cap_factor · ln⁴(2/(εδ))`
    /// (paper: 2·ln⁷).
    pub min_cap_factor: f64,
    /// Unknown-length growth factor `g`: instances cover stream-length
    /// ranges `[ℓ·gᵏ, ℓ·gᵏ⁺¹)` and at most `1/g` of the stream is
    /// discarded at a hand-over (paper: g = 1/ε).
    pub growth_factor_min: f64,
}

impl Constants {
    /// Constants exactly as printed in the paper's pseudocode. Runs are
    /// extremely conservative (e.g. `ℓ = 10⁵/ε²` samples for
    /// Algorithm 2).
    pub fn paper() -> Self {
        Self {
            sample_factor: 6.0,
            mg_capacity_factor: 1.0,
            hash_range_factor: 4.0,
            a2_sample_factor: 1e5,
            a2_bucket_factor: 100.0,
            a2_rep_factor: 200.0,
            a2_rep_min: 1,
            a2_epoch_scale: 1e-6,
            a2_t1_factor: 2.0,
            min_l1_factor: 1.0,
            min_l3_factor: 1.0,
            min_cap_factor: 2.0,
            growth_factor_min: 4.0,
        }
    }

    /// Smaller multipliers with the same asymptotics; validated
    /// empirically by experiment E11. This is the default profile.
    ///
    /// On `a2_sample_factor`: the paper's 10⁵ (and this profile's earlier
    /// 4·10³) keeps `ℓ = Θ(ε⁻²)` so conservative that `p = min(2ℓ/m, 1)`
    /// saturates at 1 on any stream short of m ≈ 10⁸, which silently
    /// moves Algorithm 2 out of the sampled regime its O(1)-amortized
    /// update analysis (§3.1) describes — every item then pays the full
    /// `R` repetitions. 250 keeps ℓ ≈ 5× Algorithm 1's effective
    /// per-sample budget (`6·ln(6/δ) ≈ 46` per ε⁻²), which leaves the
    /// (φ − ε)-separation margins at tens of standard deviations on the
    /// E11 workloads while letting realistic stream lengths actually
    /// sample (see DESIGN.md).
    pub fn practical() -> Self {
        Self {
            sample_factor: 16.0,
            mg_capacity_factor: 4.0,
            hash_range_factor: 1.0,
            a2_sample_factor: 250.0,
            // 24 (not 32): after the ×2 universality rounding the bucket
            // count lands one power of two lower across the working ε
            // range, which keeps the per-repetition epoch cache L1-sized;
            // the realized collision bound 2/2^l ≤ ε/24 still clears the
            // ε-budget share the bucket analysis allots.
            a2_bucket_factor: 24.0,
            a2_rep_factor: 5.0,
            a2_rep_min: 7,
            a2_epoch_scale: 4e-4,
            a2_t1_factor: 2.0,
            min_l1_factor: 2.0,
            min_l3_factor: 4.0,
            min_cap_factor: 8.0,
            growth_factor_min: 4.0,
        }
    }
}

impl Default for Constants {
    fn default() -> Self {
        Self::practical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_accepted() {
        let p = HhParams::new(0.01, 0.1).unwrap();
        assert_eq!(p.eps(), 0.01);
        assert_eq!(p.phi(), 0.1);
        assert_eq!(p.delta(), HhParams::DEFAULT_DELTA);
    }

    #[test]
    fn phi_equal_one_allowed() {
        assert!(HhParams::new(0.5, 1.0).is_ok());
    }

    #[test]
    fn eps_must_be_below_phi() {
        assert_eq!(
            HhParams::new(0.1, 0.1),
            Err(ParamError::EpsNotBelowPhi { eps: 0.1, phi: 0.1 })
        );
        assert!(HhParams::new(0.2, 0.1).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            HhParams::new(0.0, 0.5),
            Err(ParamError::EpsOutOfRange(_))
        ));
        assert!(matches!(
            HhParams::new(0.1, 1.5),
            Err(ParamError::PhiOutOfRange(_))
        ));
        assert!(matches!(
            HhParams::with_delta(0.1, 0.5, 0.0),
            Err(ParamError::DeltaOutOfRange(_))
        ));
        assert!(matches!(
            HhParams::new(f64::NAN, 0.5),
            Err(ParamError::EpsOutOfRange(_))
        ));
    }

    #[test]
    fn profiles_differ_but_paper_is_more_conservative() {
        let paper = Constants::paper();
        let practical = Constants::practical();
        assert!(paper.a2_sample_factor > practical.a2_sample_factor);
        assert!(paper.a2_rep_factor > practical.a2_rep_factor);
        assert_eq!(Constants::default(), practical);
    }
}
