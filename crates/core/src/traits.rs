//! Algorithm-facing traits shared across the workspace.

use crate::report::Report;

/// A one-pass insertion-stream summary (§2.1: the input is an
/// insertion-only stream; there are no deletions).
pub trait StreamSummary {
    /// Processes one stream item.
    fn insert(&mut self, item: u64);

    /// Processes a batch of consecutive stream items.
    ///
    /// Observationally equivalent to calling [`StreamSummary::insert`]
    /// once per element in order — same final summary state, and for
    /// randomized summaries the same backing-RNG draw sequence, so
    /// same-seed runs are interchangeable between the two entry points
    /// (the `prop_batch` suite enforces this for every summary in the
    /// workspace). Implementors override it to restructure the loop in
    /// ways the per-element API forbids: splitting a hash/sample pass
    /// over a scratch buffer from the table-update pass, skipping whole
    /// runs of unsampled items in one arithmetic step, or hoisting
    /// window-boundary checks out of the inner loop.
    ///
    /// # Example
    ///
    /// ```
    /// use hh_core::{HeavyHitters, HhParams, SimpleListHh, StreamSummary};
    ///
    /// let params = HhParams::new(0.05, 0.2).unwrap();
    /// let m = 100_000u64;
    /// let stream: Vec<u64> = (0..m).map(|i| if i % 2 == 0 { 7 } else { i }).collect();
    /// let mut algo = SimpleListHh::new(params, 1 << 20, m, 42).unwrap();
    /// // Feed the stream in arbitrary-size batches — same final state
    /// // as inserting element by element, and measurably faster.
    /// for chunk in stream.chunks(4096) {
    ///     algo.insert_batch(chunk);
    /// }
    /// assert!(algo.report().contains(7));
    /// ```
    fn insert_batch(&mut self, items: &[u64]) {
        for &x in items {
            self.insert(x);
        }
    }

    /// Processes a slice of items (alias for [`StreamSummary::insert_batch`],
    /// kept for call-site readability when the slice is a whole stream).
    fn insert_all(&mut self, items: &[u64]) {
        self.insert_batch(items);
    }
}

/// Summaries that can answer the (ε, φ)-heavy-hitters query of
/// Definition 1 at the end of the stream (or at any point of it — the
/// query does not disturb the summary).
pub trait HeavyHitters: StreamSummary {
    /// The output set `S` with estimates. Reporting time is linear in the
    /// output size for the paper's algorithms (Theorems 1 and 2).
    ///
    /// Every implementation in this workspace additionally serves
    /// repeated reports against an unchanged summary from a
    /// materialized cache (see [`crate::QueryCache`] and DESIGN.md §8):
    /// the first query after a mutation pays the scan, subsequent ones
    /// pay a clone of the finished report. Callers may therefore query
    /// freely between batches without budgeting for rescans.
    fn report(&self) -> Report;
}

/// Summaries that can estimate the frequency of an arbitrary item (the
/// baselines support this; the paper's algorithms only estimate reported
/// items).
pub trait FrequencyEstimator {
    /// Point estimate of the frequency of `item`, in stream counts.
    fn estimate(&self, item: u64) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ItemEstimate, Report};

    struct CountOnes {
        ones: u64,
    }

    impl StreamSummary for CountOnes {
        fn insert(&mut self, item: u64) {
            if item == 1 {
                self.ones += 1;
            }
        }
    }

    impl HeavyHitters for CountOnes {
        fn report(&self) -> Report {
            Report::new(vec![ItemEstimate {
                item: 1,
                count: self.ones as f64,
            }])
        }
    }

    #[test]
    fn insert_all_default_method() {
        let mut c = CountOnes { ones: 0 };
        c.insert_all(&[1, 2, 1, 1, 3]);
        assert_eq!(c.report().estimate(1), Some(3.0));
    }

    #[test]
    fn insert_batch_default_matches_element_loop() {
        let stream = [1u64, 1, 2, 1, 3, 1];
        let mut batch = CountOnes { ones: 0 };
        batch.insert_batch(&stream);
        let mut scalar = CountOnes { ones: 0 };
        for &x in &stream {
            scalar.insert(x);
        }
        assert_eq!(batch.ones, scalar.ones);
    }

    #[test]
    fn trait_objects_compose() {
        let mut c: Box<dyn HeavyHitters> = Box::new(CountOnes { ones: 0 });
        c.insert(1);
        assert_eq!(c.report().len(), 1);
    }
}
