//! Unknown stream length: Theorem 7's instance-doubling wrapper.
//!
//! When `m` is not known in advance the sampling probability cannot be set
//! up front. §3.5's fix: guess the length, run an Algorithm-1 instance per
//! guess, and track the true position approximately with a Morris counter
//! ("We use the approximate counting method of Morris to approximately
//! count the length of the stream") so the position tracking costs
//! `O(log log m + k)` bits instead of `log m`.
//!
//! Concretely, instance `k` samples at rate `p_k = min(1, 2g^{1−k})` and
//! covers (i.e. is the one reported from) estimated positions
//! `[τ_k, τ_{k+1})`, `τ_k = ℓ·gᵏ`. At most two instances are live: when
//! the position estimate crosses `τ_{k+1}` the older instance is
//! discarded and instance `k+2` is spawned ("At any point of time, we have
//! at most two instances ... When the stream ends, we return the output of
//! the older of the instances"). The items a fresh instance missed are a
//! `≤ 1/g` fraction of the stream by the time it reports, which is folded
//! into the ε budget by choosing `g = Θ(1/ε)` — the paper's powers-of-
//! `1/ε` guessing schedule ("we are discarding at most εm many items ...
//! by discarding a run of an instance").

use crate::algo1::SimpleListHh;
use crate::config::{Constants, HhParams};
use crate::error::ParamError;
use crate::report::Report;
use crate::traits::{HeavyHitters, StreamSummary};
use hh_sampling::MorrisCounter;
use hh_space::SpaceUsage;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the wrapper tracks the stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionTracking {
    /// Morris counter: `O(log log m)` bits, the paper's choice.
    Morris,
    /// Exact counter: `O(log m)` bits; the ablation baseline for E9.
    Exact,
}

/// (ε, φ)-List heavy hitters without knowing the stream length
/// (Theorem 7).
#[derive(Debug, Clone)]
pub struct UnknownLengthHh {
    params: HhParams,
    inner_params: HhParams,
    universe: u64,
    consts: Constants,
    tracking: PositionTracking,
    morris: MorrisCounter,
    exact_position: u64,
    /// Growth factor `g = Θ(1/ε)`.
    g: f64,
    /// Base budget ℓ (per the inner ε' = ε/2).
    ell: f64,
    /// Index of the older live instance.
    epoch: u32,
    older: SimpleListHh,
    newer: SimpleListHh,
    /// Position estimate that triggers the next hand-over.
    next_trigger: f64,
    seed: u64,
    _rng: StdRng,
}

/// Safety margin on the Morris estimate before a hand-over fires; the
/// counter is averaged enough to sit within a factor 2 w.h.p., so
/// triggering at `2τ` guarantees the true position passed `τ`.
const TRIGGER_MARGIN: f64 = 2.0;
const MORRIS_COPIES: usize = 32;

impl UnknownLengthHh {
    /// Creates the wrapper with Morris position tracking.
    pub fn new(params: HhParams, universe: u64, seed: u64) -> Result<Self, ParamError> {
        Self::with_options(
            params,
            universe,
            seed,
            Constants::default(),
            PositionTracking::Morris,
        )
    }

    /// Full-control constructor.
    pub fn with_options(
        params: HhParams,
        universe: u64,
        seed: u64,
        consts: Constants,
        tracking: PositionTracking,
    ) -> Result<Self, ParamError> {
        if universe == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        // Inner instances run at ε' = ε/2 so the discarded-prefix error
        // (≤ 4/g of the stream, with the trigger margin) plus the inner
        // error stays within ε.
        let inner_params =
            HhParams::with_delta(params.eps() / 2.0, params.phi(), params.delta() / 2.0)?;
        let eps_inner = inner_params.eps();
        let ell = (consts.sample_factor * (6.0 / inner_params.delta()).ln()
            / (eps_inner * eps_inner))
            .ceil();
        let g = (16.0 / params.eps()).max(consts.growth_factor_min);

        let older = Self::spawn(inner_params, universe, seed, consts, 0, g, ell)?;
        let newer = Self::spawn(
            inner_params,
            universe,
            seed.wrapping_add(1),
            consts,
            1,
            g,
            ell,
        )?;

        Ok(Self {
            params,
            inner_params,
            universe,
            consts,
            tracking,
            morris: MorrisCounter::with_copies(2.0, MORRIS_COPIES),
            exact_position: 0,
            g,
            ell,
            epoch: 0,
            older,
            newer,
            next_trigger: TRIGGER_MARGIN * ell * g,
            seed,
            _rng: StdRng::seed_from_u64(seed ^ 0x5EED),
        })
    }

    /// Builds instance `k`: sampling rate `p_k = min(1, 2g^{1−k})`, hash
    /// range sized for its maximum expected sample count `≈ 2ℓg²`.
    fn spawn(
        inner: HhParams,
        universe: u64,
        seed: u64,
        consts: Constants,
        k: u32,
        g: f64,
        ell: f64,
    ) -> Result<SimpleListHh, ParamError> {
        let p_k = (2.0 * g.powi(1 - k as i32)).min(1.0);
        let exponent = hh_sampling::bernoulli::pow2_exponent(p_k);
        let s_cap = 4.0 * ell * g * g + 64.0;
        SimpleListHh::with_sampling_exponent(
            inner,
            universe,
            seed.wrapping_mul(0x9E37_79B9).wrapping_add(k as u64),
            consts,
            exponent,
            s_cap,
        )
    }

    /// Current position estimate (Morris or exact, per configuration).
    pub fn position_estimate(&self) -> f64 {
        match self.tracking {
            PositionTracking::Morris => self.morris.estimate(),
            PositionTracking::Exact => self.exact_position as f64,
        }
    }

    /// The epoch (guess index) currently reported from.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Outer problem parameters.
    pub fn params(&self) -> HhParams {
        self.params
    }

    /// Bits spent on position tracking alone (the `log log m` vs `log m`
    /// comparison of experiment E9).
    pub fn position_bits(&self) -> u64 {
        match self.tracking {
            PositionTracking::Morris => self.morris.model_bits(),
            PositionTracking::Exact => hh_space::space::gamma_bits(self.exact_position),
        }
    }

    fn maybe_advance(&mut self) {
        while self.position_estimate() >= self.next_trigger {
            self.epoch += 1;
            let k_new = self.epoch + 1;
            let spawned = Self::spawn(
                self.inner_params,
                self.universe,
                self.seed.wrapping_add(k_new as u64),
                self.consts,
                k_new,
                self.g,
                self.ell,
            )
            .expect("inner parameters were validated at construction");
            self.older = std::mem::replace(&mut self.newer, spawned);
            self.next_trigger *= self.g;
        }
    }
}

impl StreamSummary for UnknownLengthHh {
    fn insert(&mut self, item: u64) {
        match self.tracking {
            PositionTracking::Morris => self.morris.increment(&mut self._rng),
            PositionTracking::Exact => self.exact_position += 1,
        }
        self.older.insert(item);
        self.newer.insert(item);
        self.maybe_advance();
    }
}

impl HeavyHitters for UnknownLengthHh {
    fn report(&self) -> Report {
        self.older.report()
    }
}

impl SpaceUsage for UnknownLengthHh {
    fn model_bits(&self) -> u64 {
        let position = match self.tracking {
            PositionTracking::Morris => self.morris.model_bits(),
            PositionTracking::Exact => hh_space::space::gamma_bits(self.exact_position),
        };
        self.older.model_bits() + self.newer.model_bits() + position
    }

    fn heap_bytes(&self) -> usize {
        self.older.heap_bytes() + self.newer.heap_bytes() + self.morris.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_streams::{arrange, OrderPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted_stream(m: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        let mut counts: Vec<(u64, u64)> = heavy
            .iter()
            .map(|&(id, frac)| (id, (frac * m as f64).round() as u64))
            .collect();
        let used: u64 = counts.iter().map(|&(_, c)| c).sum();
        let fill = m - used;
        let light = 2048u64;
        for j in 0..light {
            let c = fill / light + u64::from(j < fill % light);
            if c > 0 {
                counts.push((500_000 + j, c));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        arrange(&counts, OrderPolicy::Shuffled, &mut rng)
    }

    fn check(tracking: PositionTracking, m: u64, seed: u64) {
        let params = HhParams::with_delta(0.1, 0.25, 0.1).unwrap();
        let heavy = [(7u64, 0.4), (8, 0.3)];
        let stream = planted_stream(m, &heavy, seed);
        let mut a =
            UnknownLengthHh::with_options(params, 1 << 40, seed, Constants::default(), tracking)
                .unwrap();
        a.insert_all(&stream);
        let r = a.report();
        for (item, frac) in heavy {
            assert!(r.contains(item), "{tracking:?} m={m}: missing {item}");
            let est = r.estimate(item).unwrap();
            let truth = frac * m as f64;
            assert!(
                (est - truth).abs() <= 0.1 * m as f64,
                "{tracking:?} m={m} item {item}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn works_across_lengths_exact_tracking() {
        // Lengths spanning several epochs of the guessing schedule.
        for (m, seed) in [(5_000u64, 1u64), (80_000, 2), (600_000, 3)] {
            check(PositionTracking::Exact, m, seed);
        }
    }

    #[test]
    fn works_with_morris_tracking() {
        check(PositionTracking::Morris, 300_000, 4);
    }

    #[test]
    fn epochs_advance_with_stream_growth() {
        let params = HhParams::with_delta(0.1, 0.3, 0.1).unwrap();
        let mut a = UnknownLengthHh::with_options(
            params,
            1 << 20,
            5,
            Constants::default(),
            PositionTracking::Exact,
        )
        .unwrap();
        assert_eq!(a.epoch(), 0);
        let trigger = a.next_trigger as u64 + 8;
        for i in 0..trigger {
            a.insert(i % 100);
        }
        assert!(a.epoch() >= 1, "epoch should have advanced");
    }

    #[test]
    fn morris_position_is_loglog_space() {
        let params = HhParams::with_delta(0.1, 0.3, 0.1).unwrap();
        let mut a = UnknownLengthHh::new(params, 1 << 20, 6).unwrap();
        for i in 0..100_000u64 {
            a.insert(i % 50);
        }
        // 32 Morris copies, each a gamma-coded exponent: well under 512
        // bits, and crucially NOT growing like log m.
        assert!(a.morris.model_bits() < 512);
        let est = a.position_estimate();
        assert!(
            est > 25_000.0 && est < 400_000.0,
            "position estimate {est} too far from 100k"
        );
    }

    #[test]
    fn short_stream_uses_exact_instance() {
        // Stream far below ℓ: instance 0 samples everything (p = 1), so
        // even tiny streams are answered exactly.
        let params = HhParams::with_delta(0.2, 0.5, 0.1).unwrap();
        let mut a = UnknownLengthHh::with_options(
            params,
            1024,
            7,
            Constants::default(),
            PositionTracking::Exact,
        )
        .unwrap();
        for _ in 0..60 {
            a.insert(3);
        }
        for i in 0..40u64 {
            a.insert(i + 10);
        }
        let r = a.report();
        assert!(r.contains(3));
        let est = r.estimate(3).unwrap();
        assert!((est - 60.0).abs() <= 0.2 * 100.0, "est {est}");
    }
}
