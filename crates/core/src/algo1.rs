//! Algorithm 1: the simple, near-optimal (ε, φ)-List heavy hitters
//! algorithm (Theorem 1).
//!
//! Pipeline, exactly as in §3.1.1:
//!
//! 1. **Sample** each stream item with probability `p = Θ(ℓ/m)` where
//!    `ℓ = Θ(ε⁻² log δ⁻¹)`; by Lemma 3 the sampled stream preserves all
//!    relative frequencies to ±ε/4.
//! 2. **Hash ids** into a range of `Θ(ℓ²/δ)` so that, by Lemma 2, the
//!    sampled items have no colliding ids — this shrinks per-key storage
//!    from `log n` to `O(log(ℓ²/δ)) = O(log ε⁻¹)` bits, which is the whole
//!    space win over Misra–Gries.
//! 3. **Misra–Gries** over the hashed ids with `Θ(1/ε)` counters (table
//!    `T1`).
//! 4. **Raw-id table** `T2` keeps the actual ids of the top `Θ(1/φ)` keys
//!    of `T1` (only `Θ(φ⁻¹ log n)` bits), kept consistent with `T1` as
//!    counts move.
//!
//! At report time, every `T2` item whose `T1` count clears
//! `(φ − ε/2)·s` is output with the estimate `count / p`.
//!
//! Update time is `O(1)`: unsampled items cost one skip-counter decrement,
//! and sampled items are `Θ(1/(pε)) ≫ k` positions apart on average so
//! table work amortizes below one operation per position (§3.1's
//! "spreading" argument; the skip sampler makes the common path branch-
//! free).

use crate::cache::QueryCache;
use crate::config::{Constants, HhParams};
use crate::error::{MergeError, ParamError, SnapshotError};
use crate::mergeable::{check_compatible, snapshot, MergeableSummary, RestoreReport};
use crate::mg::MisraGries;
use crate::report::{ItemEstimate, Report};
use crate::traits::{HeavyHitters, StreamSummary};
use hh_hash::{CarterWegmanFamily, CarterWegmanHash, HashFamily, HashFunction};
use hh_sampling::SkipSampler;
use hh_space::SpaceUsage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Algorithm 1 of the paper (Theorem 1).
#[derive(Debug, Clone)]
pub struct SimpleListHh {
    params: HhParams,
    universe: u64,
    sampler: SkipSampler,
    /// Actual (power-of-two-rounded) sampling probability.
    p: f64,
    hash: CarterWegmanHash,
    /// Misra–Gries over hashed ids.
    t1: MisraGries,
    /// `(hashed id, raw id)` for the currently-top `t2_cap` keys of `T1`.
    /// Only the raw id is charged in the space model — the hashed id is
    /// recomputable as `hash(raw)` and is kept as a word-RAM convenience.
    t2: Vec<(u64, u64)>,
    t2_cap: usize,
    /// Number of sampled items `s = |S|`.
    samples: u64,
    rng: StdRng,
    /// Materialized report, invalidated by the sampled-insert path and
    /// `merge_from` (unsampled items change no query-visible state);
    /// restore builds a fresh, cold value. See `QueryCache`.
    cache: QueryCache<Report>,
}

impl SimpleListHh {
    /// Creates the algorithm for a stream of advertised length `m` over
    /// universe `[0, universe)`, with the default constants profile.
    pub fn new(params: HhParams, universe: u64, m: u64, seed: u64) -> Result<Self, ParamError> {
        Self::with_constants(params, universe, m, seed, Constants::default())
    }

    /// Creates the algorithm with an explicit constants profile.
    pub fn with_constants(
        params: HhParams,
        universe: u64,
        m: u64,
        seed: u64,
        consts: Constants,
    ) -> Result<Self, ParamError> {
        if m == 0 {
            return Err(ParamError::ZeroLength);
        }
        let eps = params.eps();
        let delta = params.delta();

        // ℓ = Θ(ε⁻² ln δ⁻¹) — the Lemma-3 budget.
        let ell = (consts.sample_factor * (6.0 / delta).ln() / (eps * eps)).ceil();
        if !ell.is_finite() || ell < 1.0 {
            return Err(ParamError::BadConstants("sample budget overflow"));
        }
        // Target twice ℓ before power-of-two rounding so the realized
        // expectation stays at or above ℓ.
        let p_target = (2.0 * ell / m as f64).min(1.0);
        let exponent = hh_sampling::bernoulli::pow2_exponent(p_target);
        // Collision-free hashed-id range (Lemma 2): s ≤ 6ℓ + 64 w.h.p.
        let s_cap = 6.0 * ell + 64.0;
        Self::with_sampling_exponent(params, universe, seed, consts, exponent, s_cap)
    }

    /// Advanced constructor used by the unknown-stream-length wrapper
    /// (Theorem 7): the sampling probability is forced to `2^{-exponent}`
    /// and the collision-free hash range is sized for up to
    /// `expected_samples_cap` sampled items.
    pub fn with_sampling_exponent(
        params: HhParams,
        universe: u64,
        seed: u64,
        consts: Constants,
        exponent: u32,
        expected_samples_cap: f64,
    ) -> Result<Self, ParamError> {
        if universe == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        let eps = params.eps();
        let delta = params.delta();
        let mut rng = StdRng::seed_from_u64(seed);

        let sampler = SkipSampler::with_exponent(exponent);
        let p = sampler.probability();

        let s_cap = expected_samples_cap.max(64.0);
        let hash_range =
            ((consts.hash_range_factor * s_cap * s_cap / delta).ceil() as u64).clamp(64, 1 << 60);
        let hash = CarterWegmanFamily::new(hash_range).sample(&mut rng);

        let k = (consts.mg_capacity_factor / eps).ceil() as usize;
        let t1 = MisraGries::new(k.max(1), hh_space::id_bits(hash_range));

        // T2 capacity: enough that no true heavy hitter can be evicted by
        // items of genuinely larger count (at most 1/(φ − 3ε/4) of them).
        let t2_cap = (1.0 / (params.phi() - 0.75 * eps)).ceil() as usize + 4;

        Ok(Self {
            params,
            universe,
            sampler,
            p,
            hash,
            t1,
            t2: Vec::with_capacity(t2_cap),
            t2_cap,
            samples: 0,
            rng,
            cache: QueryCache::new(),
        })
    }

    /// Creates a **seed-aligned** instance for merge-based pipelines:
    /// the hash function is drawn from `structure_seed` while the
    /// sampling coins run off `stream_seed`. Instances sharing a
    /// structure seed agree on their hashed-id space — the precondition
    /// for [`MergeableSummary::merge_from`] — while distinct stream
    /// seeds keep their sampling decisions independent across shards.
    pub fn with_seeds(
        params: HhParams,
        universe: u64,
        m: u64,
        structure_seed: u64,
        stream_seed: u64,
    ) -> Result<Self, ParamError> {
        let mut a =
            Self::with_constants(params, universe, m, structure_seed, Constants::default())?;
        a.rng = StdRng::seed_from_u64(stream_seed);
        Ok(a)
    }

    /// The realized sampling probability (after power-of-two rounding).
    pub fn sampling_probability(&self) -> f64 {
        self.p
    }

    /// Number of items sampled so far (`|S|` in the paper).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Problem parameters.
    pub fn params(&self) -> HhParams {
        self.params
    }

    /// Per-term space decomposition `(t1_bits, t2_bits, sampler_bits)`
    /// matching the Theorem-1 bound's terms: `ε⁻¹ log ε⁻¹` (hashed-id
    /// Misra–Gries plus the hash seed), `φ⁻¹ log n` (raw ids), and
    /// `log log m` (sampler).
    pub fn component_bits(&self) -> (u64, u64, u64) {
        let t2_bits = self.t2.len() as u64 * hh_space::id_bits(self.universe)
            + (self.t2_cap - self.t2.len()) as u64;
        (
            self.t1.model_bits() + self.hash.model_bits(),
            t2_bits,
            self.sampler.model_bits(),
        )
    }

    /// Maintains the `T2` invariant after the count of `hashed` rose to
    /// `count` with raw id `raw`.
    fn update_t2(&mut self, hashed: u64, raw: u64, count: u64) {
        if self.t2.iter().any(|&(h, _)| h == hashed) {
            return; // already tracked; counts are read from T1 at report
        }
        if self.t2.len() < self.t2_cap {
            self.t2.push((hashed, raw));
            return;
        }
        // Replace the current minimum if strictly smaller than `count`.
        // Entries whose key fell out of T1 have estimate 0 and go first.
        if let Some((min_idx, min_count)) = self
            .t2
            .iter()
            .enumerate()
            .map(|(i, &(h, _))| (i, self.t1.estimate(h)))
            .min_by_key(|&(_, c)| c)
        {
            if min_count < count {
                self.t2[min_idx] = (hashed, raw);
            }
        }
    }
}

impl StreamSummary for SimpleListHh {
    fn insert(&mut self, item: u64) {
        debug_assert!(item < self.universe, "item outside declared universe");
        if !self.sampler.accept(&mut self.rng) {
            return;
        }
        self.sampled_insert(item);
    }

    /// Batch ingestion: instead of offering every element to the skip
    /// sampler (one counter decrement each), jump straight to the next
    /// sampled position with [`SkipSampler::next_within`] — an unsampled
    /// run costs one subtraction and its elements are never even loaded.
    /// RNG draw order matches the element-wise path exactly, so a
    /// same-seed batch run is bit-identical to element-wise insertion.
    fn insert_batch(&mut self, items: &[u64]) {
        debug_assert!(
            items.iter().all(|&x| x < self.universe),
            "item outside declared universe"
        );
        // p = 1: nothing to skip — the scalar loop is the fast path
        // (see `OptimalListHh::insert_batch`).
        if self.sampler.exponent() == 0 {
            for &x in items {
                self.insert(x);
            }
            return;
        }
        let mut i = 0usize;
        let n = items.len();
        while i < n {
            match self.sampler.next_within((n - i) as u64, &mut self.rng) {
                None => break,
                Some(off) => {
                    i += off as usize;
                    self.sampled_insert(items[i]);
                    i += 1;
                }
            }
        }
    }
}

impl SimpleListHh {
    /// The per-sample body shared by the scalar and batch insert paths.
    #[inline]
    fn sampled_insert(&mut self, item: u64) {
        // Sampled items are query-visible; unsampled ones never get here.
        self.cache.invalidate();
        self.samples += 1;
        let hashed = self.hash.hash(item);
        self.t1.insert(hashed);
        let count = self.t1.estimate(hashed);
        self.update_t2(hashed, item, count);
    }
}

impl HeavyHitters for SimpleListHh {
    /// The report; a cache hit (one clone of the materialized report)
    /// after a quiescent period, a `T2`-scan rebuild on the first query
    /// after a mutation.
    fn report(&self) -> Report {
        self.cache.get_or_build(|| self.build_report()).clone()
    }
}

impl SimpleListHh {
    /// The cold report pass: every `T2` item whose merged-`T1` count
    /// clears `(φ − ε/2)·s` is output at `count / p`.
    fn build_report(&self) -> Report {
        if self.samples == 0 {
            return Report::default();
        }
        let threshold = (self.params.phi() - self.params.eps() / 2.0) * self.samples as f64;
        self.t2
            .iter()
            .filter_map(|&(hashed, raw)| {
                let c = self.t1.estimate(hashed);
                (c as f64 >= threshold).then(|| ItemEstimate {
                    item: raw,
                    count: c as f64 / self.p,
                })
            })
            .collect()
    }
}

impl crate::traits::FrequencyEstimator for SimpleListHh {
    /// Point query: the hashed-id Misra–Gries count scaled back by the
    /// sampling rate. Sound for any item (the hash is evaluated on
    /// demand), with the same `±εm` accuracy as reported items for items
    /// heavy enough to survive the table; light items may read as 0.
    fn estimate(&self, item: u64) -> f64 {
        self.t1.estimate(self.hash.hash(item)) as f64 / self.p
    }
}

impl SpaceUsage for SimpleListHh {
    fn model_bits(&self) -> u64 {
        let t2_bits = self.t2.len() as u64 * hh_space::id_bits(self.universe)
            + (self.t2_cap - self.t2.len()) as u64;
        self.t1.model_bits() + t2_bits + self.hash.model_bits() + self.sampler.model_bits()
    }

    fn heap_bytes(&self) -> usize {
        self.t1.heap_bytes() + self.t2.capacity() * 16
    }
}

/// Snapshot format version tag (v3: a trailing FNV-1a/64 integrity
/// checksum guards the whole buffer).
const A1_TAG: &str = "hh.algo1.v3";
/// Previous (checksum-less) format, still accepted for restore.
const A1_TAG_V2: &str = "hh.algo1.v2";
/// Largest `T2` capacity a snapshot may claim. Real capacities are
/// `Θ(1/φ)` with `φ > ε > 0`, far below this; the bound exists so a
/// forged snapshot cannot commit a restored instance to unbounded
/// future growth.
const T2_CAP_LIMIT: usize = 1 << 24;

/// Full-state snapshot: parameters, hash seed, both tables, the sample
/// count, and the sampler/RNG state, so a restored instance reports
/// bit-identically *and* continues ingesting exactly as the original
/// would have.
impl Serialize for SimpleListHh {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        self.params.serialize(&mut serializer)?;
        serializer.write_u64(self.universe)?;
        self.sampler.serialize(&mut serializer)?;
        self.hash.serialize(&mut serializer)?;
        self.t1.serialize(&mut serializer)?;
        self.t2.serialize(&mut serializer)?;
        serializer.write_u64(self.t2_cap as u64)?;
        serializer.write_u64(self.samples)?;
        snapshot::write_rng_state(self.rng.to_state(), &mut serializer)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for SimpleListHh {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let params = HhParams::deserialize(&mut deserializer)?;
        let universe = deserializer.read_u64()?;
        if universe == 0 {
            return Err(serde::de::Error::invariant("empty universe"));
        }
        let sampler = SkipSampler::deserialize(&mut deserializer)?;
        let hash = CarterWegmanHash::deserialize(&mut deserializer)?;
        let t1 = MisraGries::deserialize(&mut deserializer)?;
        let t2: Vec<(u64, u64)> = Vec::deserialize(&mut deserializer)?;
        let t2_cap = deserializer.read_u64()?;
        if t2_cap == 0 || t2_cap > T2_CAP_LIMIT as u64 {
            return Err(serde::de::Error::invariant("T2 capacity out of range"));
        }
        let t2_cap = t2_cap as usize;
        if t2.len() > t2_cap {
            return Err(serde::de::Error::invariant("T2 overflows its capacity"));
        }
        let samples = deserializer.read_u64()?;
        let rng = StdRng::from_state(snapshot::read_rng_state(&mut deserializer)?);
        let p = sampler.probability();
        Ok(Self {
            params,
            universe,
            sampler,
            p,
            hash,
            t1,
            t2,
            t2_cap,
            samples,
            rng,
            cache: QueryCache::new(),
        })
    }
}

impl MergeableSummary for SimpleListHh {
    /// Seed-aligned merge: requires both instances to share the hash
    /// seed and sampling rate (build them with
    /// [`SimpleListHh::with_seeds`] under one structure seed). The
    /// hashed-id Misra–Gries tables merge counter-wise, the raw-id
    /// tables union and keep the `Θ(1/φ)` heaviest keys of the merged
    /// `T1`, and the sample counts add — afterwards `self` summarizes
    /// the concatenated sampled stream with the combined `s`.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        check_compatible(&self.params, &other.params, "parameters")?;
        check_compatible(&self.universe, &other.universe, "universes")?;
        check_compatible(&self.hash, &other.hash, "hash seeds")?;
        check_compatible(&self.p, &other.p, "sampling rates")?;
        check_compatible(&self.t2_cap, &other.t2_cap, "T2 capacities")?;
        self.cache.invalidate();
        self.t1.merge_from(&other.t1)?;
        // Saturating: counter accumulation must stay total even for
        // near-u64::MAX counts smuggled in through a restored snapshot.
        self.samples = self.samples.saturating_add(other.samples);
        // Union of tracked raw ids, re-ranked by the merged T1 counts.
        let mut merged = std::mem::take(&mut self.t2);
        for &(hashed, raw) in &other.t2 {
            if !merged.iter().any(|&(h, _)| h == hashed) {
                merged.push((hashed, raw));
            }
        }
        if merged.len() > self.t2_cap {
            merged.sort_unstable_by_key(|&(h, _)| (std::cmp::Reverse(self.t1.estimate(h)), h));
            merged.truncate(self.t2_cap);
        }
        self.t2 = merged;
        Ok(())
    }

    fn to_bytes(&self) -> bytes::Bytes {
        snapshot::encode(A1_TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(A1_TAG, &[A1_TAG_V2], bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_streams::{arrange, OrderPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted_stream(m: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        // Deterministic counts: heavy items get exactly round(p*m), filler
        // is spread over many distinct light ids.
        let mut counts: Vec<(u64, u64)> = heavy
            .iter()
            .map(|&(id, frac)| (id, (frac * m as f64).round() as u64))
            .collect();
        let used: u64 = counts.iter().map(|&(_, c)| c).sum();
        let fill = m - used;
        let light_ids = 4096u64;
        for j in 0..light_ids {
            let c = fill / light_ids + u64::from(j < fill % light_ids);
            if c > 0 {
                counts.push((1_000_000 + j, c));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        arrange(&counts, OrderPolicy::Shuffled, &mut rng)
    }

    #[test]
    fn finds_planted_heavy_hitters() {
        let m = 400_000u64;
        let params = HhParams::with_delta(0.02, 0.1, 0.1).unwrap();
        let stream = planted_stream(m, &[(7, 0.30), (8, 0.15), (9, 0.11)], 1);
        let mut a = SimpleListHh::new(params, 1 << 40, m, 99).unwrap();
        a.insert_all(&stream);
        let r = a.report();
        for item in [7u64, 8, 9] {
            assert!(r.contains(item), "missing heavy item {item}");
        }
        // Estimates within εm.
        for (item, frac) in [(7u64, 0.30), (8, 0.15), (9, 0.11)] {
            let est = r.estimate(item).unwrap();
            let truth = frac * m as f64;
            assert!(
                (est - truth).abs() <= 0.02 * m as f64,
                "item {item}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn rejects_items_below_phi_minus_eps() {
        let m = 400_000u64;
        let params = HhParams::with_delta(0.02, 0.1, 0.1).unwrap();
        // 30% heavy, plus an item at exactly (φ−ε)m = 8% — must NOT be
        // reported; φ-level items MUST be.
        let stream = planted_stream(m, &[(7, 0.30), (55, 0.08)], 2);
        let mut a = SimpleListHh::new(params, 1 << 40, m, 17).unwrap();
        a.insert_all(&stream);
        let r = a.report();
        assert!(r.contains(7));
        assert!(!r.contains(55), "item at (phi-eps)m must be suppressed");
    }

    #[test]
    fn order_independence() {
        let m = 200_000u64;
        let params = HhParams::with_delta(0.04, 0.2, 0.1).unwrap();
        let counts: Vec<(u64, u64)> =
            vec![(5, (0.4 * m as f64) as u64), (6, (0.25 * m as f64) as u64)]
                .into_iter()
                .chain((0..2000).map(|j| (100_000 + j, (m as f64 * 0.35 / 2000.0) as u64)))
                .collect();
        for policy in [
            OrderPolicy::Sorted,
            OrderPolicy::RoundRobin,
            OrderPolicy::HeavyLast,
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let stream = arrange(&counts, policy, &mut rng);
            let mut a = SimpleListHh::new(params, 1 << 40, stream.len() as u64, 7).unwrap();
            a.insert_all(&stream);
            let r = a.report();
            assert!(r.contains(5), "{policy:?}: missing item 5");
            assert!(r.contains(6), "{policy:?}: missing item 6");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = 50_000u64;
        let params = HhParams::new(0.05, 0.2).unwrap();
        let stream = planted_stream(m, &[(1, 0.5)], 4);
        let run = |seed| {
            let mut a = SimpleListHh::new(params, 1 << 20, m, seed).unwrap();
            a.insert_all(&stream);
            a.report()
        };
        assert_eq!(run(42).entries(), run(42).entries());
    }

    #[test]
    fn space_well_below_misra_gries_for_large_universe() {
        // Like-for-like comparison: Misra–Gries needs the same counter
        // capacity k = 4/ε to give the same additive error, but stores
        // raw 60-bit ids and full log-m counters. Algorithm 1 stores
        // hashed ids (Θ(log ε⁻¹) bits) and sampled counters.
        let m = 1 << 22;
        let eps = 0.02;
        let n = 1u64 << 60;
        let params = HhParams::with_delta(eps, 0.25, 0.1).unwrap();
        let stream = planted_stream(m, &[(3, 0.5)], 5);
        let mut a = SimpleListHh::new(params, n, m, 11).unwrap();
        a.insert_all(&stream);
        let mg_bits = (4.0 / eps) * (60.0 + (m as f64).log2());
        assert!(
            (a.model_bits() as f64) < mg_bits,
            "model {} not below MG {}",
            a.model_bits(),
            mg_bits
        );
    }

    #[test]
    fn point_queries_track_heavy_items() {
        use crate::traits::FrequencyEstimator;
        let m = 300_000u64;
        let params = HhParams::with_delta(0.04, 0.2, 0.1).unwrap();
        let stream = planted_stream(m, &[(7, 0.35), (8, 0.25)], 21);
        let mut a = SimpleListHh::new(params, 1 << 40, m, 22).unwrap();
        a.insert_all(&stream);
        for (item, frac) in [(7u64, 0.35), (8, 0.25)] {
            let est = a.estimate(item);
            assert!(
                (est - frac * m as f64).abs() <= 0.04 * m as f64,
                "item {item}: est {est}"
            );
        }
        // A never-seen item cannot be overestimated beyond the MG error.
        assert!(a.estimate(999_999_999) <= 0.04 * m as f64);
    }

    #[test]
    fn batch_insert_is_bit_identical_to_element_wise() {
        let m = 120_000u64;
        let params = HhParams::with_delta(0.04, 0.2, 0.1).unwrap();
        let stream = planted_stream(m, &[(7, 0.35)], 13);
        let mut a = SimpleListHh::new(params, 1 << 40, m, 5).unwrap();
        for &x in &stream {
            a.insert(x);
        }
        let mut b = SimpleListHh::new(params, 1 << 40, m, 5).unwrap();
        for chunk in stream.chunks(1237) {
            b.insert_batch(chunk);
        }
        assert_eq!(a.report().entries(), b.report().entries());
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.model_bits(), b.model_bits());
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let params = HhParams::new(0.1, 0.3).unwrap();
        let a = SimpleListHh::new(params, 100, 1000, 0).unwrap();
        assert!(a.report().is_empty());
    }

    #[test]
    fn merged_partitions_find_the_heavy_hitters() {
        let m = 400_000u64;
        let params = HhParams::with_delta(0.04, 0.12, 0.1).unwrap();
        let stream = planted_stream(m, &[(7, 0.30), (8, 0.15), (55, 0.06)], 31);
        let mut parts: Vec<SimpleListHh> = (0..3)
            .map(|j| SimpleListHh::with_seeds(params, 1 << 40, m, 9, 100 + j).unwrap())
            .collect();
        // Arbitrary position-based partition: round-robin over the parts.
        for (i, &x) in stream.iter().enumerate() {
            parts[i % 3].insert(x);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge_from(p).unwrap();
        }
        let r = merged.report();
        assert!(
            r.contains(7) && r.contains(8),
            "merged report misses heavy items"
        );
        assert!(!r.contains(55), "(phi-eps)-light item must stay suppressed");
        for (item, frac) in [(7u64, 0.30), (8, 0.15)] {
            let est = r.estimate(item).unwrap();
            assert!(
                (est - frac * m as f64).abs() <= 0.04 * m as f64,
                "item {item}: est {est}"
            );
        }
    }

    #[test]
    fn merge_rejects_differently_seeded_instances() {
        use crate::error::MergeError;
        let params = HhParams::new(0.05, 0.2).unwrap();
        let mut a = SimpleListHh::with_seeds(params, 1 << 20, 10_000, 1, 10).unwrap();
        let b = SimpleListHh::with_seeds(params, 1 << 20, 10_000, 2, 11).unwrap();
        assert_eq!(
            a.merge_from(&b),
            Err(MergeError::Incompatible("hash seeds"))
        );
    }

    #[test]
    fn snapshot_restores_report_and_resumes_bit_identically() {
        let m = 150_000u64;
        let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
        let stream = planted_stream(m, &[(7, 0.4)], 8);
        let (head, tail) = stream.split_at(stream.len() / 2);
        let mut a = SimpleListHh::new(params, 1 << 40, m, 3).unwrap();
        a.insert_batch(head);
        let mut restored = SimpleListHh::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(a.report().entries(), restored.report().entries());
        assert_eq!(a.model_bits(), restored.model_bits());
        // Resuming the stream on the restored copy matches the original.
        a.insert_batch(tail);
        restored.insert_batch(tail);
        assert_eq!(a.report().entries(), restored.report().entries());
        assert_eq!(a.samples(), restored.samples());
    }

    #[test]
    fn constructor_validates() {
        let params = HhParams::new(0.1, 0.3).unwrap();
        assert!(matches!(
            SimpleListHh::new(params, 0, 10, 0),
            Err(ParamError::EmptyUniverse)
        ));
        assert!(matches!(
            SimpleListHh::new(params, 10, 0, 0),
            Err(ParamError::ZeroLength)
        ));
    }
}
