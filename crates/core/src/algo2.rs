//! Algorithm 2: the space-optimal (ε, φ)-List heavy hitters algorithm
//! (Theorem 2).
//!
//! Same sampling front end as Algorithm 1, but the per-candidate counting
//! machinery is replaced so the `ε⁻¹ log ε⁻¹` term drops to
//! `ε⁻¹ log φ⁻¹`:
//!
//! * **T1** — Misra–Gries over *raw* ids with `Θ(1/φ)` counters. Its
//!   counts are too coarse to use (error `Θ(φs)`), but its key set
//!   contains every `φ`-heavy item: the candidates.
//! * Per repetition `j` (there are `R = Θ(log φ⁻¹)` of them, driving the
//!   per-candidate failure probability below `Θ(φ)` for a union bound):
//!   * `h_j : [n] → [Θ(1/ε)]` hashes items to buckets; per-bucket counts
//!     estimate per-item counts up to the `Θ(εs)` collision mass.
//!   * **T2** — per-bucket subsampled counter (increment with probability
//!     `ε̂`): a constant-factor running estimate `f̄_i ≈ T2/ε̂` of the
//!     bucket count, used only to pick the *epoch*.
//!   * **T3** — the **accelerated counters**: in epoch
//!     `t = ⌊log₂(c·T2²)⌋`, increments are recorded with probability
//!     `p_t = min(ε̂·2ᵗ, 1)`. As the bucket grows, the sampling
//!     probability accelerates, keeping `Var[f̂] = O(ε⁻²)` *total* across
//!     epochs (the geometric-decay argument of Claim 2) while a naive
//!     fixed-rate counter would pay an extra `log ε⁻¹` factor.
//! * The estimate `f̂_j = Σ_t T3[i,j,t]/p_t` is unbiased up to the
//!   pre-epoch-0 mass; the median over `j` is compared against
//!   `(φ − ε/2)s`.
//!
//! Because `ε̂` is a power of two (footnote 3), every `p_t = 2^{t−k}` is a
//! power of two and each sampling decision is a masked test of one random
//! word.
//!
//! [`EpochMode::Flat`] is the ablation knob for E12: it disables `T3` and
//! estimates from `T2` alone, exhibiting the variance blow-up §3.1.2
//! warns about.

use crate::config::{Constants, HhParams};
use crate::error::ParamError;
use crate::mg::MisraGries;
use crate::report::{ItemEstimate, Report};
use crate::traits::{HeavyHitters, StreamSummary};
use hh_hash::{CarterWegmanFamily, CarterWegmanHash, HashFamily, HashFunction};
use hh_sampling::SkipSampler;
use hh_space::{SpaceUsage, VarCounterArray};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether the accelerated epoch counters (the paper's T3) are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// Full Algorithm 2: epoch-indexed accelerated counters.
    Accelerated,
    /// Ablation: estimate from the flat ε̂-rate counter T2 alone. Same
    /// space shape, but per-estimate variance `Θ(f/ε̂)` instead of
    /// `O(ε̂⁻²)` — the failure §3.1.2's overview motivates T3 with.
    Flat,
}

/// Epoch for a T2 value `v`: `⌊log₂(scale · v²)⌋` clamped to `[0, k]`, or
/// `None` below epoch 0. Clamping at `k` is sound because the sampling
/// probability `min(ε̂·2ᵗ, 1)` saturates at one there, making all higher
/// epochs operationally identical (line 15 of the paper's pseudocode).
fn epoch_of(v: u64, scale: f64, k: u32) -> Option<u32> {
    if v == 0 {
        return None;
    }
    let x = scale * (v as f64) * (v as f64);
    if x < 1.0 {
        return None;
    }
    Some((x.log2().floor() as u32).min(k))
}

/// One of the `R` independent repetitions.
#[derive(Debug, Clone)]
struct Repetition {
    hash: CarterWegmanHash,
    /// Subsampled bucket counters (`T2[·, j]`).
    t2: VarCounterArray,
    /// Epoch counters (`T3[·, j, ·]`), flattened as `bucket·(k+1) + t`.
    t3: VarCounterArray,
}

/// Algorithm 2 of the paper (Theorem 2).
#[derive(Debug, Clone)]
pub struct OptimalListHh {
    params: HhParams,
    universe: u64,
    sampler: SkipSampler,
    p: f64,
    /// T1: Misra–Gries candidate set over raw ids.
    t1: MisraGries,
    reps: Vec<Repetition>,
    buckets: u64,
    /// `ε̂ = 2^{-k_eps}`, the power-of-two rounding of the T2 rate.
    k_eps: u32,
    epoch_scale: f64,
    mode: EpochMode,
    samples: u64,
    rng: StdRng,
}

impl OptimalListHh {
    /// Creates the algorithm for a stream of advertised length `m` over
    /// universe `[0, universe)`, default constants, accelerated mode.
    pub fn new(params: HhParams, universe: u64, m: u64, seed: u64) -> Result<Self, ParamError> {
        Self::with_constants(
            params,
            universe,
            m,
            seed,
            Constants::default(),
            EpochMode::Accelerated,
        )
    }

    /// Full-control constructor (constants profile and epoch-mode
    /// ablation knob).
    pub fn with_constants(
        params: HhParams,
        universe: u64,
        m: u64,
        seed: u64,
        consts: Constants,
        mode: EpochMode,
    ) -> Result<Self, ParamError> {
        if universe == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        if m == 0 {
            return Err(ParamError::ZeroLength);
        }
        let eps = params.eps();
        let phi = params.phi();
        let mut rng = StdRng::seed_from_u64(seed);

        // ℓ = Θ(ε⁻²); constant from the profile (paper: 10⁵).
        let ell = (consts.a2_sample_factor / (eps * eps)).ceil();
        if !ell.is_finite() || ell < 1.0 {
            return Err(ParamError::BadConstants("algorithm-2 sample budget"));
        }
        let p_target = (2.0 * ell / m as f64).min(1.0);
        let sampler = SkipSampler::with_probability(p_target);
        let p = sampler.probability();

        // T1 capacity Θ(1/φ) over raw ids.
        let t1_cap = (consts.a2_t1_factor / phi).ceil() as usize;
        let t1 = MisraGries::new(t1_cap.max(1), hh_space::id_bits(universe));

        // Repetitions R = Θ(log(1/φ)), forced odd for a clean median.
        let mut r = ((consts.a2_rep_factor * (12.0 / phi).ln()).ceil() as usize)
            .max(consts.a2_rep_min)
            .max(1);
        if r % 2 == 0 {
            r += 1;
        }

        let buckets = ((consts.a2_bucket_factor / eps).ceil() as u64).max(2);
        let k_eps = hh_sampling::bernoulli::pow2_exponent(eps);
        let family = CarterWegmanFamily::new(buckets);
        let reps = (0..r)
            .map(|_| Repetition {
                hash: family.sample(&mut rng),
                t2: VarCounterArray::new(buckets as usize),
                t3: VarCounterArray::new(buckets as usize * (k_eps as usize + 1)),
            })
            .collect();

        Ok(Self {
            params,
            universe,
            sampler,
            p,
            t1,
            reps,
            buckets,
            k_eps,
            epoch_scale: consts.a2_epoch_scale,
            mode,
            samples: 0,
            rng,
        })
    }

    /// The realized sampling probability.
    pub fn sampling_probability(&self) -> f64 {
        self.p
    }

    /// Number of sampled items (`s` in the paper).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of repetitions `R`.
    pub fn repetitions(&self) -> usize {
        self.reps.len()
    }

    /// Number of hash buckets per repetition (`Θ(1/ε)`).
    pub fn buckets(&self) -> u64 {
        self.buckets
    }

    /// Problem parameters.
    pub fn params(&self) -> HhParams {
        self.params
    }

    /// Per-term space decomposition `(t1_bits, counting_bits,
    /// sampler_bits)` matching the three terms of the Theorem-2 bound:
    /// `φ⁻¹ log n` (candidate ids), `ε⁻¹ log φ⁻¹` (T2/T3 tables and hash
    /// seeds across repetitions), `log log m` (sampler). Used by the
    /// Table-1 experiment to validate each term against its own formula.
    pub fn component_bits(&self) -> (u64, u64, u64) {
        let counting: u64 = self
            .reps
            .iter()
            .map(|r| r.t2.model_bits() + r.t3.sparse_model_bits() + r.hash.model_bits())
            .sum();
        (self.t1.model_bits(), counting, self.sampler.model_bits())
    }

    /// The power-of-two subsampling rate ε̂.
    fn eps_hat(&self) -> f64 {
        (0.5f64).powi(self.k_eps as i32)
    }

    /// Epoch for the current T2 value: `⌊log₂(c · v²)⌋`, or `None` below
    /// epoch 0. Exposed for the ablation harness (E12).
    pub fn epoch(&self, t2_value: u64) -> Option<u32> {
        epoch_of(t2_value, self.epoch_scale, self.k_eps)
    }

    /// Per-repetition estimate `f̂_j(x)` of the sampled-stream count of
    /// `x`'s bucket.
    fn estimate_rep(&self, rep: &Repetition, item: u64) -> f64 {
        let i = rep.hash.hash(item) as usize;
        match self.mode {
            EpochMode::Flat => rep.t2.get(i) as f64 / self.eps_hat(),
            EpochMode::Accelerated => {
                let base = i * (self.k_eps as usize + 1);
                let t3_sum: f64 = (0..=self.k_eps)
                    .map(|t| {
                        let c = rep.t3.get(base + t as usize);
                        // p_t = 2^{t−k}; divide by it ⇒ multiply by 2^{k−t}.
                        c as f64 * (1u64 << (self.k_eps - t)) as f64
                    })
                    .sum();
                if t3_sum > 0.0 {
                    t3_sum
                } else {
                    // Below-epoch-0 fallback (implementation hardening,
                    // documented in DESIGN.md): when the stream is shorter
                    // than the paper's m = poly(1/ε) regime the bucket may
                    // never reach epoch 0, leaving T3 empty. The ε̂-rate
                    // tracker T2 is an unbiased (higher-variance) estimate
                    // of the same count; using it beats reporting zero.
                    rep.t2.get(i) as f64 / self.eps_hat()
                }
            }
        }
    }

    /// Median-of-repetitions estimate of the sampled-stream count of
    /// `item`'s buckets.
    fn estimate_sampled(&self, item: u64) -> f64 {
        let mut ests: Vec<f64> = self
            .reps
            .iter()
            .map(|rep| self.estimate_rep(rep, item))
            .collect();
        ests.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ests[ests.len() / 2]
    }
}

impl StreamSummary for OptimalListHh {
    fn insert(&mut self, item: u64) {
        debug_assert!(item < self.universe, "item outside declared universe");
        if !self.sampler.accept(&mut self.rng) {
            return;
        }
        self.samples += 1;
        self.t1.insert(item);

        let k = self.k_eps;
        for rep in &mut self.reps {
            let i = rep.hash.hash(item) as usize;
            // T2: increment with probability ε̂ = 2^{-k}.
            let word: u64 = self.rng.gen();
            let t2_mask = if k == 0 { 0 } else { (1u64 << k.min(63)) - 1 };
            if word & t2_mask == 0 {
                rep.t2.increment(i);
            }
            if self.mode == EpochMode::Flat {
                continue;
            }
            // T3: epoch from the (possibly just-updated) T2 value.
            let v = rep.t2.get(i);
            let t = match epoch_of(v, self.epoch_scale, k) {
                Some(t) => t,
                None => continue,
            };
            // p_t = 2^{t−k}: accept iff (k − t) fresh bits are all zero.
            let need = k - t;
            let accept = if need == 0 {
                true
            } else {
                let w: u64 = self.rng.gen();
                w & ((1u64 << need) - 1) == 0
            };
            if accept {
                rep.t3.increment(i * (k as usize + 1) + t as usize);
            }
        }
    }
}

impl HeavyHitters for OptimalListHh {
    fn report(&self) -> Report {
        if self.samples == 0 {
            return Report::default();
        }
        let threshold = (self.params.phi() - self.params.eps() / 2.0) * self.samples as f64;
        self.t1
            .entries()
            .into_iter()
            .filter_map(|(item, _)| {
                let est = self.estimate_sampled(item);
                (est >= threshold).then_some(ItemEstimate {
                    item,
                    count: est / self.p,
                })
            })
            .collect()
    }
}

impl crate::traits::FrequencyEstimator for OptimalListHh {
    /// Point query: the median-of-repetitions bucket estimate scaled back
    /// by the sampling rate. Unlike the report path this works for any
    /// item, with accuracy `±(εm + collision mass of the item's buckets)`.
    fn estimate(&self, item: u64) -> f64 {
        self.estimate_sampled(item) / self.p
    }
}

impl SpaceUsage for OptimalListHh {
    fn model_bits(&self) -> u64 {
        let reps: u64 = self
            .reps
            .iter()
            .map(|r| {
                // T2 dense (Θ(1) expected bits per bucket), T3 sparse
                // (§3.1.2: "not all the allowed cells will actually be
                // used"), plus the hash seed.
                r.t2.model_bits() + r.t3.sparse_model_bits() + r.hash.model_bits()
            })
            .sum();
        self.t1.model_bits() + reps + self.sampler.model_bits()
    }

    fn heap_bytes(&self) -> usize {
        self.t1.heap_bytes()
            + self
                .reps
                .iter()
                .map(|r| r.t2.heap_bytes() + r.t3.heap_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_streams::{arrange, OrderPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted_stream(m: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        let mut counts: Vec<(u64, u64)> = heavy
            .iter()
            .map(|&(id, frac)| (id, (frac * m as f64).round() as u64))
            .collect();
        let used: u64 = counts.iter().map(|&(_, c)| c).sum();
        let fill = m - used;
        let light_ids = 4096u64;
        for j in 0..light_ids {
            let c = fill / light_ids + u64::from(j < fill % light_ids);
            if c > 0 {
                counts.push((1_000_000 + j, c));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        arrange(&counts, OrderPolicy::Shuffled, &mut rng)
    }

    fn run(
        m: u64,
        heavy: &[(u64, f64)],
        eps: f64,
        phi: f64,
        seed: u64,
        mode: EpochMode,
    ) -> (OptimalListHh, Vec<u64>) {
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        let stream = planted_stream(m, heavy, seed);
        let mut a = OptimalListHh::with_constants(
            params,
            1 << 40,
            m,
            seed ^ 0xABCD,
            Constants::default(),
            mode,
        )
        .unwrap();
        a.insert_all(&stream);
        (a, stream)
    }

    #[test]
    fn finds_planted_heavy_hitters_with_estimates() {
        let m = 600_000u64;
        let heavy = [(7u64, 0.30), (8, 0.16), (9, 0.12)];
        let (a, _) = run(m, &heavy, 0.05, 0.1, 1, EpochMode::Accelerated);
        let r = a.report();
        for (item, frac) in heavy {
            assert!(r.contains(item), "missing heavy item {item}");
            let est = r.estimate(item).unwrap();
            let truth = frac * m as f64;
            assert!(
                (est - truth).abs() <= 0.05 * m as f64,
                "item {item}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn rejects_items_below_phi_minus_eps() {
        let m = 600_000u64;
        // 55 sits at (φ−ε)m = 5%: must not be reported.
        let (a, _) = run(
            m,
            &[(7, 0.30), (55, 0.05)],
            0.05,
            0.1,
            2,
            EpochMode::Accelerated,
        );
        let r = a.report();
        assert!(r.contains(7));
        assert!(!r.contains(55), "item at (phi-eps)m must be suppressed");
    }

    #[test]
    fn epoch_boundaries_move_with_t2() {
        let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
        let a = OptimalListHh::new(params, 1 << 20, 1 << 20, 3).unwrap();
        assert_eq!(a.epoch(0), None);
        // Below the epoch-0 threshold T2² · c < 1.
        let thresh = (1.0 / a.epoch_scale).sqrt();
        assert_eq!(a.epoch((thresh * 0.5) as u64), None);
        // Above it, epochs increase and clamp at k_eps.
        let t_lo = a.epoch((thresh * 1.5) as u64).unwrap();
        let t_hi = a.epoch((thresh * 100.0) as u64).unwrap();
        assert!(t_hi > t_lo);
        assert!(t_hi <= a.k_eps);
        assert_eq!(a.epoch(u32::MAX as u64), Some(a.k_eps));
    }

    #[test]
    fn repetitions_are_odd_and_scale_with_phi() {
        let p1 = HhParams::with_delta(0.01, 0.5, 0.1).unwrap();
        let p2 = HhParams::with_delta(0.01, 0.02, 0.1).unwrap();
        let a1 = OptimalListHh::new(p1, 1 << 20, 1 << 20, 0).unwrap();
        let a2 = OptimalListHh::new(p2, 1 << 20, 1 << 20, 0).unwrap();
        assert_eq!(a1.repetitions() % 2, 1);
        assert_eq!(a2.repetitions() % 2, 1);
        assert!(a2.repetitions() > a1.repetitions());
    }

    #[test]
    fn flat_mode_still_counts_but_without_t3() {
        let m = 300_000u64;
        let (a, _) = run(m, &[(7, 0.40)], 0.05, 0.15, 4, EpochMode::Flat);
        // T3 untouched in flat mode.
        assert!(a.reps.iter().all(|r| r.t3.nonzero() == 0));
        let r = a.report();
        assert!(r.contains(7), "flat mode should still find a 40% item");
    }

    #[test]
    fn per_repetition_tables_scale_as_inverse_eps() {
        // Theorem 2's counting core: each repetition's T2+T3 cost is
        // Θ(ε⁻¹) bits with an ε-independent constant (cell values stay
        // Θ(1) in expectation because s ~ ε⁻², the subsample rate is ~ε
        // and there are ~ε⁻¹ buckets). Check that bits·ε is flat across a
        // 4x change in ε — this is what separates the optimal bound
        // ε⁻¹·log φ⁻¹ from Algorithm 1's ε⁻¹·log ε⁻¹.
        // Small sample budget keeps the test fast without changing shape.
        let consts = Constants {
            a2_sample_factor: 500.0,
            ..Constants::default()
        };
        let per_rep_bits = |eps: f64, seed: u64| -> f64 {
            let m = 1 << 21;
            let params = HhParams::with_delta(eps, 0.25, 0.1).unwrap();
            let stream = planted_stream(m, &[(1u64, 0.3)], seed);
            let mut a = OptimalListHh::with_constants(
                params,
                1 << 40,
                m,
                seed,
                consts,
                EpochMode::Accelerated,
            )
            .unwrap();
            a.insert_all(&stream);
            a.reps
                .iter()
                .map(|r| r.t2.model_bits() + r.t3.sparse_model_bits())
                .sum::<u64>() as f64
                / a.reps.len() as f64
        };
        let coarse = per_rep_bits(0.1, 5);
        let fine = per_rep_bits(0.025, 6);
        let ratio = (fine * 0.025) / (coarse * 0.1);
        assert!(
            (0.5..2.0).contains(&ratio),
            "bits*eps not flat: coarse {coarse}, fine {fine}, ratio {ratio}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = 100_000u64;
        let heavy = [(3u64, 0.5)];
        let (a, _) = run(m, &heavy, 0.1, 0.3, 9, EpochMode::Accelerated);
        let (b, _) = run(m, &heavy, 0.1, 0.3, 9, EpochMode::Accelerated);
        assert_eq!(a.report().entries(), b.report().entries());
    }

    #[test]
    fn point_queries_track_heavy_items() {
        use crate::traits::FrequencyEstimator;
        let m = 400_000u64;
        let heavy = [(7u64, 0.35), (8, 0.2)];
        let (a, _) = run(m, &heavy, 0.05, 0.15, 31, EpochMode::Accelerated);
        for (item, frac) in heavy {
            let est = a.estimate(item);
            assert!(
                (est - frac * m as f64).abs() <= 0.05 * m as f64,
                "item {item}: est {est}"
            );
        }
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let params = HhParams::new(0.1, 0.3).unwrap();
        let a = OptimalListHh::new(params, 100, 1000, 0).unwrap();
        assert!(a.report().is_empty());
    }
}
