//! Algorithm 2: the space-optimal (ε, φ)-List heavy hitters algorithm
//! (Theorem 2).
//!
//! Same sampling front end as Algorithm 1, but the per-candidate counting
//! machinery is replaced so the `ε⁻¹ log ε⁻¹` term drops to
//! `ε⁻¹ log φ⁻¹`:
//!
//! * **T1** — Misra–Gries over *raw* ids with `Θ(1/φ)` counters. Its
//!   counts are too coarse to use (error `Θ(φs)`), but its key set
//!   contains every `φ`-heavy item: the candidates.
//! * Per repetition `j` (there are `R = Θ(log φ⁻¹)` of them, driving the
//!   per-candidate failure probability below `Θ(φ)` for a union bound):
//!   * `h_j : [n] → [Θ(1/ε)]` hashes items to buckets; per-bucket counts
//!     estimate per-item counts up to the `Θ(εs)` collision mass.
//!   * **T2** — per-bucket subsampled counter (increment with probability
//!     `ε̂`): a constant-factor running estimate `f̄_i ≈ T2/ε̂` of the
//!     bucket count, used only to pick the *epoch*.
//!   * **T3** — the **accelerated counters**: in epoch
//!     `t = ⌊log₂(c·T2²)⌋`, increments are recorded with probability
//!     `p_t = min(ε̂·2ᵗ, 1)`. As the bucket grows, the sampling
//!     probability accelerates, keeping `Var[f̂] = O(ε⁻²)` *total* across
//!     epochs (the geometric-decay argument of Claim 2) while a naive
//!     fixed-rate counter would pay an extra `log ε⁻¹` factor.
//! * The estimate `f̂_j = Σ_t T3[i,j,t]/p_t` is unbiased up to the
//!   pre-epoch-0 mass; the median over `j` is compared against
//!   `(φ − ε/2)s`.
//!
//! Because `ε̂` is a power of two (footnote 3), every `p_t = 2^{t−k}` is a
//! power of two and each sampling decision is a test of `k − t` fresh
//! random bits.
//!
//! # Hot-path engineering (see DESIGN.md)
//!
//! The paper's headline is `O(1)` update time, so the insert path is
//! built to run at memory speed:
//!
//! * randomness is **bit-budgeted**: T2 coins come from a geometric-skip
//!   Bernoulli(2⁻ᵏ) sampler ([`hh_sampling::BitSkipSampler`], one counter
//!   decrement per trial) and T3 coins from `k − t`-bit slices of a
//!   buffered word ([`hh_sampling::BitBudget`]) — no fresh RNG word per
//!   repetition;
//! * the epoch `⌊log₂(c·T2²)⌋` is never recomputed with float math:
//!   an integer **threshold table** (`epoch_thresholds`) plus a per-bucket
//!   cached epoch byte make it a table lookup refreshed only when T2
//!   increments;
//! * tables are **flat arrays** (`t2`, `t3`, `epochs` indexed by
//!   `rep · buckets + bucket`) and the per-repetition hash is the
//!   single-multiply plain-universal multiply-shift
//!   ([`MultiplyShift64Family`], one `u64` multiply and a shift), drawn
//!   over a doubled power-of-two range so the Definition-2 collision
//!   bound of the bucket analysis is preserved;
//! * space accounting is **deferred**: updates touch raw counters only,
//!   and the gamma-bit sums the model charges are recomputed from the
//!   tables when a space query is made (`hh_space::gamma_sum_bits` /
//!   `sparse_slice_bits`).
//!
//! [`EpochMode::Flat`] is the ablation knob for E12: it disables `T3` and
//! estimates from `T2` alone, exhibiting the variance blow-up §3.1.2
//! warns about.

use crate::cache::QueryCache;
use crate::config::{Constants, HhParams};
use crate::error::{MergeError, ParamError, SnapshotError};
use crate::mergeable::{check_compatible, snapshot, MergeableSummary, RestoreReport};
use crate::mg::MisraGries;
use crate::report::{ItemEstimate, Report};
use crate::traits::{HeavyHitters, StreamSummary};
use hh_hash::{HashFamily, HashFunction, MultiplyShift64Family, MultiplyShift64Hash};
use hh_sampling::{BitBudget, BitSkipSampler};
use hh_space::{gamma_sum_bits, sparse_slice_bits, SpaceUsage};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Whether the accelerated epoch counters (the paper's T3) are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// Full Algorithm 2: epoch-indexed accelerated counters.
    Accelerated,
    /// Ablation: estimate from the flat ε̂-rate counter T2 alone. Same
    /// space shape, but per-estimate variance `Θ(f/ε̂)` instead of
    /// `O(ε̂⁻²)` — the failure §3.1.2's overview motivates T3 with.
    Flat,
}

/// Cached-epoch sentinel for "below epoch 0" (T2 too small for any
/// accelerated counter to be active).
const EPOCH_NONE: u8 = u8::MAX;

/// Reference epoch formula, unclamped: `⌊log₂(scale · v²)⌋`, or `None`
/// below epoch 0. Used only to build the integer threshold table at
/// construction; the hot path and all queries go through the table.
fn raw_epoch(v: u64, scale: f64) -> Option<u32> {
    if v == 0 {
        return None;
    }
    let x = scale * (v as f64) * (v as f64);
    if x < 1.0 {
        return None;
    }
    Some(x.log2().floor() as u32)
}

/// `thresholds[t] =` smallest T2 value whose (unclamped) epoch is at
/// least `t`, for `t ∈ [0, k]`. The epoch of `v` is then the largest `t`
/// with `v ≥ thresholds[t]` (or `None` below `thresholds[0]`), which
/// clamps at `k` by construction — clamping is sound because the sampling
/// probability `min(ε̂·2ᵗ, 1)` saturates there (line 15 of the paper's
/// pseudocode).
fn epoch_thresholds(scale: f64, k: u32) -> Vec<u64> {
    (0..=k)
        .map(|t| {
            // Seed the search a touch below √(2ᵗ/scale), then advance to
            // the first value the *reference formula* maps to epoch ≥ t,
            // so table and formula agree exactly at every boundary.
            let target = ((2f64).powi(t as i32) / scale).sqrt();
            let mut v = (target as u64).saturating_sub(2).max(1);
            while raw_epoch(v, scale).is_none_or(|e| e < t) {
                v += 1;
            }
            v
        })
        .collect()
}

/// Builds the branchless T3 trial tables for a given `ε̂ = 2^{-k}`
/// exponent (shared by the constructor and snapshot restore; the tables
/// are pure functions of `k`, so they are never serialized).
#[allow(clippy::type_complexity)]
fn trial_tables(k_eps: u32) -> (Box<[u64; 256]>, Box<[u64; 256]>, Box<[u8; 256]>) {
    let mut t3_mask = Box::new([0u64; 256]);
    let mut t3_add = Box::new([1u64; 256]);
    let mut t3_slot = Box::new([k_eps as u8; 256]);
    for e in 0..=k_eps.min(255) {
        // Low (k − e) bits of a k-bit slice; u128 shift handles the
        // full-width k = 64, e = 0 corner.
        t3_mask[e as usize] = (((1u128) << (k_eps - e)) - 1) as u64;
        t3_add[e as usize] = 0;
        t3_slot[e as usize] = e as u8;
    }
    (t3_mask, t3_add, t3_slot)
}

/// Most fresh 64-bit words the aligned coin schedule may spend on one
/// sample's T3 slices. `⌈R / ⌊64/k⌋⌉` beyond this (huge `R` at large
/// `k`) falls back to the legacy buffered-bit schedule.
const MAX_COIN_WORDS: usize = 8;

/// Derives the aligned coin layout for `(k_eps, r)`: per-repetition
/// `(word, shift)` sources, the per-sample word budget `W`, and whether
/// the layout is representable at all (`k ∈ [1, 64]`, `R ≤ 64` so the
/// T2 coins fit one bitmask, `W ≤ MAX_COIN_WORDS`). Pure function of
/// the parameters — recomputed on snapshot restore, never serialized.
fn coin_layout(k_eps: u32, r: usize) -> (u32, bool) {
    // `k = 64` is excluded so the fast path's slice sentinel `1 << k`
    // stays a valid shift; that degenerate width keeps the legacy path.
    if k_eps == 0 || k_eps >= 64 || r > 64 {
        return (0, false);
    }
    let per = (64 / k_eps) as usize;
    let words = r.div_ceil(per);
    if words > MAX_COIN_WORDS {
        return (0, false);
    }
    (words as u32, true)
}

/// Algorithm 2 of the paper (Theorem 2).
///
/// Per-repetition state lives in flat rep-major arrays (`t2`, `t3`,
/// `epochs`) rather than per-repetition structs; see the module docs for
/// the hot-path layout.
#[derive(Debug, Clone)]
pub struct OptimalListHh {
    params: HhParams,
    universe: u64,
    /// Stream-sampling front end (bit-driven geometric skip, identical
    /// in distribution and space accounting to the ln-based form).
    sampler: BitSkipSampler,
    p: f64,
    /// T1: Misra–Gries candidate set over raw ids.
    t1: MisraGries,
    /// Per-repetition hash functions `h_j`: single-multiply plain-universal
    /// multiply-shift, drawn with a doubled power-of-two range so the
    /// per-bucket collision bound matches the `Θ(1/ε)`-bucket analysis
    /// (see `MultiplyShift64Family::covering_universal` and DESIGN.md).
    hashes: Vec<MultiplyShift64Hash>,
    /// `T2[j, i]` at `j · buckets + i`.
    t2: Vec<u64>,
    /// `T3[j, i, t]` at `(j · buckets + i) · (k+1) + t`, plus `R` trailing
    /// *sink* cells (one per repetition) that absorb the unconditional
    /// increment of failed trials (see `insert`); the sinks are excluded
    /// from estimates and accounting. Per-repetition sinks keep
    /// consecutive failed trials from forming a store-forward dependency
    /// chain on a single cell.
    t3: Vec<u64>,
    /// Cached epoch of `T2[j, i]` (`EPOCH_NONE` below epoch 0),
    /// refreshed only when T2 increments.
    epochs: Vec<u8>,
    /// Integer epoch boundaries; see [`epoch_thresholds`].
    epoch_thresholds: Vec<u64>,
    /// Branchless T3 trial tables indexed by the cached epoch byte
    /// (`e ∈ [0, k]` or `EPOCH_NONE`): a fresh k-bit slice `w` accepts
    /// iff `(w & t3_mask[e]) + t3_add[e] == 0`. For an active epoch the
    /// mask keeps the low `k − e` bits (probability `2^{e−k}`, saturating
    /// at 1 when `e = k`); for `EPOCH_NONE` the add of 1 vetoes
    /// unconditionally. `t3_slot[e]` is the in-bounds T3 slot.
    t3_mask: Box<[u64; 256]>,
    t3_add: Box<[u64; 256]>,
    t3_slot: Box<[u8; 256]>,
    buckets: u64,
    /// `ε̂ = 2^{-k_eps}`, the power-of-two rounding of the T2 rate.
    k_eps: u32,
    /// Geometric-skip source of the per-repetition Bernoulli(ε̂) T2 coins.
    t2_skip: BitSkipSampler,
    /// Buffered k-bit slices for the T3 coins (legacy coin schedule
    /// only — the aligned schedule below draws whole words per sample;
    /// the field stays live for the Flat ablation and for snapshot
    /// format stability).
    bits: BitBudget,
    /// Fresh words drawn per sample under the aligned coin schedule
    /// (`⌈R / ⌊64/k⌋⌉` — `⌊64/k⌋` k-bit slices per word, remainders
    /// discarded). Derived from `(k_eps, R)` at construction/restore,
    /// never serialized.
    slice_words: u32,
    /// Whether the aligned coin schedule is in effect (accelerated mode
    /// with a representable layout). Decides between the fast and the
    /// legacy per-sample update on *both* the scalar and batch paths,
    /// so the two stay draw-for-draw identical.
    fast_coins: bool,
    mode: EpochMode,
    samples: u64,
    rng: StdRng,
    /// Materialized read-side results (the candidate estimates and the
    /// thresholded report), invalidated by every query-visible mutation:
    /// the sampled-insert path, `merge_from`, and (by construction,
    /// since restore builds a fresh value) snapshot restore. Unsampled
    /// inserts advance only sampler state, which no query reads, so they
    /// leave the cache warm. See `QueryCache` and DESIGN.md §8.
    cache: QueryCache<ReadCache>,
}

/// What a quiescent summary serves without touching T2/T3: the
/// median-of-repetitions *sampled-stream* estimate for every current T1
/// candidate, plus the finished report built from them.
#[derive(Debug, Clone)]
struct ReadCache {
    /// `(item, median sampled estimate)` for every T1 candidate —
    /// including the below-threshold ones, so cached point queries hit
    /// for any candidate, not only reported items.
    candidates: Vec<(u64, f64)>,
    /// The thresholded report (stream-scale counts).
    report: Report,
}

impl OptimalListHh {
    /// Creates the algorithm for a stream of advertised length `m` over
    /// universe `[0, universe)`, default constants, accelerated mode.
    pub fn new(params: HhParams, universe: u64, m: u64, seed: u64) -> Result<Self, ParamError> {
        Self::with_constants(
            params,
            universe,
            m,
            seed,
            Constants::default(),
            EpochMode::Accelerated,
        )
    }

    /// Full-control constructor (constants profile and epoch-mode
    /// ablation knob).
    pub fn with_constants(
        params: HhParams,
        universe: u64,
        m: u64,
        seed: u64,
        consts: Constants,
        mode: EpochMode,
    ) -> Result<Self, ParamError> {
        if universe == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        if m == 0 {
            return Err(ParamError::ZeroLength);
        }
        let eps = params.eps();
        let phi = params.phi();
        let mut rng = StdRng::seed_from_u64(seed);

        // ℓ = Θ(ε⁻²); constant from the profile (paper: 10⁵).
        let ell = (consts.a2_sample_factor / (eps * eps)).ceil();
        if !ell.is_finite() || ell < 1.0 {
            return Err(ParamError::BadConstants("algorithm-2 sample budget"));
        }
        // A non-positive or non-finite epoch scale would make the
        // threshold-table search below loop forever.
        let scale_ok = consts.a2_epoch_scale > 0.0 && consts.a2_epoch_scale.is_finite();
        if !scale_ok {
            return Err(ParamError::BadConstants("algorithm-2 epoch scale"));
        }
        let p_target = (2.0 * ell / m as f64).min(1.0);
        let sampler =
            BitSkipSampler::with_exponent(hh_sampling::bernoulli::pow2_exponent(p_target));
        let p = sampler.probability();

        // T1 capacity Θ(1/φ) over raw ids.
        let t1_cap = (consts.a2_t1_factor / phi).ceil() as usize;
        let t1 = MisraGries::new(t1_cap.max(1), hh_space::id_bits(universe));

        // Repetitions R = Θ(log(1/φ)), forced odd for a clean median.
        let mut r = ((consts.a2_rep_factor * (12.0 / phi).ln()).ceil() as usize)
            .max(consts.a2_rep_min)
            .max(1);
        if r % 2 == 0 {
            r += 1;
        }

        // Θ(1/ε) buckets, realized as the doubled power of two that keeps
        // the plain-universal multiply-shift within the per-bucket
        // collision budget of the analysis.
        let min_buckets = ((consts.a2_bucket_factor / eps).ceil() as u64).max(2);
        let k_eps = hh_sampling::bernoulli::pow2_exponent(eps);
        let family = MultiplyShift64Family::covering_universal(min_buckets);
        let hashes: Vec<MultiplyShift64Hash> = (0..r).map(|_| family.sample(&mut rng)).collect();
        let buckets = hashes[0].range();
        let cells = r * buckets as usize;

        let (t3_mask, t3_add, t3_slot) = trial_tables(k_eps);
        let (slice_words, layout_ok) = coin_layout(k_eps, r);

        Ok(Self {
            params,
            universe,
            sampler,
            p,
            t1,
            hashes,
            t2: vec![0; cells],
            // R extra trailing cells: the per-repetition failed-trial sinks.
            t3: vec![0; cells * (k_eps as usize + 1) + r],
            epochs: vec![EPOCH_NONE; cells],
            epoch_thresholds: epoch_thresholds(consts.a2_epoch_scale, k_eps),
            t3_mask,
            t3_add,
            t3_slot,
            buckets,
            k_eps,
            t2_skip: BitSkipSampler::with_exponent(k_eps),
            bits: BitBudget::new(),
            slice_words,
            fast_coins: layout_ok && mode == EpochMode::Accelerated,
            mode,
            samples: 0,
            rng,
            cache: QueryCache::new(),
        })
    }

    /// Creates a **seed-aligned** instance for merge-based pipelines:
    /// the `R` repetition hashes are drawn from `structure_seed` while
    /// the sampling coins (stream sampler, T2 skip, T3 bit budget) run
    /// off `stream_seed`. Instances sharing a structure seed agree
    /// bucket-for-bucket across repetitions — the precondition for
    /// [`MergeableSummary::merge_from`] — while distinct stream seeds
    /// keep their subsampling independent across shards.
    pub fn with_seeds(
        params: HhParams,
        universe: u64,
        m: u64,
        structure_seed: u64,
        stream_seed: u64,
    ) -> Result<Self, ParamError> {
        let mut a = Self::with_constants(
            params,
            universe,
            m,
            structure_seed,
            Constants::default(),
            EpochMode::Accelerated,
        )?;
        a.rng = StdRng::seed_from_u64(stream_seed);
        Ok(a)
    }

    /// The realized sampling probability.
    pub fn sampling_probability(&self) -> f64 {
        self.p
    }

    /// Number of sampled items (`s` in the paper).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of repetitions `R`.
    pub fn repetitions(&self) -> usize {
        self.hashes.len()
    }

    /// Number of hash buckets per repetition (`Θ(1/ε)`).
    pub fn buckets(&self) -> u64 {
        self.buckets
    }

    /// Problem parameters.
    pub fn params(&self) -> HhParams {
        self.params
    }

    /// Per-term space decomposition `(t1_bits, counting_bits,
    /// sampler_bits)` matching the three terms of the Theorem-2 bound:
    /// `φ⁻¹ log n` (candidate ids), `ε⁻¹ log φ⁻¹` (T2/T3 tables, hash
    /// seeds, and the coin state — T2 skip countdown plus the buffered
    /// T3 bit word — across repetitions), `log log m` (sampler). Used by
    /// the Table-1 experiment to validate each term against its own
    /// formula.
    pub fn component_bits(&self) -> (u64, u64, u64) {
        let counting: u64 = (0..self.hashes.len())
            .map(|j| self.rep_counting_bits(j) + self.hashes[j].model_bits())
            .sum::<u64>()
            + self.t2_skip.model_bits()
            + self.bits.model_bits();
        (self.t1.model_bits(), counting, self.sampler.model_bits())
    }

    /// Deferred accounting for repetition `j`: dense gamma bits for its
    /// T2 row plus sparse bits for its T3 row (§3.1.2: "not all the
    /// allowed cells will actually be used"). Recomputed from the raw
    /// tables on demand — the insert path never maintains bit sums.
    fn rep_counting_bits(&self, j: usize) -> u64 {
        let b = self.buckets as usize;
        let kp1 = self.k_eps as usize + 1;
        gamma_sum_bits(&self.t2[j * b..(j + 1) * b])
            + sparse_slice_bits(&self.t3[j * b * kp1..(j + 1) * b * kp1])
    }

    /// Epoch for a T2 value: the largest `t ≤ k` with
    /// `value ≥ thresholds[t]`, i.e. `⌊log₂(c · v²)⌋` clamped to `[0, k]`,
    /// or `None` below epoch 0. Exposed for the ablation harness (E12).
    pub fn epoch(&self, t2_value: u64) -> Option<u32> {
        let n = self
            .epoch_thresholds
            .partition_point(|&thr| thr <= t2_value);
        n.checked_sub(1).map(|e| e as u32)
    }

    /// The epoch byte for a T2 value `v`: the number of thresholds it
    /// clears, minus one (zero wraps to [`EPOCH_NONE`]), with a
    /// below-epoch-0 early out on the first threshold — the common case
    /// on realistic workloads. The single source of truth for both bulk
    /// recompute sites (snapshot restore and the merge fast path); must
    /// agree with the [`OptimalListHh::epoch`] table lookup, which the
    /// `bulk_epoch_recompute_matches_lookup` test pins.
    #[inline]
    fn epoch_of(v: u64, thresholds: &[u64]) -> u8 {
        if v < thresholds[0] {
            EPOCH_NONE
        } else {
            let cleared: u8 = thresholds.iter().map(|&t| u8::from(v >= t)).sum();
            cleared.wrapping_sub(1)
        }
    }

    /// Recomputes the whole epoch cache from a T2 table. Used by
    /// snapshot restore (the cache is derived state and is not
    /// serialized); the merge fast path applies [`OptimalListHh::epoch_of`]
    /// selectively instead.
    fn epochs_from_t2(t2: &[u64], thresholds: &[u64]) -> Vec<u8> {
        t2.iter().map(|&v| Self::epoch_of(v, thresholds)).collect()
    }

    /// Refreshes a cached epoch after its T2 counter reached `v`. The old
    /// value is a valid starting hint because epochs only grow, so the
    /// scan is O(1) amortized over a counter's lifetime.
    #[inline]
    fn advance_epoch(thresholds: &[u64], cached: u8, v: u64) -> u8 {
        let mut idx = match cached {
            EPOCH_NONE => 0,
            e => e as usize + 1,
        };
        while idx < thresholds.len() && v >= thresholds[idx] {
            idx += 1;
        }
        match idx {
            0 => EPOCH_NONE,
            _ => (idx - 1) as u8,
        }
    }

    /// Sampled-stream estimate for one `(repetition, bucket)` cell of
    /// the flat tables. All the `p_t = 2^{t−k}` rescalings are powers of
    /// two, so the whole sum `Σ_t T3[t]/p_t` is formed as **integer
    /// shifts** into a `u128` accumulator and converted to `f64` once —
    /// no `powi` calls, no per-epoch float rounding. (The `u128` keeps
    /// the `t << (k − t)` terms exact even at `k = 64`.)
    #[inline]
    fn cell_estimate(&self, cell: usize) -> f64 {
        let k = self.k_eps;
        // T2/ε̂ = T2 · 2^k, the flat-rate (and below-epoch-0 fallback)
        // estimate: when the stream is shorter than the paper's
        // m = poly(1/ε) regime a bucket may never reach epoch 0, leaving
        // T3 empty; the ε̂-rate tracker T2 is an unbiased
        // (higher-variance) estimate of the same count, and using it
        // beats reporting zero (implementation hardening, DESIGN.md).
        let flat = (self.t2[cell] as u128) << k;
        match self.mode {
            EpochMode::Flat => flat as f64,
            EpochMode::Accelerated => {
                let base = cell * (k as usize + 1);
                let mut acc: u128 = 0;
                for t in 0..=k {
                    // p_t = 2^{t−k}; divide by it ⇒ shift left by k − t.
                    acc += (self.t3[base + t as usize] as u128) << (k - t);
                }
                if acc > 0 {
                    acc as f64
                } else {
                    flat as f64
                }
            }
        }
    }

    /// Per-repetition estimate `f̂_j(x)` of the sampled-stream count of
    /// `x`'s bucket.
    fn estimate_rep(&self, j: usize, item: u64) -> f64 {
        self.cell_estimate(j * self.buckets as usize + self.hashes[j].hash(item) as usize)
    }

    /// Median-of-repetitions estimate of the sampled-stream count of
    /// `item`'s buckets. A stack scratch buffer and a linear-time
    /// selection replace the per-query allocation and full sort; queries
    /// stay `&self`-pure, so concurrent read-only reporting over a
    /// shared reference keeps compiling.
    fn estimate_sampled(&self, item: u64) -> f64 {
        let r = self.hashes.len();
        // R = Θ(log φ⁻¹): 64 covers every reachable configuration down
        // to φ ≈ 3·10⁻⁵; the heap fallback keeps smaller φ correct.
        let mut stack = [0f64; 64];
        let mut heap: Vec<f64>;
        let ests: &mut [f64] = if r <= 64 {
            &mut stack[..r]
        } else {
            heap = vec![0.0; r];
            &mut heap
        };
        for (j, e) in ests.iter_mut().enumerate() {
            *e = self.estimate_rep(j, item);
        }
        Self::median(ests)
    }

    /// Median by linear-time selection (total order via `total_cmp`; the
    /// estimates are never NaN — they are shifted integer counts).
    fn median(ests: &mut [f64]) -> f64 {
        let mid = ests.len() / 2;
        let (_, med, _) = ests.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
        *med
    }

    /// Builds the read cache: one **rep-major** pass over the flat
    /// tables filling an `R × |candidates|` estimate matrix, then a
    /// median per candidate and the `(φ − ε/2)s` threshold cut.
    ///
    /// Rep-major order matters on the cold path: repetition `j`'s hash
    /// and its T2/T3 rows are read for *all* candidates before moving to
    /// repetition `j + 1`, so each pass touches one contiguous row of
    /// the big tables instead of striding the full `R`-row span per
    /// item. Per-`(j, item)` arithmetic is `cell_estimate`,
    /// the same function the single-item path uses, so cached and cold
    /// answers are bit-identical.
    fn build_read_cache(&self) -> ReadCache {
        if self.samples == 0 {
            return ReadCache {
                candidates: Vec::new(),
                report: Report::default(),
            };
        }
        let items: Vec<u64> = self.t1.live_entries().map(|(item, _)| item).collect();
        let r = self.hashes.len();
        let b = self.buckets as usize;
        // Estimate matrix, item-major rows filled in rep-major order
        // (strided writes into a candidate-sized scratch, sequential
        // reads from the table rows — the tables are the big side).
        let mut ests = vec![0f64; items.len() * r];
        for (j, h) in self.hashes.iter().enumerate() {
            for (i, &item) in items.iter().enumerate() {
                ests[i * r + j] = self.cell_estimate(j * b + h.hash(item) as usize);
            }
        }
        let threshold = (self.params.phi() - self.params.eps() / 2.0) * self.samples as f64;
        let mut candidates = Vec::with_capacity(items.len());
        let mut reported = Vec::new();
        for (i, &item) in items.iter().enumerate() {
            let est = Self::median(&mut ests[i * r..(i + 1) * r]);
            candidates.push((item, est));
            if est >= threshold {
                reported.push(ItemEstimate {
                    item,
                    count: est / self.p,
                });
            }
        }
        ReadCache {
            candidates,
            report: Report::new(reported),
        }
    }

    /// The materialized read-side results, building them if a mutation
    /// (or construction) left the cache cold.
    fn read_cache(&self) -> &ReadCache {
        self.cache.get_or_build(|| self.build_read_cache())
    }
}

impl StreamSummary for OptimalListHh {
    #[inline]
    fn insert(&mut self, item: u64) {
        debug_assert!(item < self.universe, "item outside declared universe");
        // The common case — at realistic stream lengths `p ≪ 1` — is
        // "not sampled": one skip-counter decrement and out. Keeping the
        // heavy sampled body out of line lets this path inline into
        // callers' insert loops.
        if self.sampler.accept(&mut self.rng) {
            self.sampled_insert(item);
        }
    }

    /// Batch ingestion: the front-end sampler jumps directly to the next
    /// sampled position ([`BitSkipSampler::next_within`]), so an
    /// unsampled run costs one subtraction — its elements are never
    /// loaded — and all per-element work concentrates on the `s ≈ p·n`
    /// sampled items, which is the literal shape of the paper's
    /// O(1)-amortized argument. Each sampled item runs the same fused
    /// per-sample kernel as element-wise insertion (`apply_sample`
    /// under the aligned coin schedule), so same-seed batch runs are
    /// bit-identical to element-wise runs by construction; see
    /// DESIGN.md §10 for why the fused form beats a separately staged
    /// collect/apply split on L2-resident tables.
    fn insert_batch(&mut self, items: &[u64]) {
        debug_assert!(
            items.iter().all(|&x| x < self.universe),
            "item outside declared universe"
        );
        // Degenerate rate p = 1 (short advertised streams): every item
        // is sampled, so there are no unsampled runs to skip and the
        // `next_within` bookkeeping is pure overhead per element.
        // Delegate to the scalar loop — identical state and RNG draws
        // by the batch contract — so batching is never a pessimization.
        if self.sampler.exponent() == 0 {
            for &x in items {
                self.insert(x);
            }
            return;
        }
        self.skip_batch(items);
    }
}

impl OptimalListHh {
    /// Skip over unsampled runs, run the full per-sample update on each
    /// hit; state and RNG draws are identical to element-wise insertion
    /// by construction. (Deferring the T1 updates into one
    /// `MisraGries::insert_batch` call at the end commutes — T1 shares
    /// no state or coins with the tables — but measures ~4ms *slower*:
    /// inline, T1's probe chain hides under the RNG latency; extracted,
    /// it pays its full serial cost. Same shape as the staged-kernel
    /// rejection in DESIGN.md §10.)
    fn skip_batch(&mut self, items: &[u64]) {
        let mut i = 0usize;
        let n = items.len();
        while i < n {
            match self.sampler.next_within((n - i) as u64, &mut self.rng) {
                None => break,
                Some(off) => {
                    i += off as usize;
                    self.sampled_insert(items[i]);
                    i += 1;
                }
            }
        }
    }
}

/// Draws one sample's R-bit T2 coin mask from the geometric-skip
/// sampler: bit `j` set means repetition `j`'s Bernoulli(ε̂) coin came
/// up heads. At rate `2^{-k}` the common case is a single compare-and-
/// subtract covering all `R` trials — the per-trial `accept` chain this
/// replaces cost a data-dependent RNG round trip per repetition.
#[inline(always)]
fn draw_t2_mask(skip: &mut BitSkipSampler, rng: &mut StdRng, r: usize) -> u64 {
    let mut mask = 0u64;
    let mut off = 0usize;
    while off < r {
        match skip.next_within((r - off) as u64, rng) {
            None => break,
            Some(gap) => {
                off += gap as usize;
                mask |= 1u64 << off;
                off += 1;
            }
        }
    }
    mask
}

/// The shared per-sample T2/T3 update under the aligned coin schedule:
/// one pass over the `R` repetitions with every coin pre-drawn (`t2_mask`
/// bit `j` is repetition `j`'s T2 coin; the T3 slices sit `⌊64/k⌋` to a
/// word in `words`, in repetition order). Every caller — the scalar
/// fast path and, through it, the batch skip loop — computes this exact
/// update, so element-wise and batched ingestion are bit-identical by
/// construction.
///
/// Two restructurings keep the per-repetition trip lean:
///
/// - **T2 splits off.** Coins land at rate ε̂ = 2^{-k}, so almost every
///   repetition's T2 test is dead weight. A pop-bits loop over the mask
///   handles just the set bits, in ascending repetition order, *before*
///   the T3 pass — each repetition's trial reads only its own row, and
///   its own coin precedes it in both orders, so the final state
///   matches the interleaved form exactly.
/// - **Threshold-form trials.** A slice accepts at epoch `e` iff its
///   low `k − e` bits are zero, i.e. iff `e ≥ k − tz(slice)` with `tz`
///   clamped to `k` by a sentinel bit. One `tzcnt` and a signed byte
///   compare replace the mask/veto table loads, and `EPOCH_NONE = 0xFF`
///   read as `i8` is `−1`, below every threshold — the below-epoch-0
///   veto costs nothing. Slices are consumed by shifting the current
///   word in a register (`w >>= k`), so the pass never re-derives a
///   (word, shift) source pair. The accept decision itself is a
///   conditional move: the outcome tracks the data, and a branch there
///   mispredicts its way to dominating the update cost.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn apply_sample(
    hashes: &[MultiplyShift64Hash],
    t2: &mut [u64],
    t3: &mut [u64],
    epochs: &mut [u8],
    thresholds: &[u64],
    b: usize,
    kp1: usize,
    item: u64,
    t2_mask: u64,
    words: &[u64],
) {
    let k = kp1 as u32 - 1;
    let kmask = (1u64 << k) - 1;
    let top = 1u64 << k;
    let per = (64 / k) as usize;
    let r = hashes.len();
    let sink_base = t3.len() - r;
    // T2 pass: only the heads, ascending repetition order.
    let mut m = t2_mask;
    while m != 0 {
        let j = m.trailing_zeros() as usize;
        m &= m - 1;
        let cell = j * b + hashes[j].hash(item) as usize;
        let v = t2[cell] + 1;
        t2[cell] = v;
        epochs[cell] = OptimalListHh::advance_epoch(thresholds, epochs[cell], v);
    }
    // T3 pass: trial at p_t = 2^{t−k} for the cached epoch t; accepted
    // trials land in slot `e`, failures in the repetition's sink cell.
    let mut j = 0usize;
    'words: for &word in words {
        let mut w = word;
        for _ in 0..per {
            if j == r {
                break 'words;
            }
            let cell = j * b + hashes[j].hash(item) as usize;
            let s = w & kmask | top;
            w >>= k;
            let thr = k as i32 - s.trailing_zeros() as i32;
            let e = epochs[cell];
            let accept = i32::from(e as i8) >= thr;
            let idx = if accept {
                cell * kp1 + e as usize
            } else {
                sink_base + j
            };
            t3[idx] += 1;
            j += 1;
        }
    }
}

impl OptimalListHh {
    /// Full per-sample update: T1 candidate tracking plus the R-repetition
    /// T2/T3 pass.
    #[inline(never)]
    fn sampled_insert(&mut self, item: u64) {
        // Every sampled item is query-visible (it moves `samples`, T1,
        // and the tables); unsampled items never reach this function, so
        // they keep the read cache warm.
        self.cache.invalidate();
        self.samples += 1;
        self.t1.insert(item);
        if self.fast_coins {
            self.sampled_insert_fast(item);
        } else {
            self.sampled_insert_legacy(item);
        }
    }

    /// Scalar fast path under the aligned coin schedule: draw the
    /// sample's whole coin block up front — the T2 mask, then `W` fresh
    /// slice words — and replay it through the shared [`apply_sample`]
    /// body. Front-loading the draws takes the serial RNG chain off the
    /// table pass entirely: the old interleaved order re-entered the
    /// generator between every repetition, and each re-entry was a
    /// data-dependent round trip the out-of-order window could not hide.
    fn sampled_insert_fast(&mut self, item: u64) {
        let b = self.buckets as usize;
        let kp1 = self.k_eps as usize + 1;
        let r = self.hashes.len();
        let wn = self.slice_words as usize;
        let Self {
            hashes,
            t2,
            t3,
            epochs,
            epoch_thresholds,
            t2_skip,
            rng,
            ..
        } = self;
        let mut skip = *t2_skip;
        let t2_mask = draw_t2_mask(&mut skip, rng, r);
        *t2_skip = skip;
        let mut words = [0u64; MAX_COIN_WORDS];
        for w in words[..wn].iter_mut() {
            *w = rng.next_u64();
        }
        apply_sample(
            hashes,
            t2,
            t3,
            epochs,
            epoch_thresholds,
            b,
            kp1,
            item,
            t2_mask,
            &words[..wn],
        );
    }

    /// Legacy per-sample update (Flat ablation and unrepresentable coin
    /// layouts): per-repetition interleaved draws — T2 `accept`, then a
    /// buffered k-bit T3 slice — against the same tables.
    fn sampled_insert_legacy(&mut self, item: u64) {
        let b = self.buckets as usize;
        let k = self.k_eps;
        let kp1 = k as usize + 1;
        let accelerated = self.mode == EpochMode::Accelerated;
        // Split the borrows so each table is its own (non-aliasing) slice
        // and keep the two sampler states in registers across the loop:
        // through `&mut self` every store could alias the next
        // repetition's loads, which serializes the otherwise-independent
        // per-repetition chains.
        let Self {
            hashes,
            t2,
            t3,
            epochs,
            epoch_thresholds,
            t3_mask,
            t3_add,
            t3_slot,
            t2_skip,
            bits,
            rng,
            ..
        } = self;
        let thresholds = epoch_thresholds.as_slice();
        let sink_base = t3.len() - hashes.len();
        let mut skip = *t2_skip;
        let mut buf = *bits;
        for (j, h) in hashes.iter().enumerate() {
            let cell = j * b + h.hash(item) as usize;
            // T2: increment with probability ε̂ = 2^{-k}; the geometric
            // skip makes the (1 − ε̂) common case one decrement.
            if skip.accept(rng) {
                let v = t2[cell] + 1;
                t2[cell] = v;
                epochs[cell] = Self::advance_epoch(thresholds, epochs[cell], v);
            }
            if !accelerated {
                continue;
            }
            // T3 trial at p_t = 2^{t−k} for the cached epoch t. A fixed
            // k-bit slice is drawn either way (failed and below-epoch-0
            // trials just discard it), the mask/veto tables turn the
            // epoch byte into an accept bit (a conditional move, not a
            // branch), and failed trials bounce their increment into the
            // per-repetition sink cell.
            let slice = buf.take(k, rng);
            let e = epochs[cell] as usize;
            let accept = (slice & t3_mask[e]).wrapping_add(t3_add[e]) == 0;
            let idx = if accept {
                cell * kp1 + t3_slot[e] as usize
            } else {
                sink_base + j
            };
            t3[idx] += 1;
        }
        *t2_skip = skip;
        *bits = buf;
    }
}

impl HeavyHitters for OptimalListHh {
    /// The (ε, φ)-heavy-hitters report. After a quiescent period this is
    /// a cache hit — one clone of the materialized report — instead of a
    /// T2/T3 rescan; the first query after a mutation rebuilds the cache
    /// with the rep-major batched candidate scan.
    fn report(&self) -> Report {
        self.read_cache().report.clone()
    }
}

impl crate::traits::FrequencyEstimator for OptimalListHh {
    /// Point query: the median-of-repetitions bucket estimate scaled back
    /// by the sampling rate. Unlike the report path this works for any
    /// item, with accuracy `±(εm + collision mass of the item's buckets)`.
    /// When the read cache is warm and `item` is a T1 candidate, the
    /// answer is served from the cached candidate estimates (which hold
    /// exactly the value the cold scan would produce); other items — or
    /// a cold cache — fall through to the direct scan without building
    /// the cache, since a single point query costs less than a full
    /// candidate pass.
    fn estimate(&self, item: u64) -> f64 {
        if let Some(cache) = self.cache.get() {
            if let Some(&(_, est)) = cache.candidates.iter().find(|&&(i, _)| i == item) {
                return est / self.p;
            }
        }
        self.estimate_sampled(item) / self.p
    }
}

impl SpaceUsage for OptimalListHh {
    fn model_bits(&self) -> u64 {
        let (t1, counting, sampler) = self.component_bits();
        t1 + counting + sampler
    }

    fn heap_bytes(&self) -> usize {
        self.t1.heap_bytes()
            + self.t2.capacity() * 8
            + self.t3.capacity() * 8
            + self.epochs.capacity()
            + self.epoch_thresholds.capacity() * 8
            + self.hashes.capacity() * core::mem::size_of::<MultiplyShift64Hash>()
            // The boxed 256-entry trial tables.
            + 256 * (8 + 8 + 1)
    }
}

/// Snapshot format version tag. v3 appends the trailing FNV-1a/64
/// integrity checksum; v2 re-encoded the big arrays through the
/// codec's bulk byte channel: T2/T3 as varint blocks, the epoch cache
/// as raw bytes, the (monotone) threshold table delta-coded.
const A2_TAG: &str = "hh.algo2.v3";
/// Previous (checksum-less) format, still accepted for restore.
const A2_TAG_V2: &str = "hh.algo2.v2";

/// Full-state snapshot: parameters, every hash seed, the T1/T2/T3
/// tables with their epoch caches, and the three randomness sources
/// (front-end sampler, T2 skip, T3 bit budget, backing RNG). The
/// branchless trial tables and the Lemire constants are derived from
/// `ε̂` at restore time, not stored — and neither is the read cache,
/// which a restored instance rebuilds on first query.
///
/// The counter tables dominate the payload, so they go through the
/// varint/delta slice helpers ([`snapshot::write_u64_slice`] and
/// friends) as preallocated byte blocks instead of one codec call per
/// cell; the `reserve` hint up front sizes the output buffer once so
/// the whole snapshot is written into a single allocation.
impl Serialize for OptimalListHh {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        // Preallocate: ~1 varint byte per counter cell plus a
        // fixed-field allowance (the epoch cache is not on the wire).
        serializer.reserve(self.t2.len() + self.t3.len() + 512);
        self.params.serialize(&mut serializer)?;
        serializer.write_u64(self.universe)?;
        self.sampler.serialize(&mut serializer)?;
        self.t1.serialize(&mut serializer)?;
        self.hashes.serialize(&mut serializer)?;
        snapshot::write_u64_slice(&self.t2, &mut serializer)?;
        snapshot::write_u64_slice(&self.t3, &mut serializer)?;
        snapshot::write_u64_slice_delta(&self.epoch_thresholds, &mut serializer)?;
        serializer.write_u64(self.k_eps as u64)?;
        self.t2_skip.serialize(&mut serializer)?;
        self.bits.serialize(&mut serializer)?;
        serializer.write_bool(self.mode == EpochMode::Accelerated)?;
        serializer.write_u64(self.samples)?;
        snapshot::write_rng_state(self.rng.to_state(), &mut serializer)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for OptimalListHh {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let params = HhParams::deserialize(&mut deserializer)?;
        let universe = deserializer.read_u64()?;
        if universe == 0 {
            return Err(serde::de::Error::invariant("empty universe"));
        }
        let sampler = BitSkipSampler::deserialize(&mut deserializer)?;
        let t1 = MisraGries::deserialize(&mut deserializer)?;
        let hashes: Vec<MultiplyShift64Hash> = Vec::deserialize(&mut deserializer)?;
        let t2: Vec<u64> = snapshot::read_u64_slice(&mut deserializer)?;
        let t3: Vec<u64> = snapshot::read_u64_slice(&mut deserializer)?;
        let epoch_thresholds: Vec<u64> = snapshot::read_u64_slice_delta(&mut deserializer)?;
        let k_eps = deserializer.read_u64()?;
        if k_eps > 64 {
            return Err(serde::de::Error::invariant("epsilon exponent above 64"));
        }
        let k_eps = k_eps as u32;
        let t2_skip = BitSkipSampler::deserialize(&mut deserializer)?;
        let bits = BitBudget::deserialize(&mut deserializer)?;
        let accelerated = deserializer.read_bool()?;
        let samples = deserializer.read_u64()?;
        let rng = StdRng::from_state(snapshot::read_rng_state(&mut deserializer)?);

        let r = hashes.len();
        if r == 0 {
            return Err(serde::de::Error::invariant("no repetitions"));
        }
        let buckets = hashes[0].range();
        if hashes.iter().any(|h| h.range() != buckets) {
            return Err(serde::de::Error::invariant("repetition ranges disagree"));
        }
        // Shape arithmetic over wire-supplied dimensions must be
        // checked: a forged `r`/`range` pair can overflow `usize`, and
        // under overflow-checks builds an unchecked multiply would
        // panic instead of returning `Err`.
        let shape_err = || serde::de::Error::invariant("table shapes inconsistent");
        let cells = usize::try_from(buckets)
            .ok()
            .and_then(|b| r.checked_mul(b))
            .ok_or_else(shape_err)?;
        let t3_cells = cells
            .checked_mul(k_eps as usize + 1)
            .and_then(|c| c.checked_add(r))
            .ok_or_else(shape_err)?;
        if t2.len() != cells || t3.len() != t3_cells {
            return Err(shape_err());
        }
        if epoch_thresholds.len() != k_eps as usize + 1 {
            return Err(serde::de::Error::invariant(
                "epoch table shape inconsistent",
            ));
        }
        // The epoch cache is derived state (the threshold-table lookup
        // of each T2 value, which `advance_epoch` maintains exactly):
        // recomputing it here instead of trusting the wire keeps the
        // snapshot smaller and guarantees the T3-row invariant the
        // merge fast path relies on even for hand-crafted buffers.
        let epochs = Self::epochs_from_t2(&t2, &epoch_thresholds);
        let (t3_mask, t3_add, t3_slot) = trial_tables(k_eps);
        let (slice_words, layout_ok) = coin_layout(k_eps, r);
        Ok(Self {
            params,
            universe,
            sampler,
            p: sampler.probability(),
            t1,
            hashes,
            t2,
            t3,
            epochs,
            epoch_thresholds,
            t3_mask,
            t3_add,
            t3_slot,
            buckets,
            k_eps,
            t2_skip,
            bits,
            slice_words,
            fast_coins: layout_ok && accelerated,
            mode: if accelerated {
                EpochMode::Accelerated
            } else {
                EpochMode::Flat
            },
            samples,
            rng,
            cache: QueryCache::new(),
        })
    }
}

impl MergeableSummary for OptimalListHh {
    /// The seed-aligned repetition-wise merge (BDW Algorithm 2): when
    /// both instances drew the same `h_j` per repetition, bucket `i` of
    /// repetition `j` counts the same item set in both, so `T2` and
    /// `T3` add cell-wise; each `T3[i, j, t]` remains a rate-`p_t`
    /// subsample of its bucket's arrivals, so the unbiased estimator
    /// `Σ_t T3[i,j,t]/p_t` and the Claim-2 variance argument carry over
    /// with the combined sample count. The candidate table merges as
    /// Misra–Gries, the epoch caches are recomputed outright from the
    /// merged `T2` values, and sample counts add.
    ///
    /// The pass is built for the read side's cadence (window rotations
    /// and combiner trees issue merges constantly): `T2` adds and the
    /// epoch recompute run fused over contiguous slices with a
    /// below-epoch-0 early out, and the `T3` sweep consults *other*'s
    /// epoch bytes to add only the rows that can carry mass — a bucket
    /// below epoch 0 has an identically zero row, which on realistic
    /// workloads is nearly all of them.
    ///
    /// # Example
    ///
    /// ```
    /// use hh_core::{HeavyHitters, HhParams, MergeableSummary, OptimalListHh, StreamSummary};
    ///
    /// let params = HhParams::new(0.05, 0.2).unwrap();
    /// let m = 200_000u64;
    /// let mut a = OptimalListHh::with_seeds(params, 1 << 30, m, 7, 1).unwrap();
    /// let mut b = OptimalListHh::with_seeds(params, 1 << 30, m, 7, 2).unwrap();
    /// for i in 0..m {
    ///     let x = if i % 2 == 0 { 42 } else { i };
    ///     if i < m / 2 { a.insert(x) } else { b.insert(x) }
    /// }
    /// a.merge_from(&b).unwrap(); // halves combine into the full stream
    /// assert!(a.report().contains(42));
    /// ```
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        check_compatible(&self.params, &other.params, "parameters")?;
        check_compatible(&self.universe, &other.universe, "universes")?;
        check_compatible(&self.hashes, &other.hashes, "repetition hash seeds")?;
        check_compatible(&self.k_eps, &other.k_eps, "epsilon exponents")?;
        check_compatible(&self.p, &other.p, "sampling rates")?;
        check_compatible(
            &self.epoch_thresholds,
            &other.epoch_thresholds,
            "epoch thresholds",
        )?;
        check_compatible(&self.mode, &other.mode, "epoch modes")?;
        self.cache.invalidate();
        self.t1.merge_from(&other.t1)?;
        // Counter accumulation saturates throughout this merge: counts
        // near u64::MAX cannot occur for honestly ingested streams, but
        // a restored snapshot may carry them, and the merge must stay
        // total (no overflow panic) rather than trust them.
        self.samples = self.samples.saturating_add(other.samples);
        // T2 and the epoch cache, processed in 8-cell blocks. Per
        // block: add the two T2 slices cell-wise while folding the
        // running max (fixed-trip loops over fixed-width subslices, so
        // the compiler unrolls and vectorizes them), then touch the
        // epoch bytes **only when the block's max clears epoch 0**. The
        // skip is sound because epochs are exact for the pre-merge
        // values and monotone: a merged value below `thresholds[0]`
        // forces both inputs below it, so the cached byte is already
        // `EPOCH_NONE`. On realistic workloads nearly every bucket sits
        // below epoch 0, which turns the data-dependent per-cell
        // `advance_epoch` walk this replaces into one predictable
        // branch per block; live blocks recompute outright through
        // [`OptimalListHh::epoch_of`] (shared with snapshot restore).
        let thresholds = self.epoch_thresholds.as_slice();
        let thr0 = thresholds[0];
        let blocks = self.t2.len() / 8;
        for g in 0..blocks {
            let base = g * 8;
            let dst = &mut self.t2[base..base + 8];
            let src = &other.t2[base..base + 8];
            let mut max = 0u64;
            for (c, &o) in dst.iter_mut().zip(src) {
                let v = c.saturating_add(o);
                *c = v;
                max = max.max(v);
            }
            if max >= thr0 {
                for (e, &v) in self.epochs[base..base + 8].iter_mut().zip(dst.iter()) {
                    *e = Self::epoch_of(v, thresholds);
                }
            }
        }
        for cell in blocks * 8..self.t2.len() {
            self.t2[cell] = self.t2[cell].saturating_add(other.t2[cell]);
            self.epochs[cell] = Self::epoch_of(self.t2[cell], thresholds);
        }
        // T3 adds cell-wise, but only for rows that can carry mass: a
        // trial records into `T3[cell, ·]` only while the cell's cached
        // epoch is live, and epochs never regress, so
        // `other.epochs[cell] == EPOCH_NONE` proves other's whole
        // `(k+1)`-slot row is zero. Other's epoch bytes are scanned 8
        // at a time — an all-dead group is one `u64 == MAX` test (the
        // sentinel is `0xFF`), the same SWAR shape as the sampler's
        // zero-chunk scan — so the sweep costs 1/(8(k+1)) of the row
        // table plus the touched rows, instead of an element-by-element
        // pass over both full tables.
        let kp1 = self.k_eps as usize + 1;
        let groups = other.epochs.len() / 8 * 8;
        for (g, chunk) in other.epochs[..groups].chunks_exact(8).enumerate() {
            let packed = u64::from_le_bytes(chunk.try_into().expect("group width"));
            if packed == u64::MAX {
                continue;
            }
            for (i, _) in chunk.iter().enumerate().filter(|&(_, &e)| e != EPOCH_NONE) {
                let base = (g * 8 + i) * kp1;
                for (c, &o) in self.t3[base..base + kp1]
                    .iter_mut()
                    .zip(&other.t3[base..base + kp1])
                {
                    *c = c.saturating_add(o);
                }
            }
        }
        for (cell, _) in other.epochs[groups..]
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e != EPOCH_NONE)
        {
            let base = (groups + cell) * kp1;
            for (c, &o) in self.t3[base..base + kp1]
                .iter_mut()
                .zip(&other.t3[base..base + kp1])
            {
                *c = c.saturating_add(o);
            }
        }
        // The trailing per-repetition sink cells absorb mass regardless
        // of any epoch, so they always add — which keeps them what they
        // are, discarded trials.
        let sink = self.t3.len() - self.hashes.len();
        for (c, &o) in self.t3[sink..].iter_mut().zip(&other.t3[sink..]) {
            *c = c.saturating_add(o);
        }
        Ok(())
    }

    fn to_bytes(&self) -> bytes::Bytes {
        snapshot::encode(A2_TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(A2_TAG, &[A2_TAG_V2], bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_streams::{arrange, OrderPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Timing probe for the fused fast path; run with
    /// `cargo test --release -p hh-core kernel_probe -- --ignored --nocapture`.
    #[test]
    #[ignore = "manual perf probe, not a correctness test"]
    fn kernel_probe() {
        use std::time::Instant;
        let m: u64 = 1 << 21;
        let params = HhParams::new(0.05, 0.2).unwrap();
        let mut zipf_rng = StdRng::seed_from_u64(7);
        let n_items: u64 = 1 << 32;
        // The batch_update_time bench's exact stream.
        let mut gen = hh_streams::ZipfGenerator::new(n_items, 1.2).scrambled(&mut zipf_rng);
        let stream: Vec<u64> = hh_streams::collect_stream(&mut gen, m as usize, &mut zipf_rng);
        let mut a = OptimalListHh::new(params, n_items, m, 42).unwrap();
        eprintln!(
            "R={} buckets={} k_eps={} sampler_k={} p={}",
            a.repetitions(),
            a.buckets,
            a.k_eps,
            a.sampler.exponent(),
            a.p
        );
        let t0 = Instant::now();
        for chunk in stream.chunks(16384) {
            a.insert_batch(chunk);
        }
        let full = t0.elapsed();
        let r = a.hashes.len();
        let sinks: u64 = a.t3[a.t3.len() - r..].iter().sum();
        let accepts: u64 = a.t3[..a.t3.len() - r].iter().sum();
        let coins: u64 = a.t2.iter().sum();
        eprintln!(
            "full={:?} samples={} pairs={} accepts={} sinks={} t2coins={}",
            full,
            a.samples(),
            a.samples() * r as u64,
            accepts,
            sinks,
            coins
        );
    }

    fn planted_stream(m: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        let mut counts: Vec<(u64, u64)> = heavy
            .iter()
            .map(|&(id, frac)| (id, (frac * m as f64).round() as u64))
            .collect();
        let used: u64 = counts.iter().map(|&(_, c)| c).sum();
        let fill = m - used;
        let light_ids = 4096u64;
        for j in 0..light_ids {
            let c = fill / light_ids + u64::from(j < fill % light_ids);
            if c > 0 {
                counts.push((1_000_000 + j, c));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        arrange(&counts, OrderPolicy::Shuffled, &mut rng)
    }

    fn run(
        m: u64,
        heavy: &[(u64, f64)],
        eps: f64,
        phi: f64,
        seed: u64,
        mode: EpochMode,
    ) -> (OptimalListHh, Vec<u64>) {
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        let stream = planted_stream(m, heavy, seed);
        let mut a = OptimalListHh::with_constants(
            params,
            1 << 40,
            m,
            seed ^ 0xABCD,
            Constants::default(),
            mode,
        )
        .unwrap();
        a.insert_all(&stream);
        (a, stream)
    }

    #[test]
    fn finds_planted_heavy_hitters_with_estimates() {
        let m = 600_000u64;
        let heavy = [(7u64, 0.30), (8, 0.16), (9, 0.12)];
        let (a, _) = run(m, &heavy, 0.05, 0.1, 1, EpochMode::Accelerated);
        let r = a.report();
        for (item, frac) in heavy {
            assert!(r.contains(item), "missing heavy item {item}");
            let est = r.estimate(item).unwrap();
            let truth = frac * m as f64;
            assert!(
                (est - truth).abs() <= 0.05 * m as f64,
                "item {item}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn rejects_items_below_phi_minus_eps() {
        let m = 600_000u64;
        // 55 sits at (φ−ε)m = 5%: must not be reported.
        let (a, _) = run(
            m,
            &[(7, 0.30), (55, 0.05)],
            0.05,
            0.1,
            2,
            EpochMode::Accelerated,
        );
        let r = a.report();
        assert!(r.contains(7));
        assert!(!r.contains(55), "item at (phi-eps)m must be suppressed");
    }

    #[test]
    fn epoch_boundaries_move_with_t2() {
        let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
        let a = OptimalListHh::new(params, 1 << 20, 1 << 20, 3).unwrap();
        assert_eq!(a.epoch(0), None);
        // Below the epoch-0 threshold T2² · c < 1.
        let thresh = (1.0 / Constants::default().a2_epoch_scale).sqrt();
        assert_eq!(a.epoch((thresh * 0.5) as u64), None);
        // Above it, epochs increase and clamp at k_eps.
        let t_lo = a.epoch((thresh * 1.5) as u64).unwrap();
        let t_hi = a.epoch((thresh * 100.0) as u64).unwrap();
        assert!(t_hi > t_lo);
        assert!(t_hi <= a.k_eps);
        assert_eq!(a.epoch(u32::MAX as u64), Some(a.k_eps));
    }

    #[test]
    fn epoch_table_matches_reference_formula() {
        // The integer threshold table must agree with the float formula
        // it replaced, including exactly at every boundary.
        let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
        let a = OptimalListHh::new(params, 1 << 20, 1 << 20, 3).unwrap();
        let scale = Constants::default().a2_epoch_scale;
        let reference = |v: u64| raw_epoch(v, scale).map(|e| e.min(a.k_eps));
        for v in 0..5000u64 {
            assert_eq!(a.epoch(v), reference(v), "v={v}");
        }
        for &thr in &a.epoch_thresholds {
            for v in [thr.saturating_sub(1), thr, thr + 1] {
                assert_eq!(a.epoch(v), reference(v), "boundary v={v}");
            }
        }
    }

    #[test]
    fn cached_epoch_advance_matches_lookup() {
        let params = HhParams::with_delta(0.02, 0.1, 0.1).unwrap();
        let a = OptimalListHh::new(params, 1 << 20, 1 << 20, 5).unwrap();
        let mut cached = EPOCH_NONE;
        for v in 1..20_000u64 {
            cached = OptimalListHh::advance_epoch(&a.epoch_thresholds, cached, v);
            let expect = match a.epoch(v) {
                None => EPOCH_NONE,
                Some(e) => e as u8,
            };
            assert_eq!(cached, expect, "v={v}");
        }
    }

    #[test]
    fn repetitions_are_odd_and_scale_with_phi() {
        let p1 = HhParams::with_delta(0.01, 0.5, 0.1).unwrap();
        let p2 = HhParams::with_delta(0.01, 0.02, 0.1).unwrap();
        let a1 = OptimalListHh::new(p1, 1 << 20, 1 << 20, 0).unwrap();
        let a2 = OptimalListHh::new(p2, 1 << 20, 1 << 20, 0).unwrap();
        assert_eq!(a1.repetitions() % 2, 1);
        assert_eq!(a2.repetitions() % 2, 1);
        assert!(a2.repetitions() > a1.repetitions());
    }

    #[test]
    fn flat_mode_still_counts_but_without_t3() {
        let m = 300_000u64;
        let (a, _) = run(m, &[(7, 0.40)], 0.05, 0.15, 4, EpochMode::Flat);
        // T3 untouched in flat mode.
        assert!(a.t3.iter().all(|&c| c == 0));
        let r = a.report();
        assert!(r.contains(7), "flat mode should still find a 40% item");
    }

    #[test]
    fn per_repetition_tables_scale_as_inverse_eps() {
        // Theorem 2's counting core: each repetition's T2+T3 cost is
        // Θ(ε⁻¹) bits with an ε-independent constant (cell values stay
        // Θ(1) in expectation because s ~ ε⁻², the subsample rate is ~ε
        // and there are ~ε⁻¹ buckets). Check that bits·ε is flat across a
        // 4x change in ε — this is what separates the optimal bound
        // ε⁻¹·log φ⁻¹ from Algorithm 1's ε⁻¹·log ε⁻¹.
        // Small sample budget keeps the test fast without changing shape.
        let consts = Constants {
            a2_sample_factor: 500.0,
            ..Constants::default()
        };
        let per_rep_bits = |eps: f64, seed: u64| -> f64 {
            let m = 1 << 21;
            let params = HhParams::with_delta(eps, 0.25, 0.1).unwrap();
            let stream = planted_stream(m, &[(1u64, 0.3)], seed);
            let mut a = OptimalListHh::with_constants(
                params,
                1 << 40,
                m,
                seed,
                consts,
                EpochMode::Accelerated,
            )
            .unwrap();
            a.insert_all(&stream);
            (0..a.repetitions())
                .map(|j| a.rep_counting_bits(j))
                .sum::<u64>() as f64
                / a.repetitions() as f64
        };
        let coarse = per_rep_bits(0.1, 5);
        let fine = per_rep_bits(0.025, 6);
        let ratio = (fine * 0.025) / (coarse * 0.1);
        assert!(
            (0.5..2.0).contains(&ratio),
            "bits*eps not flat: coarse {coarse}, fine {fine}, ratio {ratio}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = 100_000u64;
        let heavy = [(3u64, 0.5)];
        let (a, _) = run(m, &heavy, 0.1, 0.3, 9, EpochMode::Accelerated);
        let (b, _) = run(m, &heavy, 0.1, 0.3, 9, EpochMode::Accelerated);
        assert_eq!(a.report().entries(), b.report().entries());
    }

    #[test]
    fn batch_insert_is_bit_identical_to_element_wise() {
        let m = 200_000u64;
        let params = HhParams::with_delta(0.05, 0.15, 0.1).unwrap();
        let stream = planted_stream(m, &[(7, 0.30), (8, 0.18)], 21);
        let mut a = OptimalListHh::new(params, 1 << 40, m, 6).unwrap();
        for &x in &stream {
            a.insert(x);
        }
        let mut b = OptimalListHh::new(params, 1 << 40, m, 6).unwrap();
        for chunk in stream.chunks(4099) {
            b.insert_batch(chunk);
        }
        assert_eq!(a.report().entries(), b.report().entries());
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.component_bits(), b.component_bits());
    }

    #[test]
    fn saturated_rate_batch_delegates_and_stays_bit_identical() {
        // A short advertised stream saturates p = 1 (exponent 0): the
        // batch path must delegate to the scalar loop and still match
        // element-wise insertion exactly.
        let m = 2_000u64;
        let params = HhParams::with_delta(0.1, 0.3, 0.1).unwrap();
        let mut a = OptimalListHh::new(params, 1 << 20, m, 11).unwrap();
        assert_eq!(a.sampling_probability(), 1.0, "test needs the p = 1 regime");
        let stream: Vec<u64> = (0..m).map(|i| if i % 3 == 0 { 5 } else { i }).collect();
        let mut b = OptimalListHh::new(params, 1 << 20, m, 11).unwrap();
        for &x in &stream {
            a.insert(x);
        }
        for chunk in stream.chunks(311) {
            b.insert_batch(chunk);
        }
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.t2, b.t2);
        assert_eq!(a.t3, b.t3);
        assert_eq!(a.report().entries(), b.report().entries());
    }

    #[test]
    fn point_queries_track_heavy_items() {
        use crate::traits::FrequencyEstimator;
        let m = 400_000u64;
        let heavy = [(7u64, 0.35), (8, 0.2)];
        let (a, _) = run(m, &heavy, 0.05, 0.15, 31, EpochMode::Accelerated);
        for (item, frac) in heavy {
            let est = a.estimate(item);
            assert!(
                (est - frac * m as f64).abs() <= 0.05 * m as f64,
                "item {item}: est {est}"
            );
        }
    }

    #[test]
    fn degenerate_epoch_scale_is_rejected_not_hung() {
        // A non-positive or NaN scale would make the threshold search
        // loop forever; construction must error instead.
        let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let consts = Constants {
                a2_epoch_scale: bad,
                ..Constants::default()
            };
            let r = OptimalListHh::with_constants(
                params,
                1 << 20,
                1 << 20,
                0,
                consts,
                EpochMode::Accelerated,
            );
            assert!(r.is_err(), "scale {bad} must be rejected");
        }
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let params = HhParams::new(0.1, 0.3).unwrap();
        let a = OptimalListHh::new(params, 100, 1000, 0).unwrap();
        assert!(a.report().is_empty());
    }

    #[test]
    fn merged_partitions_find_the_heavy_hitters() {
        let m = 600_000u64;
        let params = HhParams::with_delta(0.05, 0.1, 0.1).unwrap();
        let stream = planted_stream(m, &[(7, 0.30), (8, 0.16), (55, 0.05)], 41);
        let mut parts: Vec<OptimalListHh> = (0..4)
            .map(|j| OptimalListHh::with_seeds(params, 1 << 40, m, 13, 500 + j).unwrap())
            .collect();
        for (i, chunk) in stream.chunks(1024).enumerate() {
            parts[i % 4].insert_batch(chunk);
        }
        let mut merged = parts.remove(0);
        let first_samples = merged.samples();
        for p in &parts {
            merged.merge_from(p).unwrap();
        }
        assert_eq!(
            merged.samples(),
            first_samples + parts.iter().map(|p| p.samples()).sum::<u64>()
        );
        let r = merged.report();
        assert!(
            r.contains(7) && r.contains(8),
            "merged report misses heavy items"
        );
        assert!(!r.contains(55), "(phi-eps)-light item must stay suppressed");
        for (item, frac) in [(7u64, 0.30), (8, 0.16)] {
            let est = r.estimate(item).unwrap();
            assert!(
                (est - frac * m as f64).abs() <= 0.05 * m as f64,
                "item {item}: est {est}"
            );
        }
    }

    #[test]
    fn merge_restores_epoch_cache_invariant() {
        // After a merge, every cached epoch byte must equal the table
        // lookup for the merged T2 value.
        let m = 300_000u64;
        let params = HhParams::with_delta(0.05, 0.15, 0.1).unwrap();
        let mut a = OptimalListHh::with_seeds(params, 1 << 40, m, 3, 30).unwrap();
        let mut b = OptimalListHh::with_seeds(params, 1 << 40, m, 3, 31).unwrap();
        a.insert_batch(&planted_stream(m / 2, &[(7, 0.4)], 1));
        b.insert_batch(&planted_stream(m / 2, &[(7, 0.4)], 2));
        a.merge_from(&b).unwrap();
        for (cell, &v) in a.t2.iter().enumerate() {
            let expect = match a.epoch(v) {
                None => EPOCH_NONE,
                Some(e) => e as u8,
            };
            assert_eq!(a.epochs[cell], expect, "cell {cell} cache stale");
        }
    }

    #[test]
    fn bulk_epoch_recompute_matches_lookup() {
        // `epochs_from_t2` (restore) and the merge fast path recompute
        // epochs wholesale; both must agree with the threshold-table
        // lookup cell for cell, including at every boundary.
        let params = HhParams::with_delta(0.02, 0.1, 0.1).unwrap();
        let a = OptimalListHh::new(params, 1 << 20, 1 << 20, 5).unwrap();
        let mut probes: Vec<u64> = (0..5000).collect();
        probes.extend(
            a.epoch_thresholds
                .iter()
                .flat_map(|&t| [t.saturating_sub(1), t, t + 1]),
        );
        let recomputed = OptimalListHh::epochs_from_t2(&probes, &a.epoch_thresholds);
        for (&v, &e) in probes.iter().zip(&recomputed) {
            let expect = match a.epoch(v) {
                None => EPOCH_NONE,
                Some(t) => t as u8,
            };
            assert_eq!(e, expect, "v={v}");
        }
    }

    #[test]
    fn dead_epoch_rows_carry_no_t3_mass() {
        // The merge fast path skips other's T3 rows whose cached epoch
        // is EPOCH_NONE; that is sound only if such rows are identically
        // zero. Check the invariant on a loaded summary.
        let m = 400_000u64;
        let (a, _) = run(
            m,
            &[(7, 0.3), (8, 0.16)],
            0.05,
            0.15,
            77,
            EpochMode::Accelerated,
        );
        let kp1 = a.k_eps as usize + 1;
        let mut live = 0usize;
        for (cell, &e) in a.epochs.iter().enumerate() {
            if e == EPOCH_NONE {
                assert!(
                    a.t3[cell * kp1..(cell + 1) * kp1].iter().all(|&c| c == 0),
                    "dead cell {cell} carries T3 mass"
                );
            } else {
                live += 1;
            }
        }
        assert!(live > 0, "workload never reached epoch 0 — test is vacuous");
    }

    #[test]
    fn merge_rejects_differently_seeded_instances() {
        use crate::error::MergeError;
        let params = HhParams::new(0.05, 0.2).unwrap();
        let mut a = OptimalListHh::with_seeds(params, 1 << 20, 10_000, 1, 10).unwrap();
        let b = OptimalListHh::with_seeds(params, 1 << 20, 10_000, 2, 11).unwrap();
        assert_eq!(
            a.merge_from(&b),
            Err(MergeError::Incompatible("repetition hash seeds"))
        );
    }

    #[test]
    fn snapshot_restores_report_and_resumes_bit_identically() {
        let m = 200_000u64;
        let params = HhParams::with_delta(0.05, 0.15, 0.1).unwrap();
        let stream = planted_stream(m, &[(7, 0.35), (8, 0.2)], 17);
        let (head, tail) = stream.split_at(stream.len() / 3);
        let mut a = OptimalListHh::new(params, 1 << 40, m, 5).unwrap();
        a.insert_batch(head);
        let mut restored = OptimalListHh::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(a.report().entries(), restored.report().entries());
        assert_eq!(a.component_bits(), restored.component_bits());
        // Resuming ingestion from the snapshot matches the original,
        // sample for sample (RNG and sampler state travel too).
        a.insert_batch(tail);
        restored.insert_batch(tail);
        assert_eq!(a.report().entries(), restored.report().entries());
        assert_eq!(a.samples(), restored.samples());
        assert_eq!(a.t2, restored.t2);
        assert_eq!(a.t3, restored.t3);
    }

    #[test]
    fn snapshot_rejects_cross_type_buffers() {
        use crate::SimpleListHh;
        let params = HhParams::new(0.1, 0.3).unwrap();
        let a1 = SimpleListHh::new(params, 1 << 20, 1000, 0).unwrap();
        let err = OptimalListHh::from_bytes(&a1.to_bytes()).unwrap_err();
        assert!(matches!(err, crate::SnapshotError::WrongTag { .. }));
    }
}
