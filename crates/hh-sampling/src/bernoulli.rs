//! Per-item Bernoulli sampling with power-of-two probabilities, and the
//! geometric-skip equivalent.
//!
//! Footnote 3 of the paper: *"whenever we pick an item with probability
//! p > 0, we can assume, without loss of generality, that 1/p is a power of
//! two"*. [`BernoulliSampler`] implements exactly that coin; its state is
//! the exponent, `O(log log m)` bits.
//!
//! [`SkipSampler`] draws the *gap* to the next sampled item from the
//! geometric distribution instead of flipping a coin per item. The two are
//! distributionally identical, but the skip form does constant work per
//! stream position with no random draw at unsampled positions — this is
//! how the algorithms keep `O(1)` worst-case update time (§3.1: work is
//! "spread out" because samples are `Θ(1/ε)` positions apart on average).

use crate::lemma1::Lemma1Sampler;
use hh_space::space::{delta_bits, gamma_bits, SpaceUsage};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Rounds probability `p` to `2^{-k}` with `k = round(−log₂ p)` clamped to
/// `[0, 64]`, per footnote 3.
pub fn pow2_exponent(p: f64) -> u32 {
    assert!(p > 0.0 && p <= 1.0, "probability must be in (0, 1]");
    (-p.log2()).round().clamp(0.0, 64.0) as u32
}

/// Draws a Geometric(2⁻ᵏ) failure count — the gap before the next
/// success of a Bernoulli(2⁻ᵏ) trial sequence — by inversion in O(1):
/// `⌊ln U / ln(1 − 2⁻ᵏ)⌋`, `k ≥ 1`.
///
/// The denominator is computed as `(-p).ln_1p()`, which stays exact when
/// `1 − 2⁻ᵏ` rounds to 1.0 in f64 (`k ≥ 54`); the naive
/// `(1.0 - p).ln()` form divides by zero there and degenerates into an
/// accept-everything sampler. Shared by [`SkipSampler`] and
/// [`crate::BitSkipSampler`] so the math exists (and is fixed) in
/// exactly one place.
pub(crate) fn geometric_gap<R: Rng + ?Sized>(k: u32, rng: &mut R) -> u64 {
    debug_assert!((1..=64).contains(&k));
    let p = (0.5f64).powi(k as i32);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let g = (u.ln() / (-p).ln_1p()).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// Independent coin with probability `2^{-k}` per offered item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BernoulliSampler {
    inner: Lemma1Sampler,
}

impl BernoulliSampler {
    /// Coin with probability `2^{-k}`.
    pub fn with_exponent(k: u32) -> Self {
        Self {
            inner: Lemma1Sampler::with_log_denominator(k),
        }
    }

    /// Coin with probability `p` rounded to the nearest power of two.
    pub fn with_probability(p: f64) -> Self {
        Self::with_exponent(pow2_exponent(p))
    }

    /// The (rounded) inclusion probability.
    pub fn probability(&self) -> f64 {
        self.inner.probability()
    }

    /// Flips the coin.
    #[inline]
    pub fn accept<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.inner.decide(rng)
    }
}

impl SpaceUsage for BernoulliSampler {
    fn model_bits(&self) -> u64 {
        self.inner.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Geometric-gap sampler: behaves like [`BernoulliSampler`] but only draws
/// randomness when a sample fires.
///
/// State: the exponent `k` plus a countdown of at most `O(log(1/p))` bits
/// in expectation (the gap value), still `O(log log m + log(1/p))` — within
/// the paper's budget since `1/p = O(m/ℓ)` and the countdown is charged to
/// the `log log m` term in expectation by footnote 3's power-of-two form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipSampler {
    k: u32,
    /// Items remaining to skip before the next accept; `0` means the next
    /// offer accepts.
    remaining: u64,
    primed: bool,
}

impl SkipSampler {
    /// Skip sampler with probability `2^{-k}`.
    pub fn with_exponent(k: u32) -> Self {
        assert!(k <= 64, "k must be at most 64");
        Self {
            k,
            remaining: 0,
            primed: false,
        }
    }

    /// Skip sampler with probability `p` rounded to a power of two.
    pub fn with_probability(p: f64) -> Self {
        Self::with_exponent(pow2_exponent(p))
    }

    /// The inclusion probability.
    pub fn probability(&self) -> f64 {
        (0.5f64).powi(self.k as i32)
    }

    /// The exponent `k` (inclusion probability is `2⁻ᵏ`); see
    /// [`crate::BitSkipSampler::exponent`].
    pub fn exponent(&self) -> u32 {
        self.k
    }

    fn draw_gap<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Geometric(p): number of failures before the first success; for
        // k = 0 the gap is always 0.
        self.remaining = if self.k == 0 {
            0
        } else {
            geometric_gap(self.k, rng)
        };
        self.primed = true;
    }

    /// Offers one item; returns whether it is sampled.
    #[inline]
    pub fn accept<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if !self.primed {
            self.draw_gap(rng);
        }
        if self.remaining == 0 {
            self.draw_gap(rng);
            true
        } else {
            self.remaining -= 1;
            false
        }
    }

    /// Offers `n` consecutive items at once; returns the offset of the
    /// first sampled one (consuming its trial), or `None` if none of the
    /// `n` are sampled.
    ///
    /// Exactly equivalent — including the backing-RNG draw sequence — to
    /// calling [`SkipSampler::accept`] up to `n` times and stopping at
    /// the first `true`: the pre-drawn gap either covers the whole batch
    /// (one subtraction, no RNG) or lands inside it (the success is
    /// consumed and the next gap pre-drawn, as `accept` would). This is
    /// the batch-ingestion fast path: unsampled runs cost one arithmetic
    /// step instead of one decrement per item.
    #[inline]
    pub fn next_within<R: Rng + ?Sized>(&mut self, n: u64, rng: &mut R) -> Option<u64> {
        if !self.primed {
            self.draw_gap(rng);
        }
        if self.remaining >= n {
            self.remaining -= n;
            return None;
        }
        let offset = self.remaining;
        self.draw_gap(rng);
        Some(offset)
    }
}

impl SpaceUsage for SkipSampler {
    fn model_bits(&self) -> u64 {
        delta_bits(self.k as u64) + gamma_bits(self.remaining) + 1
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Field-wise snapshot: exponent, countdown, primed flag. Restoring
/// resumes the trial sequence exactly where the snapshot left it.
impl Serialize for SkipSampler {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_u64(self.k as u64)?;
        serializer.write_u64(self.remaining)?;
        serializer.write_bool(self.primed)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for SkipSampler {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let k = deserializer.read_u64()?;
        if k > 64 {
            return Err(serde::de::Error::invariant("SkipSampler exponent above 64"));
        }
        let remaining = deserializer.read_u64()?;
        let primed = deserializer.read_bool()?;
        let mut s = Self::with_exponent(k as u32);
        s.remaining = remaining;
        s.primed = primed;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pow2_exponent_rounds() {
        assert_eq!(pow2_exponent(1.0), 0);
        assert_eq!(pow2_exponent(0.5), 1);
        assert_eq!(pow2_exponent(0.25), 2);
        assert_eq!(pow2_exponent(0.3), 2); // -log2(0.3) ≈ 1.74 → 2
        assert_eq!(pow2_exponent(0.4), 1); // -log2(0.4) ≈ 1.32 → 1
        assert_eq!(pow2_exponent(1e-30), 64); // clamped
    }

    #[test]
    fn skip_and_coin_have_same_rate() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 1 << 18;
        for k in [2u32, 5] {
            let coin = BernoulliSampler::with_exponent(k);
            let mut skip = SkipSampler::with_exponent(k);
            let coin_hits = (0..n).filter(|_| coin.accept(&mut rng)).count() as f64;
            let skip_hits = (0..n).filter(|_| skip.accept(&mut rng)).count() as f64;
            let expect = n as f64 * (0.5f64).powi(k as i32);
            for (name, hits) in [("coin", coin_hits), ("skip", skip_hits)] {
                assert!(
                    (hits - expect).abs() < 6.0 * expect.sqrt() + 6.0,
                    "k={k} {name}: {hits} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn skip_gaps_are_geometric() {
        // Mean gap between accepts should be 1/p.
        let mut rng = StdRng::seed_from_u64(7);
        let k = 4u32;
        let mut s = SkipSampler::with_exponent(k);
        let mut gaps = Vec::new();
        let mut since = 0u64;
        for _ in 0..1 << 18 {
            if s.accept(&mut rng) {
                gaps.push(since);
                since = 0;
            } else {
                since += 1;
            }
        }
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let expect = (1u64 << k) as f64 - 1.0; // failures before a success
        assert!(
            (mean - expect).abs() < 0.1 * expect,
            "mean gap {mean} vs {expect}"
        );
    }

    #[test]
    fn probability_one_accepts_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = SkipSampler::with_exponent(0);
        assert!((0..100).all(|_| s.accept(&mut rng)));
    }

    #[test]
    fn next_within_matches_per_trial_accept() {
        // Same seed, same exponent: driving the sampler with batched
        // next_within over arbitrary chunk sizes must reproduce the
        // per-trial accept sequence exactly (positions and RNG draws).
        for k in [0u32, 1, 3, 6] {
            let n_trials = 50_000u64;
            let mut scalar = SkipSampler::with_exponent(k);
            let mut rng_a = StdRng::seed_from_u64(99);
            let scalar_hits: Vec<u64> = (0..n_trials)
                .filter(|_| scalar.accept(&mut rng_a))
                .collect();
            let mut batch = SkipSampler::with_exponent(k);
            let mut rng_b = StdRng::seed_from_u64(99);
            let mut batch_hits = Vec::new();
            let mut pos = 0u64;
            let chunks = [1u64, 2, 7, 64, 1000, 4096];
            let mut ci = 0usize;
            while pos < n_trials {
                let len = chunks[ci % chunks.len()].min(n_trials - pos);
                ci += 1;
                let mut off = 0u64;
                while let Some(j) = batch.next_within(len - off, &mut rng_b) {
                    batch_hits.push(pos + off + j);
                    off += j + 1;
                }
                pos += len;
            }
            assert_eq!(batch_hits, scalar_hits, "k={k}");
        }
    }

    #[test]
    fn huge_exponents_accept_essentially_never() {
        // Regression: the naive ln(1 - p) gap denominator is exactly 0.0
        // once 1 - 2^-k rounds to 1.0 (k >= 54), which turned the skip
        // sampler into an accept-everything sampler at the top of its
        // domain. geometric_gap's ln_1p form keeps the rate at ~2^-k.
        for k in [54u32, 64] {
            let mut s = SkipSampler::with_exponent(k);
            let mut rng = StdRng::seed_from_u64(k as u64);
            let hits = (0..10_000).filter(|_| s.accept(&mut rng)).count();
            assert_eq!(hits, 0, "k={k} accepted {hits}/10000");
        }
    }

    #[test]
    fn space_stays_tiny() {
        let s = BernoulliSampler::with_probability(1.0 / (1 << 20) as f64);
        assert!(s.model_bits() < 16);
    }
}
