//! Sample-size calculators (Lemma 3 and the Chernoff bounds the proofs
//! use).
//!
//! Lemma 3 (via the DKW inequality \[DKW56\]): `r ≥ 2ε⁻² log(2δ⁻¹)` samples
//! preserve **every** relative frequency to within an additive ε
//! simultaneously, with probability 1 − δ. The individual algorithms then
//! pick constants: Algorithm 1 uses `ℓ = 6 log(6/δ)/ε²`, Algorithm 2 uses
//! `ℓ = 10⁵/ε²`, Theorem 5 uses `ℓ = 6ε⁻² log(6n/δ)`, Theorem 6 uses
//! `ℓ = (8/ε²) ln(6n/δ)`. Those constants live in `hh-core`'s `Constants`;
//! this module provides the underlying formulas.

/// Lemma 3 / DKW sample size: enough samples for *all* frequencies to be
/// ε-accurate simultaneously with probability `1 − δ`.
pub fn dkw_sample_size(eps: f64, delta: f64) -> u64 {
    check(eps, delta);
    (2.0 / (eps * eps) * (2.0 / delta).ln()).ceil() as u64
}

/// Chernoff sample size for a **single** frequency to be ε-accurate with
/// probability `1 − δ` (no union bound over the universe).
pub fn chernoff_sample_size(eps: f64, delta: f64) -> u64 {
    check(eps, delta);
    ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as u64
}

/// Chernoff sample size with a union bound over `k` events (used by the
/// voting algorithms, which union-bound over `n` candidates or `n²`
/// candidate pairs).
pub fn union_sample_size(eps: f64, delta: f64, k: u64) -> u64 {
    check(eps, delta);
    assert!(k >= 1);
    ((2.0 * k as f64 / delta).ln() / (2.0 * eps * eps)).ceil() as u64
}

/// Two-sided multiplicative Chernoff bound:
/// `Pr[|X − μ| ≥ γμ] ≤ 2·exp(−γ²μ/3)` for sums of independent indicators.
pub fn chernoff_tail(mu: f64, gamma: f64) -> f64 {
    assert!(mu >= 0.0 && gamma >= 0.0);
    (2.0 * (-gamma * gamma * mu / 3.0).exp()).min(1.0)
}

fn check(eps: f64, delta: f64) {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dkw_matches_formula() {
        // ε = 0.1, δ = 0.05 → 2·100·ln 40 ≈ 737.7 → 738.
        assert_eq!(dkw_sample_size(0.1, 0.05), 738);
    }

    #[test]
    fn sizes_shrink_with_looser_parameters() {
        assert!(dkw_sample_size(0.01, 0.1) > dkw_sample_size(0.1, 0.1));
        assert!(dkw_sample_size(0.1, 0.01) > dkw_sample_size(0.1, 0.1));
        assert!(chernoff_sample_size(0.1, 0.1) < dkw_sample_size(0.1, 0.1));
    }

    #[test]
    fn union_bound_grows_logarithmically() {
        let base = union_sample_size(0.1, 0.1, 1);
        let big = union_sample_size(0.1, 0.1, 1 << 20);
        assert!(big > base);
        // 2^20 events only multiply the size by ~(ln(2^21/δ)/ln(2/δ)) ≈ 5.
        assert!(big < base * 8);
    }

    #[test]
    fn chernoff_tail_monotone() {
        assert!(chernoff_tail(100.0, 0.5) < chernoff_tail(100.0, 0.1));
        assert!(chernoff_tail(1000.0, 0.1) < chernoff_tail(10.0, 0.1));
        assert_eq!(chernoff_tail(0.0, 0.5), 1.0);
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn bad_eps_rejected() {
        dkw_sample_size(0.0, 0.1);
    }

    #[test]
    fn dkw_sample_size_empirically_sufficient() {
        // Lemma 3, executed: draw r = dkw_sample_size(ε, δ) samples from a
        // skewed distribution; the event "every item's sample fraction is
        // within ε of its true fraction" must hold in at least (1−δ) of
        // trials (with head-room for Monte-Carlo noise).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (eps, delta) = (0.05, 0.1);
        let r = dkw_sample_size(eps, delta) as usize;
        // Distribution over 8 items: geometric-ish masses.
        let probs = [0.4, 0.2, 0.15, 0.1, 0.06, 0.04, 0.03, 0.02];
        let trials = 120;
        let mut failures = 0;
        let mut rng = StdRng::seed_from_u64(0xD1C);
        for _ in 0..trials {
            let mut counts = [0u32; 8];
            for _ in 0..r {
                let mut u: f64 = rng.gen();
                let mut pick = 7;
                for (i, &p) in probs.iter().enumerate() {
                    if u < p {
                        pick = i;
                        break;
                    }
                    u -= p;
                }
                counts[pick] += 1;
            }
            let all_ok = counts
                .iter()
                .zip(&probs)
                .all(|(&c, &p)| (c as f64 / r as f64 - p).abs() <= eps);
            failures += u32::from(!all_ok);
        }
        let rate = failures as f64 / trials as f64;
        assert!(
            rate <= delta + 0.05,
            "DKW failure rate {rate} > delta {delta}"
        );
    }
}
