//! Reservoir sampling (Vitter's Algorithm R).
//!
//! Maintains a uniform sample of fixed size `k` from a stream of unknown
//! length — the practical companion to §3.5: where Theorem 7 restarts
//! fixed-probability instances as the stream outgrows its guess, the
//! voting algorithms (Theorem 8) can equivalently keep an `ℓ`-vote
//! reservoir, which is what [`ReservoirSampler`] provides.

use hh_space::SpaceUsage;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Uniform fixed-size sample over a stream of unknown length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservoirSampler<T> {
    sample: Vec<T>,
    capacity: usize,
    seen: u64,
}

impl<T> ReservoirSampler<T> {
    /// Reservoir holding `capacity` items.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            sample: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Offers one item.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.sample[j as usize] = item;
            }
        }
    }

    /// The current sample (uniform over the items seen so far).
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Total items offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the reservoir has filled to capacity.
    pub fn is_full(&self) -> bool {
        self.sample.len() == self.capacity
    }
}

impl<T: SpaceUsage> SpaceUsage for ReservoirSampler<T> {
    fn model_bits(&self) -> u64 {
        // Stored items plus the stream-position counter (log m bits; the
        // unknown-length wrappers replace this with a Morris counter).
        self.sample.model_bits() + hh_space::space::gamma_bits(self.seen)
    }
    fn heap_bytes(&self) -> usize {
        self.sample.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_then_stays_at_capacity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = ReservoirSampler::new(10);
        for i in 0..5u64 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.sample().len(), 5);
        assert!(!r.is_full());
        for i in 5..100u64 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.sample().len(), 10);
        assert!(r.is_full());
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn uniformity_of_inclusion() {
        // Offer 0..50 into a size-5 reservoir many times; each item should
        // be included with probability ≈ 5/50 = 0.1.
        let mut rng = StdRng::seed_from_u64(8);
        let n = 50u64;
        let runs = 20_000;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..runs {
            let mut r = ReservoirSampler::new(5);
            for i in 0..n {
                r.offer(i, &mut rng);
            }
            for &x in r.sample() {
                counts[x as usize] += 1;
            }
        }
        let expect = runs as f64 * 5.0 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.12, "item {i}: {c} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ReservoirSampler::<u64>::new(0);
    }
}
