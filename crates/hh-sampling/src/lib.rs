//! Sampling primitives and approximate counters.
//!
//! Everything the paper's algorithms need between the raw stream and their
//! tables lives here:
//!
//! * [`Lemma1Sampler`] — the `O(log log m)`-bit, `O(1)`-time
//!   sample-with-probability-`1/m` primitive of Lemma 1 (optimal by
//!   Proposition 2 of the paper's appendix).
//! * [`BernoulliSampler`] / [`SkipSampler`] — per-item coin flips with
//!   power-of-two probabilities (footnote 3 of the paper) and the
//!   geometric-gap variant that only does work at sampled positions — the
//!   mechanism behind the `O(1)` update-time discussion in §3.1.
//! * [`BitBudget`] / [`BitSkipSampler`] — bit-budgeted randomness for the
//!   per-repetition coins of Algorithm 2's hot path: buffered `k`-bit
//!   slices of one drawn word, and an exact geometric-skip
//!   Bernoulli(2⁻ᵏ) sampler whose common-path cost is one decrement.
//! * [`MorrisCounter`] — the approximate counter of Morris \[Mor78\] analyzed
//!   by Flajolet \[Fla85\], used by the unknown-stream-length constructions
//!   of §3.5 (Theorems 7 and 8).
//! * [`ReservoirSampler`] — fixed-size uniform samples without knowing `m`,
//!   used by the unknown-length variants of the voting algorithms.
//! * [`size`] — the sample-size calculators from Lemma 3 (and the DKW
//!   inequality) mapping `(ε, δ)` to the number of samples the algorithms
//!   draw.
//!
//! # Example
//!
//! ```
//! use hh_sampling::{SkipSampler, MorrisCounter};
//! use hh_space::SpaceUsage;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Sample ~1/64 of a stream with O(1) work on the common path.
//! let mut sampler = SkipSampler::with_probability(1.0 / 64.0);
//! let hits = (0..10_000).filter(|_| sampler.accept(&mut rng)).count();
//! assert!(hits > 60 && hits < 300);
//!
//! // Count a million events in a handful of bits.
//! let mut morris = MorrisCounter::with_accuracy(0.2);
//! for _ in 0..100_000 { morris.increment(&mut rng); }
//! assert!(morris.estimate() > 30_000.0 && morris.estimate() < 300_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bernoulli;
pub mod bitbudget;
pub mod counting_rng;
pub mod lemma1;
pub mod morris;
pub mod reservoir;
pub mod size;

pub use bernoulli::{BernoulliSampler, SkipSampler};
pub use bitbudget::{BitBudget, BitSkipSampler};
pub use counting_rng::CountingRng;
pub use lemma1::Lemma1Sampler;
pub use morris::MorrisCounter;
pub use reservoir::ReservoirSampler;
