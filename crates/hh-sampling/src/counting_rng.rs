//! Randomness accounting: a wrapper RNG that counts the bits it hands
//! out.
//!
//! Proposition 2 (appendix B of the paper) shows any algorithm sampling
//! with probability `p ≤ 1/n` must use `Ω(log log m)` bits of *memory* —
//! while consuming `Θ(log m)` bits of *randomness* per decision. The two
//! resources are distinct, and [`CountingRng`] makes the distinction
//! measurable: wrap any RNG, run a sampler, and compare
//! [`CountingRng::bits_drawn`] (randomness, large) against the sampler's
//! `model_bits` (memory, tiny). The test in this module is the
//! executable form of the Lemma 1 / Proposition 2 pairing.

use rand::{Error, RngCore};

/// An [`RngCore`] adapter counting the bits drawn through it.
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    bits: u64,
}

impl<R: RngCore> CountingRng<R> {
    /// Wraps an RNG with a zeroed counter.
    pub fn new(inner: R) -> Self {
        Self { inner, bits: 0 }
    }

    /// Total bits drawn since construction (32 per `next_u32`, 64 per
    /// `next_u64`, 8 per byte filled).
    pub fn bits_drawn(&self) -> u64 {
        self.bits
    }

    /// Resets the counter.
    pub fn reset(&mut self) {
        self.bits = 0;
    }

    /// Unwraps the inner RNG.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.bits += 32;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.bits += 64;
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.bits += dest.len() as u64 * 8;
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.bits += dest.len() as u64 * 8;
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lemma1Sampler, SkipSampler};
    use hh_space::SpaceUsage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_words_and_bytes() {
        let mut rng = CountingRng::new(StdRng::seed_from_u64(1));
        let _ = rng.next_u32();
        let _ = rng.next_u64();
        let mut buf = [0u8; 5];
        rng.fill_bytes(&mut buf);
        assert_eq!(rng.bits_drawn(), 32 + 64 + 40);
        rng.reset();
        assert_eq!(rng.bits_drawn(), 0);
    }

    #[test]
    fn lemma1_randomness_vs_memory_gap() {
        // Proposition 2, operationally: the sampler consumes Θ(log m)
        // random bits per decision but its *state* is Θ(log log m) bits.
        let sampler = Lemma1Sampler::with_denominator(1 << 30);
        let mut rng = CountingRng::new(StdRng::seed_from_u64(2));
        let decisions = 1_000u64;
        for _ in 0..decisions {
            let _ = sampler.decide(&mut rng);
        }
        let per_decision = rng.bits_drawn() / decisions;
        assert!(
            per_decision >= 30,
            "draws at least log m bits: {per_decision}"
        );
        assert!(
            sampler.model_bits() < 16,
            "but stores only loglog m: {}",
            sampler.model_bits()
        );
    }

    #[test]
    fn skip_sampler_amortizes_randomness() {
        // The skip form draws randomness only at accepted positions:
        // total bits ≈ (expected accepts) · 64, far below one draw per
        // item.
        let k = 8u32; // p = 1/256
        let items = 1u64 << 16;
        let mut s = SkipSampler::with_exponent(k);
        let mut rng = CountingRng::new(StdRng::seed_from_u64(3));
        let mut accepts = 0u64;
        for _ in 0..items {
            accepts += u64::from(s.accept(&mut rng));
        }
        let expected_accepts = items >> k;
        assert!(
            rng.bits_drawn() < 4 * 64 * expected_accepts.max(1),
            "skip sampling drew {} bits for ~{expected_accepts} accepts",
            rng.bits_drawn()
        );
        // Sanity: it actually sampled about the right number.
        assert!(accepts > expected_accepts / 2 && accepts < expected_accepts * 2);
    }
}
