//! Bit-budgeted randomness: draw whole `u64` words rarely, spend them in
//! `k`-bit slices.
//!
//! Footnote 3 of the paper rounds every sampling probability to a power
//! of two so that each coin flip is "a masked test of one random word".
//! Taken literally — one fresh word per flip — that is two orders of
//! magnitude more randomness (and RNG latency) than the decisions need:
//! a Bernoulli(2⁻ᵏ) trial consumes exactly `k` bits. [`BitBudget`] makes
//! the literal reading cheap by buffering one word and handing out
//! slices; [`BitSkipSampler`] goes further for *repeated* trials at the
//! same rate, pre-drawing the geometric gap to the next success so the
//! per-trial cost on the common path is a counter decrement.
//!
//! Both are exact: trials are carved from disjoint fresh bits, so the
//! joint distribution of decisions equals independent full-word masked
//! tests. Only the *draw order* against the backing RNG differs, which
//! is why seeded replays remain deterministic but produce a different
//! (equally valid) execution than the one-word-per-flip code they
//! replace.

use hh_space::space::{delta_bits, gamma_bits, SpaceUsage};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A buffered random-bit source: draws one `u64` at a time from the
/// backing RNG and serves `k`-bit slices out of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitBudget {
    word: u64,
    left: u32,
}

impl BitBudget {
    /// An empty budget; the first take refills from the RNG.
    pub const fn new() -> Self {
        Self { word: 0, left: 0 }
    }

    /// Takes `k ≤ 64` fresh uniform bits as the low bits of the result.
    ///
    /// A refill discards the remainder of the previous word rather than
    /// splicing across words — slices never straddle a refill, so every
    /// slice is a contiguous run of fresh bits.
    #[inline]
    pub fn take<R: RngCore + ?Sized>(&mut self, k: u32, rng: &mut R) -> u64 {
        debug_assert!(k <= 64, "cannot take more than one word");
        if k == 0 {
            return 0;
        }
        if self.left < k {
            self.word = rng.next_u64();
            self.left = 64;
        }
        let out = if k == 64 {
            self.word
        } else {
            self.word & ((1u64 << k) - 1)
        };
        self.word = self.word.checked_shr(k).unwrap_or(0);
        self.left -= k;
        out
    }

    /// One Bernoulli(2⁻ᵏ) trial: true iff `k` fresh bits are all zero.
    #[inline]
    pub fn trial<R: RngCore + ?Sized>(&mut self, k: u32, rng: &mut R) -> bool {
        self.take(k, rng) == 0
    }

    /// Fresh bits still buffered.
    pub fn remaining(&self) -> u32 {
        self.left
    }
}

impl SpaceUsage for BitBudget {
    fn model_bits(&self) -> u64 {
        // The buffered word is randomness in flight, not summary state;
        // the paper's accounting charges the O(1)-word working store.
        64 + 7
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Field-wise snapshot: the buffered word and the fresh-bit count, so a
/// restored budget hands out the exact slices the original would have.
impl Serialize for BitBudget {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_u64(self.word)?;
        serializer.write_u64(self.left as u64)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for BitBudget {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let word = deserializer.read_u64()?;
        let left = deserializer.read_u64()?;
        if left > 64 {
            return Err(serde::de::Error::invariant("BitBudget has at most 64 bits"));
        }
        Ok(Self {
            word,
            left: left as u32,
        })
    }
}

/// Geometric-skip sampler for repeated Bernoulli(2⁻ᵏ) trials, driven by
/// raw bits on the hot path.
///
/// Distributionally identical to flipping the coin per trial (and to
/// [`crate::SkipSampler`] at the same exponent), but the gap to the next
/// success is pre-drawn, so the common path per trial is
/// `remaining == 0` / decrement — no RNG call, no float math.
///
/// Gap draws adapt to the exponent. For small `k` (up to
/// [`BitSkipSampler::SCAN_MAX_K`]) the trial sequence is scanned
/// *exactly* in `k`-bit chunks of fresh words — a SWAR zero-chunk test
/// resolves `⌊64/k⌋` trials per word, about one word per gap, with no
/// float math anywhere. Scanning spends `k` bits per trial, i.e.
/// `Θ(k·2ᵏ)` bits per gap, so above the cutoff it would defeat the
/// point of skipping; large exponents instead draw the geometric gap in
/// O(1) by inversion (`⌊ln U / ln(1−2⁻ᵏ)⌋`), exactly as
/// [`crate::SkipSampler`] does for every `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSkipSampler {
    k: u32,
    /// Failing trials remaining before the next success; `0` means the
    /// next trial succeeds.
    remaining: u64,
    primed: bool,
    /// SWAR masks for the zero-chunk scan: ones at each chunk's lowest
    /// bit / highest bit (covering `⌊64/k⌋` chunks; leftover high bits of
    /// a word are discarded).
    lows: u64,
    highs: u64,
}

impl BitSkipSampler {
    /// Largest exponent for which gaps are drawn by the exact bit scan.
    /// At `k = 6` a gap costs an expected `6·2⁶/64 = 6` words; beyond
    /// that the O(1) inversion draw wins (and by `k ≈ 40` scanning would
    /// be a practical hang).
    pub const SCAN_MAX_K: u32 = 6;

    /// Sampler with success probability `2⁻ᵏ`, `k ≤ 64`.
    pub fn with_exponent(k: u32) -> Self {
        assert!(k <= 64, "k must be at most 64");
        Self {
            k,
            remaining: 0,
            primed: false,
            lows: hh_space::swar::lane_lsbs(k),
            highs: hh_space::swar::lane_msbs(k),
        }
    }

    /// The success probability `2⁻ᵏ`.
    pub fn probability(&self) -> f64 {
        (0.5f64).powi(self.k as i32)
    }

    /// The exponent `k` (success probability is `2⁻ᵏ`). Batch callers
    /// use it to predict whether skip-ahead can pay: at `k = 0` every
    /// trial succeeds and there are no runs to skip.
    pub fn exponent(&self) -> u32 {
        self.k
    }

    /// Index of the first all-zero `k`-bit chunk of `w` (low to high),
    /// or `None` if none of the `⌊64/k⌋` covered chunks is zero.
    #[inline]
    fn first_zero_chunk(&self, w: u64) -> Option<u64> {
        if self.k == 1 {
            // Width-1 chunks: a zero chunk is a zero bit.
            return (w != u64::MAX).then(|| u64::from((!w).trailing_zeros()));
        }
        // Shared zero-lane SWAR scan (`hh_space::swar`); the cached
        // `lows`/`highs` constants keep the per-word cost at three ALU
        // operations plus a tzcnt.
        hh_space::swar::first_zero_lane(w, self.k, self.lows, self.highs).map(u64::from)
    }

    #[inline]
    fn draw_gap<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        self.primed = true;
        if self.k == 0 {
            self.remaining = 0;
            return;
        }
        if self.k > Self::SCAN_MAX_K {
            // O(1) inversion draw shared with SkipSampler.
            self.remaining = crate::bernoulli::geometric_gap(self.k, rng);
            return;
        }
        let per_word = (64 / self.k) as u64;
        let mut gap = 0u64;
        loop {
            let w = rng.next_u64();
            match self.first_zero_chunk(w) {
                Some(j) => {
                    self.remaining = gap + j;
                    return;
                }
                None => gap += per_word,
            }
        }
    }

    /// Runs one trial; returns whether it succeeded.
    #[inline]
    pub fn accept<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> bool {
        if !self.primed {
            self.draw_gap(rng);
        }
        if self.remaining == 0 {
            self.draw_gap(rng);
            true
        } else {
            self.remaining -= 1;
            false
        }
    }

    /// Runs up to `n` consecutive trials; returns the offset of the
    /// first success (consuming it), or `None` if all `n` fail.
    ///
    /// Exactly equivalent — including the backing-RNG draw sequence — to
    /// calling [`BitSkipSampler::accept`] up to `n` times and stopping at
    /// the first `true`; see [`crate::SkipSampler::next_within`]. Batch
    /// callers use it to step over whole unsampled runs in one
    /// subtraction.
    #[inline]
    pub fn next_within<R: RngCore + ?Sized>(&mut self, n: u64, rng: &mut R) -> Option<u64> {
        if !self.primed {
            self.draw_gap(rng);
        }
        if self.remaining >= n {
            self.remaining -= n;
            return None;
        }
        let offset = self.remaining;
        self.draw_gap(rng);
        Some(offset)
    }
}

impl SpaceUsage for BitSkipSampler {
    fn model_bits(&self) -> u64 {
        // Exponent + countdown + primed flag; the SWAR masks are derived
        // from k, not stored state.
        delta_bits(self.k as u64) + gamma_bits(self.remaining) + 1
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Field-wise snapshot of the random state only — exponent, countdown,
/// primed flag; the SWAR masks are derived from the exponent at restore
/// time. Restoring resumes the trial sequence exactly.
impl Serialize for BitSkipSampler {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_u64(self.k as u64)?;
        serializer.write_u64(self.remaining)?;
        serializer.write_bool(self.primed)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for BitSkipSampler {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let k = deserializer.read_u64()?;
        if k > 64 {
            return Err(serde::de::Error::invariant(
                "BitSkipSampler exponent above 64",
            ));
        }
        let remaining = deserializer.read_u64()?;
        let primed = deserializer.read_bool()?;
        let mut s = Self::with_exponent(k as u32);
        s.remaining = remaining;
        s.primed = primed;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingRng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn take_returns_k_low_bits_and_refills() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = BitBudget::new();
        // 16 four-bit takes consume exactly one word.
        let mut counting = CountingRng::new(StdRng::seed_from_u64(1));
        for _ in 0..16 {
            let v = b.take(4, &mut counting);
            assert!(v < 16);
        }
        assert_eq!(counting.bits_drawn(), 64);
        // Taking zero bits consumes nothing.
        assert_eq!(b.take(0, &mut rng), 0);
        // A full-word take works.
        let mut c = BitBudget::new();
        let _ = c.take(64, &mut rng);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn slices_reassemble_the_backing_words() {
        // Slices must be the exact low-to-high bits of the drawn words.
        let mut raw = StdRng::seed_from_u64(77);
        let expected: u64 = rand::RngCore::next_u64(&mut raw);
        let mut b = BitBudget::new();
        let mut replay = StdRng::seed_from_u64(77);
        let mut got = 0u64;
        for i in 0..8 {
            got |= b.take(8, &mut replay) << (8 * i);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn trial_rate_matches_exponent() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = BitBudget::new();
        let n = 1 << 18;
        for k in [1u32, 4, 7] {
            let hits = (0..n).filter(|_| b.trial(k, &mut rng)).count() as f64;
            let expect = n as f64 * (0.5f64).powi(k as i32);
            assert!(
                (hits - expect).abs() < 6.0 * expect.sqrt() + 6.0,
                "k={k}: {hits} vs {expect}"
            );
        }
    }

    #[test]
    fn skip_rate_matches_coin_for_various_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 1 << 18;
        for k in [0u32, 1, 2, 4, 5, 11] {
            let mut s = BitSkipSampler::with_exponent(k);
            let hits = (0..n).filter(|_| s.accept(&mut rng)).count() as f64;
            let expect = n as f64 * (0.5f64).powi(k as i32);
            assert!(
                (hits - expect).abs() < 6.0 * expect.sqrt() + 6.0,
                "k={k}: {hits} vs {expect}"
            );
        }
    }

    #[test]
    fn skip_gaps_are_geometric() {
        let mut rng = StdRng::seed_from_u64(7);
        let k = 4u32;
        let mut s = BitSkipSampler::with_exponent(k);
        let mut gaps = Vec::new();
        let mut since = 0u64;
        for _ in 0..1 << 18 {
            if s.accept(&mut rng) {
                gaps.push(since);
                since = 0;
            } else {
                since += 1;
            }
        }
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let expect = (1u64 << k) as f64 - 1.0;
        assert!(
            (mean - expect).abs() < 0.1 * expect,
            "mean gap {mean} vs {expect}"
        );
    }

    #[test]
    fn first_zero_chunk_agrees_with_naive_scan() {
        let mut rng = StdRng::seed_from_u64(9);
        for k in [1u32, 2, 3, 4, 5, 8, 13, 21, 32, 63, 64] {
            let s = BitSkipSampler::with_exponent(k);
            let chunks = 64 / k;
            for _ in 0..500 {
                let w: u64 = rand::Rng::gen(&mut rng);
                let naive = (0..chunks).find(|&c| {
                    let chunk = (w >> (c * k)) & (u64::MAX >> (64 - k));
                    chunk == 0
                });
                assert_eq!(
                    s.first_zero_chunk(w),
                    naive.map(u64::from),
                    "k={k} w={w:#x}"
                );
            }
        }
    }

    #[test]
    fn large_exponent_gaps_cost_constant_randomness() {
        // Above SCAN_MAX_K the gap draw must be O(1) randomness, not a
        // Theta(k * 2^k)-bit scan: at k = 20, offering a full expected
        // gap's worth of trials must cost a bounded number of words.
        let k = 20u32;
        let mut s = BitSkipSampler::with_exponent(k);
        let mut rng = CountingRng::new(StdRng::seed_from_u64(4));
        let trials = 1u64 << 21; // ~2 expected successes
        let mut hits = 0u64;
        for _ in 0..trials {
            hits += u64::from(s.accept(&mut rng));
        }
        // One 64-bit word per gap draw (one draw per success, plus the
        // initial priming), with generous slack for the rejection path.
        assert!(
            rng.bits_drawn() <= 64 * 4 * (hits + 2),
            "drew {} bits for {} successes",
            rng.bits_drawn(),
            hits
        );
        // And the rate is still right.
        let expect = (trials >> k) as f64;
        assert!((hits as f64) < 8.0 * expect + 8.0, "rate off: {hits}");
    }

    #[test]
    fn inversion_path_gaps_are_geometric() {
        // Mean gap 2^k − 1 must hold on the large-k (inversion) path too.
        let mut rng = StdRng::seed_from_u64(17);
        let k = 9u32;
        let mut s = BitSkipSampler::with_exponent(k);
        let mut gaps = Vec::new();
        let mut since = 0u64;
        for _ in 0..1 << 21 {
            if s.accept(&mut rng) {
                gaps.push(since);
                since = 0;
            } else {
                since += 1;
            }
        }
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let expect = (1u64 << k) as f64 - 1.0;
        assert!(
            (mean - expect).abs() < 0.15 * expect,
            "mean gap {mean} vs {expect} over {} gaps",
            gaps.len()
        );
    }

    #[test]
    fn huge_exponents_accept_essentially_never() {
        // Regression: with the naive ln(1 - p) denominator, 1 - 2^-k
        // rounds to 1.0 for k >= 54 and the sampler accepted *every*
        // trial. With ln_1p the acceptance rate is ~2^-k, i.e. zero at
        // any observable scale.
        for k in [54u32, 60, 64] {
            let mut s = BitSkipSampler::with_exponent(k);
            let mut rng = StdRng::seed_from_u64(k as u64);
            let hits = (0..10_000).filter(|_| s.accept(&mut rng)).count();
            assert_eq!(hits, 0, "k={k} accepted {hits}/10000");
        }
    }

    #[test]
    fn probability_one_accepts_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = BitSkipSampler::with_exponent(0);
        assert!((0..100).all(|_| s.accept(&mut rng)));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(33);
            let mut s = BitSkipSampler::with_exponent(3);
            (0..1000).map(|_| s.accept(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn next_within_matches_per_trial_accept() {
        // Batched skipping must reproduce the per-trial accept sequence
        // bit-for-bit (both scan-path and inversion-path exponents).
        for k in [1u32, 4, 6, 9] {
            let n_trials = 60_000u64;
            let mut scalar = BitSkipSampler::with_exponent(k);
            let mut rng_a = StdRng::seed_from_u64(7 + k as u64);
            let scalar_hits: Vec<u64> = (0..n_trials)
                .filter(|_| scalar.accept(&mut rng_a))
                .collect();
            let mut batch = BitSkipSampler::with_exponent(k);
            let mut rng_b = StdRng::seed_from_u64(7 + k as u64);
            let mut batch_hits = Vec::new();
            let mut pos = 0u64;
            for len in std::iter::repeat([3u64, 1, 513, 8192]).flatten() {
                if pos >= n_trials {
                    break;
                }
                let len = len.min(n_trials - pos);
                let mut off = 0u64;
                while let Some(j) = batch.next_within(len - off, &mut rng_b) {
                    batch_hits.push(pos + off + j);
                    off += j + 1;
                }
                pos += len;
            }
            assert_eq!(batch_hits, scalar_hits, "k={k}");
        }
    }

    #[test]
    fn randomness_budget_is_near_information_bound() {
        // ~64/k trials per word: the skip form spends ~1 word per 2^k
        // trials at k=8 (one gap draw per success, ~2^k/(64/k) words each).
        let k = 8u32;
        let items = 1u64 << 16;
        let mut s = BitSkipSampler::with_exponent(k);
        let mut rng = CountingRng::new(StdRng::seed_from_u64(3));
        for _ in 0..items {
            let _ = s.accept(&mut rng);
        }
        // k bits of information per trial is the bound; allow 3x slack
        // for discarded word remainders.
        assert!(
            rng.bits_drawn() < 3 * items * k as u64,
            "drew {} bits for {} trials",
            rng.bits_drawn(),
            items
        );
    }

    #[test]
    fn space_stays_tiny() {
        let s = BitSkipSampler::with_exponent(20);
        assert!(s.model_bits() < 64);
    }
}
