//! The Morris approximate counter \[Mor78, Fla85\].
//!
//! §3.5 of the paper uses it to track the stream position in
//! `O(log log m + k)` bits with error probability `2^{−k/2}`: *"We use the
//! approximate counting method of Morris to approximately count the length
//! of the stream"*, with correctness-at-every-power-of-two (event E in the
//! proof of Theorem 7) giving a factor-4 approximation at every position.
//!
//! The counter keeps `C` and increments it with probability `b^{−C}`; the
//! estimate is `(b^C − 1)/(b − 1)`. Base `b = 2` is the classical counter;
//! [`MorrisCounter::with_accuracy`] averages `s` independent copies to cut
//! the relative standard error to `≈ √(1/(2s))`.

use hh_space::space::{gamma_bits, SpaceUsage};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bank of `s` independent base-`b` Morris counters whose estimates are
/// averaged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MorrisCounter {
    /// Exponents of the independent copies.
    exponents: Vec<u32>,
    base: f64,
}

impl MorrisCounter {
    /// Single classical base-2 Morris counter.
    pub fn new() -> Self {
        Self::with_copies(2.0, 1)
    }

    /// `copies` independent base-`base` counters, averaged.
    ///
    /// # Panics
    /// If `base ≤ 1` or `copies == 0`.
    pub fn with_copies(base: f64, copies: usize) -> Self {
        assert!(base > 1.0, "base must exceed 1");
        assert!(copies >= 1, "need at least one copy");
        Self {
            exponents: vec![0; copies],
            base,
        }
    }

    /// A counter bank sized so the relative standard error is about
    /// `rel_err` (uses the Flajolet variance `Var ≈ n²(b−1)/2` per copy).
    pub fn with_accuracy(rel_err: f64) -> Self {
        assert!(rel_err > 0.0);
        // With base b and s copies: rel. std. err ≈ sqrt((b−1)/(2s)).
        // Fix b = 2 and solve for s.
        let s = (0.5 / (rel_err * rel_err)).ceil().max(1.0) as usize;
        Self::with_copies(2.0, s)
    }

    /// Registers one stream item.
    #[inline]
    pub fn increment<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for c in self.exponents.iter_mut() {
            let p = self.base.powi(-(*c as i32));
            if p >= 1.0 || rng.gen::<f64>() < p {
                *c += 1;
            }
        }
    }

    /// Current estimate of the number of increments.
    pub fn estimate(&self) -> f64 {
        let total: f64 = self
            .exponents
            .iter()
            .map(|&c| (self.base.powi(c as i32) - 1.0) / (self.base - 1.0))
            .sum();
        total / self.exponents.len() as f64
    }

    /// Largest exponent across copies (drives the space accounting).
    pub fn max_exponent(&self) -> u32 {
        self.exponents.iter().copied().max().unwrap_or(0)
    }

    /// Number of independent copies.
    pub fn copies(&self) -> usize {
        self.exponents.len()
    }
}

impl Default for MorrisCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl SpaceUsage for MorrisCounter {
    fn model_bits(&self) -> u64 {
        // Each copy stores its exponent C ≈ log_b(count): Θ(log log m).
        self.exponents.iter().map(|&c| gamma_bits(c as u64)).sum()
    }
    fn heap_bytes(&self) -> usize {
        self.exponents.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_unbiased_over_many_runs() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 4096u64;
        let runs = 300;
        let mut sum = 0.0;
        for _ in 0..runs {
            let mut c = MorrisCounter::new();
            for _ in 0..n {
                c.increment(&mut rng);
            }
            sum += c.estimate();
        }
        let mean = sum / runs as f64;
        // Unbiased estimator: mean within ~3 standard errors.
        // Per-run std ≈ n/√2, so std-err ≈ n/√(2·runs) ≈ 0.041 n.
        assert!(
            (mean - n as f64).abs() < 0.15 * n as f64,
            "mean {mean} vs {n}"
        );
    }

    #[test]
    fn averaging_reduces_error() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 10_000u64;
        let mut bank = MorrisCounter::with_accuracy(0.1);
        assert!(bank.copies() >= 50);
        for _ in 0..n {
            bank.increment(&mut rng);
        }
        let rel = (bank.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 0.35, "relative error {rel}");
    }

    #[test]
    fn exponent_is_log_of_count() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut c = MorrisCounter::new();
        for _ in 0..1 << 16 {
            c.increment(&mut rng);
        }
        let e = c.max_exponent();
        // Exponent should be near log2(n) = 16 (within a few doublings).
        assert!((10..=22).contains(&e), "exponent {e}");
        // And the space is gamma(e): a handful of bits.
        assert!(c.model_bits() <= 16);
    }

    #[test]
    fn zero_increments_zero_estimate() {
        let c = MorrisCounter::new();
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.max_exponent(), 0);
    }

    #[test]
    fn factor_four_accuracy_at_powers_of_two() {
        // Event E in Theorem 7's proof: correctness within a factor of 4
        // at every position, given correctness at powers of two. Empirical
        // proxy: a moderately averaged counter stays within 4x at every
        // power of two with high probability.
        let mut rng = StdRng::seed_from_u64(12);
        let mut c = MorrisCounter::with_copies(2.0, 16);
        let mut n = 0u64;
        let mut ok = true;
        for _ in 0..(1 << 14) {
            c.increment(&mut rng);
            n += 1;
            if n.is_power_of_two() && n >= 16 {
                let est = c.estimate();
                ok &= est >= n as f64 / 4.0 && est <= n as f64 * 4.0;
            }
        }
        assert!(ok, "estimate left the 4x envelope at a power of two");
    }
}
