//! The Lemma-1 sampler: select an item with probability `1/m` in
//! `O(log log m)` bits and `O(1)` time.
//!
//! Paper, Lemma 1: *"We generate a `(log₂ m)`-bit integer C uniformly at
//! random ... Choose the item only if ... C = 0."* The only persistent
//! state is the number of random bits to draw, `k = log₂ m`, which costs
//! `O(log k) = O(log log m)` bits. Proposition 2 (appendix B) shows this is
//! optimal for any algorithm sampling with probability `p ≤ 1/n`.

use hh_space::space::{delta_bits, SpaceUsage};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples each offered item independently with probability `2^{-k}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lemma1Sampler {
    /// Number of fair coin flips per decision; the sampler's entire state.
    k: u32,
}

impl Lemma1Sampler {
    /// Sampler with inclusion probability exactly `2^{-k}`.
    ///
    /// # Panics
    /// If `k > 64` (the paper's streams never exceed `2⁶⁴` items).
    pub fn with_log_denominator(k: u32) -> Self {
        assert!(k <= 64, "k must be at most 64");
        Self { k }
    }

    /// Sampler with probability `1/m` where `m` is rounded **up** to the
    /// next power of two (footnote 3: replacing `p` by the nearby
    /// power-of-two probability affects neither correctness nor the
    /// asymptotic performance).
    pub fn with_denominator(m: u64) -> Self {
        Self::with_log_denominator(hh_space::ceil_log2(m) as u32)
    }

    /// The inclusion probability `2^{-k}`.
    pub fn probability(&self) -> f64 {
        (0.5f64).powi(self.k as i32)
    }

    /// `k`, the log of the denominator.
    pub fn log_denominator(&self) -> u32 {
        self.k
    }

    /// One sampling decision: draws `k` fair bits, accepts iff all are
    /// zero. `O(1)` in the word RAM (one or zero 64-bit draws).
    #[inline]
    pub fn decide<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.k == 0 {
            return true;
        }
        let word: u64 = rng.gen();
        let mask = if self.k == 64 {
            u64::MAX
        } else {
            (1u64 << self.k) - 1
        };
        word & mask == 0
    }
}

impl SpaceUsage for Lemma1Sampler {
    fn model_bits(&self) -> u64 {
        // Stores k in a self-delimiting code: Θ(log k) = Θ(log log m).
        delta_bits(self.k as u64)
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probability_matches_empirical_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        for k in [1u32, 3, 6] {
            let s = Lemma1Sampler::with_log_denominator(k);
            let trials = 200_000u32;
            let hits = (0..trials).filter(|_| s.decide(&mut rng)).count() as f64;
            let rate = hits / trials as f64;
            let p = s.probability();
            assert!(
                (rate - p).abs() < 0.25 * p + 1e-4,
                "k={k}: rate {rate} vs p {p}"
            );
        }
    }

    #[test]
    fn k_zero_always_accepts() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Lemma1Sampler::with_log_denominator(0);
        assert!((0..100).all(|_| s.decide(&mut rng)));
        assert_eq!(s.probability(), 1.0);
    }

    #[test]
    fn with_denominator_rounds_up_to_pow2() {
        assert_eq!(Lemma1Sampler::with_denominator(1000).log_denominator(), 10);
        assert_eq!(Lemma1Sampler::with_denominator(1024).log_denominator(), 10);
        assert_eq!(Lemma1Sampler::with_denominator(1025).log_denominator(), 11);
        assert_eq!(Lemma1Sampler::with_denominator(1).log_denominator(), 0);
    }

    #[test]
    fn space_is_log_log_m() {
        // For m = 2^40, k = 40, and the state is Θ(log 40) bits — single
        // digits, far below log m.
        let s = Lemma1Sampler::with_denominator(1 << 40);
        assert!(s.model_bits() <= 16, "got {}", s.model_bits());
        // Doubling m many times barely moves the space.
        let s2 = Lemma1Sampler::with_denominator(1 << 60);
        assert!(s2.model_bits() - s.model_bits() <= 4);
    }

    #[test]
    fn k_64_uses_full_mask() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = Lemma1Sampler::with_log_denominator(64);
        // Probability 2^-64: should essentially never fire.
        assert!((0..10_000).all(|_| !s.decide(&mut rng)));
    }
}
