//! A blocking protocol client over TCP or Unix sockets.
//!
//! Thin by design: one request frame out, one response frame in, both
//! under the same [`ConnLimits`] deadlines the server uses (a stalled
//! *server* must not pin the client either). Every wire-level `Error`
//! response is rehydrated into a [`ProtocolError`] via
//! [`ProtocolError::from_wire`], so callers see one error type for
//! local failures and remote refusals alike; a [`Response::RetryAfter`]
//! received where the operation expected success becomes
//! [`ProtocolError::Overloaded`], keeping backoff handling in one
//! `match` arm.

use crate::conn::{ConnLimits, DeadlineConn, Transport};
use crate::facade::TenantSpec;
use crate::proto::{ProtocolError, RangeEntry, Request, Response, ServerHealth};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected protocol client.
pub struct Client {
    conn: DeadlineConn<Box<dyn Transport>>,
}

impl Client {
    /// Connects over TCP with default deadlines.
    pub fn connect_tcp(addr: SocketAddr) -> Result<Self, ProtocolError> {
        Self::connect_tcp_with(addr, ConnLimits::default())
    }

    /// Connects over TCP with explicit deadlines.
    pub fn connect_tcp_with(addr: SocketAddr, limits: ConnLimits) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::from_transport(Box::new(stream), limits))
    }

    /// Connects over a Unix domain socket with default deadlines.
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ProtocolError> {
        let stream = UnixStream::connect(path)?;
        Ok(Self::from_transport(
            Box::new(stream),
            ConnLimits::default(),
        ))
    }

    /// Wraps an already-connected transport.
    pub fn from_transport(transport: Box<dyn Transport>, limits: ConnLimits) -> Self {
        Self {
            conn: DeadlineConn::new(transport, limits),
        }
    }

    /// One request/response exchange. `Error` responses become `Err`;
    /// every other response is returned as-is.
    pub fn call(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        if let Err(e) = self.conn.write_frame(&req.encode()) {
            // A server refusing at the door writes one parting frame
            // (RetryAfter) and closes; our request write then breaks.
            // Salvage that frame before reporting the transport error.
            return match self.conn.read_frame() {
                Ok(Some(body)) => Self::unwrap_response(&body),
                _ => Err(e),
            };
        }
        let body = self.conn.read_frame()?.ok_or(ProtocolError::Truncated)?;
        Self::unwrap_response(&body)
    }

    fn unwrap_response(body: &[u8]) -> Result<Response, ProtocolError> {
        match Response::decode(body)? {
            Response::Error { code, message } => Err(ProtocolError::from_wire(code, message)),
            rsp => Ok(rsp),
        }
    }

    /// Folds a [`Response::RetryAfter`] into [`ProtocolError::Overloaded`]
    /// for operations that expect a definite outcome.
    fn call_expecting(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        match self.call(req)? {
            Response::RetryAfter { millis } => Err(ProtocolError::Overloaded {
                retry_after_ms: millis,
            }),
            rsp => Ok(rsp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ProtocolError> {
        match self.call_expecting(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ProtocolError::UnexpectedResponse("ping wanted Pong")),
        }
    }

    /// Creates a tenant.
    pub fn create(&mut self, tenant: &str, spec: TenantSpec) -> Result<(), ProtocolError> {
        let req = Request::Create {
            tenant: tenant.to_string(),
            spec,
        };
        match self.call_expecting(&req)? {
            Response::Created => Ok(()),
            _ => Err(ProtocolError::UnexpectedResponse("create wanted Created")),
        }
    }

    /// Ingests a batch into one shard; returns items accepted.
    /// Overload comes back as [`ProtocolError::Overloaded`] with the
    /// server's backoff hint.
    pub fn ingest(
        &mut self,
        tenant: &str,
        shard: u32,
        items: &[u64],
    ) -> Result<u64, ProtocolError> {
        let req = Request::Ingest {
            tenant: tenant.to_string(),
            shard,
            items: items.to_vec(),
        };
        match self.call_expecting(&req)? {
            Response::Ingested { accepted } => Ok(accepted),
            _ => Err(ProtocolError::UnexpectedResponse("ingest wanted Ingested")),
        }
    }

    /// Reads the tenant's report: `(item, estimate)` pairs plus the
    /// serving epoch.
    pub fn query(&mut self, tenant: &str) -> Result<(Vec<(u64, f64)>, u64), ProtocolError> {
        let req = Request::Query {
            tenant: tenant.to_string(),
        };
        match self.call_expecting(&req)? {
            Response::Report { entries, epoch } => Ok((entries, epoch)),
            _ => Err(ProtocolError::UnexpectedResponse("query wanted Report")),
        }
    }

    /// Estimates the mass of the inclusive id range `[lo, hi]` on a
    /// dyadic tenant. Returns `(estimate, epoch)`.
    pub fn range_query(
        &mut self,
        tenant: &str,
        lo: u64,
        hi: u64,
    ) -> Result<(f64, u64), ProtocolError> {
        let req = Request::RangeQuery {
            tenant: tenant.to_string(),
            lo,
            hi,
        };
        match self.call_expecting(&req)? {
            Response::RangeEstimate { estimate, epoch } => Ok((estimate, epoch)),
            _ => Err(ProtocolError::UnexpectedResponse(
                "range_query wanted RangeEstimate",
            )),
        }
    }

    /// Reads a dyadic tenant's heavy intervals at threshold `phi` as
    /// `(level, lo, hi, estimate)` entries plus the serving epoch.
    pub fn heavy_ranges(
        &mut self,
        tenant: &str,
        phi: f64,
    ) -> Result<(Vec<RangeEntry>, u64), ProtocolError> {
        let req = Request::HeavyRanges {
            tenant: tenant.to_string(),
            phi,
        };
        match self.call_expecting(&req)? {
            Response::Ranges { entries, epoch } => Ok((entries, epoch)),
            _ => Err(ProtocolError::UnexpectedResponse(
                "heavy_ranges wanted Ranges",
            )),
        }
    }

    /// Fetches server health.
    pub fn health(&mut self) -> Result<ServerHealth, ProtocolError> {
        match self.call_expecting(&Request::Health)? {
            Response::Health(h) => Ok(h),
            _ => Err(ProtocolError::UnexpectedResponse("health wanted Health")),
        }
    }

    /// Forces a checkpoint round; returns tenants persisted.
    pub fn checkpoint(&mut self) -> Result<u64, ProtocolError> {
        match self.call_expecting(&Request::Checkpoint)? {
            Response::Checkpointed { tenants } => Ok(tenants),
            _ => Err(ProtocolError::UnexpectedResponse(
                "checkpoint wanted Checkpointed",
            )),
        }
    }

    /// Fetches the tenant's merged summary as portable snapshot bytes.
    pub fn snapshot(&mut self, tenant: &str) -> Result<Vec<u8>, ProtocolError> {
        let req = Request::Snapshot {
            tenant: tenant.to_string(),
        };
        match self.call_expecting(&req)? {
            Response::Snapshot { bytes } => Ok(bytes),
            _ => Err(ProtocolError::UnexpectedResponse(
                "snapshot wanted Snapshot",
            )),
        }
    }

    /// Recovers a quarantined tenant; returns shards rebuilt.
    pub fn recover(&mut self, tenant: &str) -> Result<u64, ProtocolError> {
        let req = Request::Recover {
            tenant: tenant.to_string(),
        };
        match self.call_expecting(&req)? {
            Response::Recovered { shards } => Ok(shards),
            _ => Err(ProtocolError::UnexpectedResponse(
                "recover wanted Recovered",
            )),
        }
    }

    /// Asks the server to checkpoint and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        match self.call_expecting(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ProtocolError::UnexpectedResponse(
                "shutdown wanted ShuttingDown",
            )),
        }
    }

    /// Ingests with bounded retry on overload: sleeps the server's
    /// hint and tries again, up to `attempts`.
    pub fn ingest_retry(
        &mut self,
        tenant: &str,
        shard: u32,
        items: &[u64],
        attempts: u32,
    ) -> Result<u64, ProtocolError> {
        let mut last = ProtocolError::Overloaded { retry_after_ms: 0 };
        for _ in 0..attempts.max(1) {
            match self.ingest(tenant, shard, items) {
                Err(ProtocolError::Overloaded { retry_after_ms }) => {
                    last = ProtocolError::Overloaded { retry_after_ms };
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.min(250)));
                }
                other => return other,
            }
        }
        Err(last)
    }
}
