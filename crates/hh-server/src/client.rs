//! A blocking protocol client over TCP or Unix sockets.
//!
//! Thin by design: one request frame out, one response frame in, both
//! under the same [`ConnLimits`] deadlines the server uses (a stalled
//! *server* must not pin the client either). Every wire-level `Error`
//! response is rehydrated into a [`ProtocolError`] via
//! [`ProtocolError::from_wire`], so callers see one error type for
//! local failures and remote refusals alike; a [`Response::RetryAfter`]
//! received where the operation expected success becomes
//! [`ProtocolError::Overloaded`], keeping backoff handling in one
//! `match` arm.
//!
//! # Exactly-once retries
//!
//! Every client carries a process-unique identity and numbers its
//! ingest requests. A transport failure after the request left is
//! ambiguous — the server may or may not have applied the batch — so
//! [`Client::ingest_reliable`] reconnects and resends under the **same**
//! request number: the server's dedup table replays the original ack if
//! the batch landed, applies it if it did not, and either way the batch
//! counts exactly once. Overload is honored too (the server's
//! `RetryAfter` hint), with jittered exponential backoff between
//! attempts so a thundering herd of retriers spreads out.

use crate::conn::{ConnLimits, DeadlineConn, Transport};
use crate::facade::TenantSpec;
use crate::proto::{ProtocolError, RangeEntry, Request, Response, ServerHealth};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-process client counter; mixed with the pid into client ids.
static NEXT_CLIENT: AtomicU64 = AtomicU64::new(1);

/// SplitMix64 finalizer: one invertible shuffle, so distinct
/// `(pid, counter)` pairs become well-spread nonzero ids.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fresh_client_id() -> u64 {
    let n = NEXT_CLIENT.fetch_add(1, Ordering::Relaxed);
    let id = mix64((u64::from(std::process::id()) << 32) | n);
    // Id 0 is the anonymous (never-deduplicated) client on the wire.
    id.max(1)
}

/// How [`Client::ingest_reliable`] paces itself.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
        }
    }
}

/// How to re-establish the transport after a failure.
enum Remote {
    Tcp(SocketAddr),
    Uds(PathBuf),
    /// Handed a raw transport; reconnect is impossible.
    Opaque,
}

/// A connected protocol client.
pub struct Client {
    conn: DeadlineConn<Box<dyn Transport>>,
    limits: ConnLimits,
    remote: Remote,
    /// Process-unique identity for server-side exactly-once dedup.
    client_id: u64,
    /// Next ingest request number (fresh per logical batch, reused
    /// across retries of the same batch).
    next_req_seq: u64,
}

impl Client {
    /// Connects over TCP with default deadlines.
    pub fn connect_tcp(addr: SocketAddr) -> Result<Self, ProtocolError> {
        Self::connect_tcp_with(addr, ConnLimits::default())
    }

    /// Connects over TCP with explicit deadlines.
    pub fn connect_tcp_with(addr: SocketAddr, limits: ConnLimits) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut c = Self::from_transport(Box::new(stream), limits);
        c.remote = Remote::Tcp(addr);
        Ok(c)
    }

    /// Connects over a Unix domain socket with default deadlines.
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ProtocolError> {
        let stream = UnixStream::connect(&path)?;
        let mut c = Self::from_transport(Box::new(stream), ConnLimits::default());
        c.remote = Remote::Uds(path.as_ref().to_path_buf());
        Ok(c)
    }

    /// Wraps an already-connected transport (no reconnect support —
    /// [`Client::ingest_reliable`] still retries over the live
    /// connection).
    pub fn from_transport(transport: Box<dyn Transport>, limits: ConnLimits) -> Self {
        Self {
            conn: DeadlineConn::new(transport, limits),
            limits,
            remote: Remote::Opaque,
            client_id: fresh_client_id(),
            next_req_seq: 1,
        }
    }

    /// This client's identity as the server's dedup table sees it.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Re-establishes the transport to the remembered endpoint.
    fn reconnect(&mut self) -> Result<(), ProtocolError> {
        let transport: Box<dyn Transport> = match &self.remote {
            Remote::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Box::new(stream)
            }
            Remote::Uds(path) => Box::new(UnixStream::connect(path)?),
            Remote::Opaque => {
                return Err(ProtocolError::Io(
                    std::io::ErrorKind::NotConnected,
                    "client has no endpoint to reconnect to".to_string(),
                ))
            }
        };
        self.conn = DeadlineConn::new(transport, self.limits);
        Ok(())
    }

    /// One request/response exchange. `Error` responses become `Err`;
    /// every other response is returned as-is.
    pub fn call(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        if let Err(e) = self.conn.write_frame(&req.encode()) {
            // A server refusing at the door writes one parting frame
            // (RetryAfter) and closes; our request write then breaks.
            // Salvage that frame before reporting the transport error.
            return match self.conn.read_frame() {
                Ok(Some(body)) => Self::unwrap_response(&body),
                _ => Err(e),
            };
        }
        let body = self.conn.read_frame()?.ok_or(ProtocolError::Truncated)?;
        Self::unwrap_response(&body)
    }

    fn unwrap_response(body: &[u8]) -> Result<Response, ProtocolError> {
        match Response::decode(body)? {
            Response::Error { code, message } => Err(ProtocolError::from_wire(code, message)),
            rsp => Ok(rsp),
        }
    }

    /// Folds a [`Response::RetryAfter`] into [`ProtocolError::Overloaded`]
    /// for operations that expect a definite outcome.
    fn call_expecting(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        match self.call(req)? {
            Response::RetryAfter { millis } => Err(ProtocolError::Overloaded {
                retry_after_ms: millis,
            }),
            rsp => Ok(rsp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ProtocolError> {
        match self.call_expecting(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ProtocolError::UnexpectedResponse("ping wanted Pong")),
        }
    }

    /// Creates a tenant.
    pub fn create(&mut self, tenant: &str, spec: TenantSpec) -> Result<(), ProtocolError> {
        let req = Request::Create {
            tenant: tenant.to_string(),
            spec,
        };
        match self.call_expecting(&req)? {
            Response::Created => Ok(()),
            _ => Err(ProtocolError::UnexpectedResponse("create wanted Created")),
        }
    }

    /// Ingests a batch into one shard; returns items accepted.
    /// Overload comes back as [`ProtocolError::Overloaded`] with the
    /// server's backoff hint. The request is numbered (so a later
    /// manual resend under [`Client::ingest_reliable`] semantics is
    /// possible) but *not* retried here.
    pub fn ingest(
        &mut self,
        tenant: &str,
        shard: u32,
        items: &[u64],
    ) -> Result<u64, ProtocolError> {
        let req_seq = self.next_req_seq;
        self.next_req_seq += 1;
        self.ingest_with_seq(tenant, shard, req_seq, items)
    }

    /// One wire exchange under an explicit request number.
    fn ingest_with_seq(
        &mut self,
        tenant: &str,
        shard: u32,
        req_seq: u64,
        items: &[u64],
    ) -> Result<u64, ProtocolError> {
        let req = Request::Ingest {
            tenant: tenant.to_string(),
            shard,
            client: self.client_id,
            req_seq,
            items: items.to_vec(),
        };
        match self.call_expecting(&req)? {
            Response::Ingested { accepted } => Ok(accepted),
            _ => Err(ProtocolError::UnexpectedResponse("ingest wanted Ingested")),
        }
    }

    /// Ingests with reconnect-and-retry: transport failures
    /// (connection severed, truncation, missed deadline) reconnect and
    /// resend under the **same** request number, so the server's dedup
    /// applies the batch exactly once no matter where the first attempt
    /// died; overload honors the server's backoff hint. Backoff between
    /// attempts is exponential with deterministic jitter. Every other
    /// error is definitive and returned immediately.
    pub fn ingest_reliable(
        &mut self,
        tenant: &str,
        shard: u32,
        items: &[u64],
        policy: &RetryPolicy,
    ) -> Result<u64, ProtocolError> {
        let req_seq = self.next_req_seq;
        self.next_req_seq += 1;
        // Deterministic jitter stream, de-correlated across clients and
        // batches.
        let mut rng = mix64(self.client_id ^ req_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut backoff = policy.base;
        let mut last = ProtocolError::Overloaded { retry_after_ms: 0 };
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                // Full jitter over [backoff/2, backoff]: spread without
                // ever retrying effectively immediately.
                rng = mix64(rng);
                let half = backoff.as_micros() as u64 / 2;
                let wait = Duration::from_micros(half + rng % half.max(1));
                std::thread::sleep(wait);
                backoff = (backoff * 2).min(policy.cap);
            }
            match self.ingest_with_seq(tenant, shard, req_seq, items) {
                Ok(accepted) => return Ok(accepted),
                Err(e) => match e {
                    ProtocolError::Io(..)
                    | ProtocolError::Truncated
                    | ProtocolError::DeadlineExceeded => {
                        last = e;
                        // Ambiguous outcome: reconnect and let the
                        // dedup table disambiguate. A failed reconnect
                        // just burns this attempt; the next one tries
                        // again.
                        let _ = self.reconnect();
                    }
                    ProtocolError::Overloaded { retry_after_ms } => {
                        // The server asked for a specific pause; take
                        // the longer of its hint and our backoff.
                        backoff = backoff.max(Duration::from_millis(retry_after_ms.min(250)));
                        last = ProtocolError::Overloaded { retry_after_ms };
                    }
                    definitive => return Err(definitive),
                },
            }
        }
        Err(last)
    }

    /// Reads the tenant's report: `(item, estimate)` pairs plus the
    /// serving epoch.
    pub fn query(&mut self, tenant: &str) -> Result<(Vec<(u64, f64)>, u64), ProtocolError> {
        let req = Request::Query {
            tenant: tenant.to_string(),
        };
        match self.call_expecting(&req)? {
            Response::Report { entries, epoch } => Ok((entries, epoch)),
            _ => Err(ProtocolError::UnexpectedResponse("query wanted Report")),
        }
    }

    /// Estimates the mass of the inclusive id range `[lo, hi]` on a
    /// dyadic tenant. Returns `(estimate, epoch)`.
    pub fn range_query(
        &mut self,
        tenant: &str,
        lo: u64,
        hi: u64,
    ) -> Result<(f64, u64), ProtocolError> {
        let req = Request::RangeQuery {
            tenant: tenant.to_string(),
            lo,
            hi,
        };
        match self.call_expecting(&req)? {
            Response::RangeEstimate { estimate, epoch } => Ok((estimate, epoch)),
            _ => Err(ProtocolError::UnexpectedResponse(
                "range_query wanted RangeEstimate",
            )),
        }
    }

    /// Reads a dyadic tenant's heavy intervals at threshold `phi` as
    /// `(level, lo, hi, estimate)` entries plus the serving epoch.
    pub fn heavy_ranges(
        &mut self,
        tenant: &str,
        phi: f64,
    ) -> Result<(Vec<RangeEntry>, u64), ProtocolError> {
        let req = Request::HeavyRanges {
            tenant: tenant.to_string(),
            phi,
        };
        match self.call_expecting(&req)? {
            Response::Ranges { entries, epoch } => Ok((entries, epoch)),
            _ => Err(ProtocolError::UnexpectedResponse(
                "heavy_ranges wanted Ranges",
            )),
        }
    }

    /// Fetches server health.
    pub fn health(&mut self) -> Result<ServerHealth, ProtocolError> {
        match self.call_expecting(&Request::Health)? {
            Response::Health(h) => Ok(h),
            _ => Err(ProtocolError::UnexpectedResponse("health wanted Health")),
        }
    }

    /// Forces a checkpoint round; returns tenants persisted.
    pub fn checkpoint(&mut self) -> Result<u64, ProtocolError> {
        match self.call_expecting(&Request::Checkpoint)? {
            Response::Checkpointed { tenants } => Ok(tenants),
            _ => Err(ProtocolError::UnexpectedResponse(
                "checkpoint wanted Checkpointed",
            )),
        }
    }

    /// Fetches the tenant's merged summary as portable snapshot bytes.
    pub fn snapshot(&mut self, tenant: &str) -> Result<Vec<u8>, ProtocolError> {
        let req = Request::Snapshot {
            tenant: tenant.to_string(),
        };
        match self.call_expecting(&req)? {
            Response::Snapshot { bytes } => Ok(bytes),
            _ => Err(ProtocolError::UnexpectedResponse(
                "snapshot wanted Snapshot",
            )),
        }
    }

    /// Recovers a quarantined tenant; returns shards rebuilt.
    pub fn recover(&mut self, tenant: &str) -> Result<u64, ProtocolError> {
        let req = Request::Recover {
            tenant: tenant.to_string(),
        };
        match self.call_expecting(&req)? {
            Response::Recovered { shards } => Ok(shards),
            _ => Err(ProtocolError::UnexpectedResponse(
                "recover wanted Recovered",
            )),
        }
    }

    /// Asks the server to checkpoint and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        match self.call_expecting(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ProtocolError::UnexpectedResponse(
                "shutdown wanted ShuttingDown",
            )),
        }
    }

    /// Ingests with bounded retry on overload: sleeps the server's
    /// hint and tries again, up to `attempts`.
    pub fn ingest_retry(
        &mut self,
        tenant: &str,
        shard: u32,
        items: &[u64],
        attempts: u32,
    ) -> Result<u64, ProtocolError> {
        let mut last = ProtocolError::Overloaded { retry_after_ms: 0 };
        for _ in 0..attempts.max(1) {
            match self.ingest(tenant, shard, items) {
                Err(ProtocolError::Overloaded { retry_after_ms }) => {
                    last = ProtocolError::Overloaded { retry_after_ms };
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.min(250)));
                }
                other => return other,
            }
        }
        Err(last)
    }
}
