//! The daemon: accept loops, admission control, the tenant registry,
//! periodic checkpointing, and crash recovery.
//!
//! # Threads
//!
//! One acceptor thread per server, one handler thread per live
//! connection, one checkpointer thread ticking at the configured
//! cadence. Handler threads are bounded by
//! [`ServerConfig::max_connections`] — a connection over that budget
//! gets a single [`Response::RetryAfter`] frame and is closed before a
//! handler thread is ever spawned, so a connection flood degrades into
//! polite refusals instead of thread exhaustion.
//!
//! # Failure containment
//!
//! A connection can only hurt itself: protocol damage (bad checksum,
//! hostile length, truncation) either gets a structured
//! [`Response::Error`] on an intact frame boundary or drops that one
//! connection; deadlines bound every read and write
//! ([`crate::conn`]); tenant faults quarantine the tenant, not the
//! server ([`crate::tenant`]); and corrupt on-disk state quarantines
//! the tenant directory at boot ([`crate::store`]). [`ServerHealth`]
//! surfaces every one of those events.
//!
//! # Lifecycle
//!
//! [`Server::start`] binds, recovers from the store, and returns once
//! serving. [`Server::shutdown`] drains: the acceptor and checkpointer
//! exit, handler threads wind down (they poll the stop flag between
//! frames), and only then the final checkpoint runs — checkpoint
//! rounds are single-flight, so it can never interleave with a round a
//! handler started. [`Server::kill`] is the crash simulation:
//! everything stops **without** a final checkpoint. Under
//! [`Durability::Wal`] (the default) that loses *nothing acked* —
//! recovery restores the last checkpoint bundle and replays the WAL
//! tail over it; under [`Durability::CheckpointOnly`] whatever
//! ingested after the last checkpoint is lost — exactly the windows
//! the recovery tests measure.

use crate::conn::{ConnLimits, DeadlineConn, Transport};
use crate::durability::{BankSnapshot, Durability, IngestFrame};
use crate::facade::TenantSpec;
use crate::proto::{validate_tenant_name, ProtocolError, Request, Response, ServerHealth};
use crate::store::{RecoveredTenant, Store};
use crate::tenant::{Tenant, RETRY_AFTER_MS};
use hh_wal::{Wal, WalConfig};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// TCP; use port 0 to let the OS pick (see [`Server::local_addr`]).
    Tcp(SocketAddr),
    /// Unix domain socket at this path (stale socket files are
    /// replaced).
    Unix(PathBuf),
}

/// Tunables; the defaults are production-shaped, tests use
/// [`ServerConfig::fast`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Snapshot directory for checkpoints and recovery.
    pub store_root: PathBuf,
    /// Per-connection deadlines.
    pub limits: ConnLimits,
    /// Handler-thread budget; connections over it are refused with
    /// `RetryAfter`.
    pub max_connections: usize,
    /// Resident-summary budget; exceeding it evicts
    /// least-recently-used tenants to snapshot.
    pub memory_budget_bytes: u64,
    /// Checkpoint cadence.
    pub checkpoint_every: Duration,
    /// How long one checkpoint round waits on a tenant's flush barrier
    /// before falling back to last-good bytes for the shards still
    /// pending. Rounds run under the registry lock, so this bound is
    /// what keeps one wedged shard worker from stalling every request
    /// on the server.
    pub checkpoint_timeout: Duration,
    /// Whether acked ingests are write-ahead logged (zero acked loss
    /// on a kill) or only as durable as the last checkpoint.
    pub durability: Durability,
}

impl ServerConfig {
    /// A config rooted at `store_root` with default knobs.
    pub fn new(store_root: impl Into<PathBuf>) -> Self {
        Self {
            store_root: store_root.into(),
            limits: ConnLimits::default(),
            max_connections: 64,
            memory_budget_bytes: 256 << 20,
            checkpoint_every: Duration::from_secs(30),
            checkpoint_timeout: Duration::from_secs(2),
            durability: Durability::Wal {
                fsync: hh_wal::FsyncPolicy::GroupCommit(Duration::from_millis(1)),
                segment_bytes: 4 << 20,
            },
        }
    }

    /// Test-shaped config: tight deadlines, fast checkpoints, per-batch
    /// fsync over small segments so kill tests cross rotations.
    pub fn fast(store_root: impl Into<PathBuf>) -> Self {
        Self {
            limits: ConnLimits::fast(),
            max_connections: 8,
            checkpoint_every: Duration::from_millis(200),
            durability: Durability::Wal {
                fsync: hh_wal::FsyncPolicy::PerBatch,
                segment_bytes: 64 << 10,
            },
            ..Self::new(store_root)
        }
    }

    fn wal_config(&self, dir: PathBuf) -> Option<WalConfig> {
        match self.durability {
            Durability::CheckpointOnly => None,
            Durability::Wal {
                fsync,
                segment_bytes,
            } => {
                let mut cfg = WalConfig::new(dir);
                cfg.fsync = fsync;
                cfg.segment_bytes = segment_bytes;
                Some(cfg)
            }
        }
    }
}

/// A registry slot: a tenant is live in memory, evicted to disk, or
/// broken (its disk state failed to rehydrate).
enum Slot {
    Live(Box<Tenant>),
    /// On disk only; rehydrated on next touch.
    Evicted,
    /// Rehydration failed (reason recorded); requests are refused as
    /// quarantined until an operator intervenes on disk.
    Broken(String),
}

struct Registry {
    slots: HashMap<String, Slot>,
    /// Logical LRU clock: bumped on every touch.
    clock: u64,
}

/// Monotonic event counters, shared across handler threads.
#[derive(Default)]
struct Stats {
    accept_rejections: AtomicU64,
    evictions: AtomicU64,
    checkpoints: AtomicU64,
    admission_shed: AtomicU64,
}

struct Shared {
    config: ServerConfig,
    store: Store,
    registry: Mutex<Registry>,
    stats: Stats,
    active: AtomicU64,
    /// Tenants lost at boot (quarantined on disk), surfaced in health.
    boot_lost: Vec<String>,
    recovered_tenants: u64,
    /// Set by shutdown/kill; the acceptor, handlers, and checkpointer
    /// all watch it. `Arc`'d so each connection's deadline machinery
    /// can poll it between frames ([`DeadlineConn::with_stop`]).
    stopping: Arc<AtomicBool>,
    /// True on graceful shutdown only: the final checkpoint runs.
    graceful: AtomicBool,
    /// Wakes the checkpointer early on shutdown.
    tick: Condvar,
    tick_lock: Mutex<()>,
    /// Serializes checkpoint rounds. Rounds from different threads
    /// (periodic, protocol `Checkpoint`/`Shutdown`, eviction, final)
    /// write through the same `<file>.tmp` paths; two rounds in flight
    /// would steal each other's temp files mid-rename and one round's
    /// saves would silently vanish.
    ///
    /// Lock order: `ckpt_lock` before `registry`, everywhere both are
    /// held (`checkpoint_all`, the eviction path). Never acquire
    /// `ckpt_lock` while holding the registry lock.
    ckpt_lock: Mutex<()>,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Box<dyn Transport>> {
        match self {
            Self::Tcp(l) => {
                let (s, _) = l.accept()?;
                // Frames are written whole and waited on synchronously;
                // leaving Nagle on costs a delayed-ACK round (~40ms)
                // per request on loopback.
                s.set_nodelay(true)?;
                Ok(Box::new(s))
            }
            Self::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Box::new(s))
            }
        }
    }
}

/// A running daemon. Dropping without [`Server::shutdown`] /
/// [`Server::kill`] behaves like a kill (no final checkpoint).
pub struct Server {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    local_addr: Option<SocketAddr>,
    acceptor: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `endpoint`, recovers every verifiable tenant from the
    /// store, and starts serving.
    pub fn start(config: ServerConfig, endpoint: Endpoint) -> std::io::Result<Self> {
        let store = Store::open(&config.store_root)?;
        let boot = store.load_all()?;
        let mut slots = HashMap::new();
        let recovered_tenants = boot.recovered.len() as u64;
        for t in boot.recovered {
            let name = t.name.clone();
            match hydrate(&config, &store, t) {
                Ok(tenant) => {
                    slots.insert(name, Slot::Live(Box::new(tenant)));
                }
                Err(e) => {
                    slots.insert(name, Slot::Broken(e));
                }
            }
        }
        let boot_lost = boot.lost.into_iter().map(|(name, _)| name).collect();

        let listener = match &endpoint {
            Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        let local_addr = match &listener {
            Listener::Tcp(l) => Some(l.local_addr()?),
            Listener::Unix(_) => None,
        };

        let shared = Arc::new(Shared {
            config,
            store,
            registry: Mutex::new(Registry { slots, clock: 0 }),
            stats: Stats::default(),
            active: AtomicU64::new(0),
            boot_lost,
            recovered_tenants,
            stopping: Arc::new(AtomicBool::new(false)),
            graceful: AtomicBool::new(false),
            tick: Condvar::new(),
            tick_lock: Mutex::new(()),
            ckpt_lock: Mutex::new(()),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hh-server-accept".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        let checkpointer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hh-server-checkpoint".into())
                .spawn(move || checkpoint_loop(&shared))?
        };
        Ok(Self {
            shared,
            endpoint,
            local_addr,
            acceptor: Some(acceptor),
            checkpointer: Some(checkpointer),
        })
    }

    /// The bound TCP address (None for Unix endpoints).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// A handle for in-process observation and fault drills.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Wakes the acceptor out of its blocking `accept` by connecting
    /// once, and the checkpointer out of its wait.
    fn wake(&self) {
        match &self.endpoint {
            Endpoint::Tcp(_) => {
                if let Some(addr) = self.local_addr {
                    let _ = TcpStream::connect(addr);
                }
            }
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        self.shared.tick.notify_all();
    }

    fn stop(mut self, graceful: bool) {
        self.shared.graceful.store(graceful, Ordering::SeqCst);
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.wake();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.checkpointer.take() {
            let _ = h.join();
        }
        if graceful {
            // Drain handler threads before the final checkpoint. They
            // notice `stopping` within one io tick between frames (and
            // within one frame budget mid-frame), but the one that
            // served a protocol `Shutdown` may still be inside its own
            // checkpoint round — if the final round below overlapped
            // it, a restart could boot from files the straggler is
            // still writing. The cap only guards against a stuck
            // handler; it is never reached on the healthy path.
            let limits = self.shared.config.limits;
            let cap = Instant::now() + limits.idle + limits.frame + Duration::from_secs(10);
            while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < cap {
                std::thread::sleep(Duration::from_millis(1));
            }
            checkpoint_all(&self.shared);
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Graceful shutdown: stop accepting, run a final checkpoint, join
    /// the service threads.
    pub fn shutdown(self) {
        self.stop(true);
    }

    /// Crash simulation: stop everything with **no** final checkpoint.
    /// State since the last periodic checkpoint is lost, exactly as in
    /// a real `kill -9` — the recovery tests measure that window.
    pub fn kill(self) {
        self.stop(false);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_none() {
            return; // already stopped
        }
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Best-effort wake so the joins below terminate.
        match &self.endpoint {
            Endpoint::Tcp(_) => {
                if let Some(addr) = self.local_addr {
                    let _ = TcpStream::connect(addr);
                }
            }
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        self.shared.tick.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.checkpointer.take() {
            let _ = h.join();
        }
    }
}

/// In-process observation and drill hooks (tests, operators embedding
/// the server).
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The same health the `Health` protocol op serves.
    pub fn health(&self) -> ServerHealth {
        build_health(&self.shared)
    }

    /// Forces a checkpoint round now. Returns tenants persisted.
    pub fn checkpoint_now(&self) -> u64 {
        checkpoint_all(&self.shared)
    }

    /// Injects a quarantine fault into a live tenant (drills the
    /// refuse-writes/serve-reads path deterministically). Errors if
    /// the tenant is unknown or not resident.
    pub fn inject_tenant_fault(&self, name: &str, reason: &str) -> Result<(), ProtocolError> {
        let mut reg = lock_registry(&self.shared);
        match reg.slots.get_mut(name) {
            Some(Slot::Live(t)) => {
                t.inject_fault(reason);
                Ok(())
            }
            Some(_) => Err(ProtocolError::BadRequest(format!(
                "tenant {name:?} is not resident"
            ))),
            None => Err(ProtocolError::UnknownTenant(name.to_string())),
        }
    }
}

fn lock_registry(shared: &Shared) -> std::sync::MutexGuard<'_, Registry> {
    shared
        .registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Rebuilds a tenant from its recovered checkpoint bundle and — when
/// the server runs with a WAL — replays the log tail over it. Shared
/// by the boot scan and eviction rehydration, so a kill at *any* point
/// recovers through exactly one code path.
///
/// Fail-closed: a WAL that fails structural validation, or a
/// crc-valid record whose frame does not decode or contradicts the
/// spec, turns the whole tenant into an error — the caller marks the
/// slot `Broken` (write-and-read quarantine) and every other tenant
/// keeps serving.
fn hydrate(config: &ServerConfig, store: &Store, rec: RecoveredTenant) -> Result<Tenant, String> {
    let RecoveredTenant {
        name,
        spec,
        shards,
        hwms,
        dedup,
    } = rec;
    let mut tenant = Tenant::from_bank(spec, shards).map_err(|e| e.to_string())?;
    tenant.restore_durability(&hwms, &dedup);
    if let Some(wal_cfg) = config.wal_config(store.wal_dir(&name)) {
        // A log reopened after a crash must never re-issue a sequence
        // number the bundle's marks already cover — the hint floors
        // the next sequence past them even if the tail itself was
        // never durable (checkpoint syncs the log first, so durable
        // tails always reach at least the marks; the hint guards the
        // fresh-log edge).
        let hint = hwms.iter().copied().max().unwrap_or(0) + 1;
        let (wal, replay) =
            Wal::open(wal_cfg, hint).map_err(|e| format!("wal recovery failed: {e}"))?;
        for record in &replay.records {
            let frame = IngestFrame::decode(&record.payload)
                .map_err(|e| format!("wal record {} carries a malformed frame: {e}", record.seq))?;
            tenant
                .replay_frame(record.seq, &frame)
                .map_err(|e| format!("wal replay failed: {e}"))?;
        }
        tenant.attach_wal(Arc::new(wal));
    }
    Ok(tenant)
}

/// Releases one admission slot on drop, so a handler that unwinds
/// (a panic anywhere under `serve_conn`) cannot leak capacity.
struct ActiveSlot(Arc<Shared>);

impl Drop for ActiveSlot {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &Listener) {
    loop {
        let conn = listener.accept();
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let transport = match conn {
            Ok(t) => t,
            Err(_) => {
                // A persistent accept failure (EMFILE under fd
                // exhaustion, say) must degrade into a paced retry,
                // not a 100%-CPU busy loop on the acceptor.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        // Admission control: over-budget connections get one RetryAfter
        // frame and the door, on the acceptor thread — no handler
        // thread is spent on them.
        let active = shared.active.load(Ordering::SeqCst);
        if active >= shared.config.max_connections as u64 {
            shared
                .stats
                .accept_rejections
                .fetch_add(1, Ordering::Relaxed);
            let mut conn = DeadlineConn::new(transport, shared.config.limits);
            let rsp = Response::RetryAfter {
                millis: RETRY_AFTER_MS,
            };
            let _ = conn.write_frame(&rsp.encode());
            let _ = conn.get_ref().shutdown();
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let worker_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("hh-server-conn".into())
            .spawn(move || {
                // Built before serve_conn so the decrement fires even
                // if the handler unwinds.
                let _slot = ActiveSlot(Arc::clone(&worker_shared));
                serve_conn(&worker_shared, transport);
            });
        if spawned.is_err() {
            // The closure never ran (and its guard was never built):
            // release the slot here.
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn serve_conn(shared: &Arc<Shared>, transport: Box<dyn Transport>) {
    let mut conn =
        DeadlineConn::new(transport, shared.config.limits).with_stop(Arc::clone(&shared.stopping));
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let body = match conn.read_frame() {
            Ok(Some(body)) => body,
            // Clean hang-up between frames.
            Ok(None) => return,
            Err(e @ ProtocolError::FrameTooLarge { .. }) => {
                // The stream position is known (nothing was read past
                // the prefix), but the peer is mid-send of a frame we
                // refuse to buffer: answer and cut it loose.
                let _ = conn.write_frame(&Response::from_error(&e).encode());
                let _ = conn.get_ref().shutdown();
                return;
            }
            // Deadline expiry, truncation, transport failure: the
            // stream is damaged or the peer is hostile — drop it.
            Err(_) => {
                let _ = conn.get_ref().shutdown();
                return;
            }
        };
        // The frame arrived whole, so the boundary is intact: a body
        // that fails the codec gets a structured reply and the
        // connection lives on.
        let (rsp, stop_after) = match Request::decode(&body) {
            Ok(Request::Shutdown) => (Response::ShuttingDown, true),
            Ok(req) => (handle_request(shared, &req), false),
            Err(e) => (Response::from_error(&e), false),
        };
        if conn.write_frame(&rsp.encode()).is_err() {
            return;
        }
        if stop_after {
            shared.graceful.store(true, Ordering::SeqCst);
            shared.stopping.store(true, Ordering::SeqCst);
            shared.tick.notify_all();
            // Checkpoint here, on this handler thread, so a client
            // whose `Shutdown` was acked gets durability even if the
            // operator never calls `Server::shutdown`. The round is
            // single-flight (`ckpt_lock`), and a concurrent graceful
            // stop drains this thread before its own final round.
            checkpoint_all(shared);
            return;
        }
    }
}

fn handle_request(shared: &Arc<Shared>, req: &Request) -> Response {
    match dispatch(shared, req) {
        Ok(rsp) => rsp,
        Err(e @ ProtocolError::Overloaded { retry_after_ms }) => {
            let _ = e;
            Response::RetryAfter {
                millis: retry_after_ms,
            }
        }
        Err(e) => Response::from_error(&e),
    }
}

fn dispatch(shared: &Arc<Shared>, req: &Request) -> Result<Response, ProtocolError> {
    match req {
        Request::Ping => Ok(Response::Pong),
        Request::Health => Ok(Response::Health(build_health(shared))),
        Request::Checkpoint => Ok(Response::Checkpointed {
            tenants: checkpoint_all(shared),
        }),
        Request::Create { tenant, spec } => {
            validate_tenant_name(tenant)?;
            spec.validate()?;
            let mut reg = lock_registry(shared);
            if reg.slots.contains_key(tenant) {
                return Err(ProtocolError::TenantExists(tenant.clone()));
            }
            let mut t = Tenant::create(*spec)?;
            if let Some(wal_cfg) = shared.config.wal_config(shared.store.wal_dir(tenant)) {
                let (wal, _replay) = Wal::open(wal_cfg, 1).map_err(|e| {
                    ProtocolError::Io(std::io::ErrorKind::Other, format!("wal open failed: {e}"))
                })?;
                t.attach_wal(Arc::new(wal));
            }
            // Persist immediately: a crash before the first periodic
            // checkpoint must not forget the tenant exists.
            let bank = t.checkpoint(shared.config.checkpoint_timeout);
            shared.store.save_tenant(tenant, spec, &bank)?;
            touch(&mut reg, &mut t);
            reg.slots.insert(tenant.clone(), Slot::Live(Box::new(t)));
            drop(reg);
            enforce_memory_budget(shared, Some(tenant));
            Ok(Response::Created)
        }
        Request::Ingest {
            tenant,
            shard,
            client,
            req_seq,
            items,
        } => {
            let mut reg = lock_registry(shared);
            let t = resident_tenant(shared, &mut reg, tenant)?;
            let outcome = t
                .ingest_logged(tenant, *shard, *client, *req_seq, items)
                .inspect_err(|e| {
                    if matches!(e, ProtocolError::Overloaded { .. }) {
                        shared.stats.admission_shed.fetch_add(1, Ordering::Relaxed);
                    }
                })?;
            drop(reg);
            // The durability point: the ack below must not leave until
            // the logged record is fsynced under the policy. Committed
            // *after* the registry lock drops so a group-commit wait
            // stalls only this request, not the whole server.
            if let Some((wal, seq)) = &outcome.commit {
                wal.commit(*seq).map_err(|e| {
                    ProtocolError::Io(
                        std::io::ErrorKind::Other,
                        format!("wal commit failed, batch not acked: {e}"),
                    )
                })?;
            }
            enforce_memory_budget(shared, Some(tenant));
            Ok(Response::Ingested {
                accepted: outcome.accepted,
            })
        }
        Request::Query { tenant } => {
            let mut reg = lock_registry(shared);
            let t = resident_tenant(shared, &mut reg, tenant)?;
            let (entries, epoch) = t.query()?;
            Ok(Response::Report { entries, epoch })
        }
        Request::Snapshot { tenant } => {
            let mut reg = lock_registry(shared);
            let t = resident_tenant(shared, &mut reg, tenant)?;
            let bytes = t.snapshot_merged()?.to_vec();
            Ok(Response::Snapshot { bytes })
        }
        Request::RangeQuery { tenant, lo, hi } => {
            let mut reg = lock_registry(shared);
            let t = resident_tenant(shared, &mut reg, tenant)?;
            let (estimate, epoch) = t.range_query(*lo, *hi)?;
            Ok(Response::RangeEstimate { estimate, epoch })
        }
        Request::HeavyRanges { tenant, phi } => {
            let mut reg = lock_registry(shared);
            let t = resident_tenant(shared, &mut reg, tenant)?;
            let (entries, epoch) = t.heavy_ranges(*phi)?;
            Ok(Response::Ranges { entries, epoch })
        }
        Request::Recover { tenant } => {
            let mut reg = lock_registry(shared);
            let t = resident_tenant(shared, &mut reg, tenant)?;
            let shards = t.recover()? as u64;
            Ok(Response::Recovered { shards })
        }
        // Handled before dispatch (it flips server state).
        Request::Shutdown => Ok(Response::ShuttingDown),
    }
}

/// Bumps the LRU clock onto `t`.
fn touch(reg: &mut Registry, t: &mut Tenant) {
    reg.clock += 1;
    t.last_touch = reg.clock;
}

/// Resolves `name` to a live tenant, rehydrating from disk if it was
/// evicted. Broken slots refuse as quarantined.
fn resident_tenant<'a>(
    shared: &Shared,
    reg: &'a mut std::sync::MutexGuard<'_, Registry>,
    name: &str,
) -> Result<&'a mut Tenant, ProtocolError> {
    match reg.slots.get(name) {
        None => return Err(ProtocolError::UnknownTenant(name.to_string())),
        Some(Slot::Broken(reason)) => {
            return Err(ProtocolError::Quarantined(format!("{name} ({reason})")))
        }
        Some(Slot::Evicted) => {
            let slot = match shared.store.load_tenant(name) {
                Ok(rec) => match hydrate(&shared.config, &shared.store, rec) {
                    Ok(t) => Slot::Live(Box::new(t)),
                    Err(e) => Slot::Broken(e),
                },
                Err(reason) => Slot::Broken(reason),
            };
            reg.slots.insert(name.to_string(), slot);
            if matches!(reg.slots.get(name), Some(Slot::Broken(_))) {
                return Err(ProtocolError::Quarantined(name.to_string()));
            }
        }
        Some(Slot::Live(_)) => {}
    }
    let clock = {
        reg.clock += 1;
        reg.clock
    };
    match reg.slots.get_mut(name) {
        Some(Slot::Live(t)) => {
            t.last_touch = clock;
            Ok(t)
        }
        _ => unreachable!("slot was just made live"),
    }
}

/// Evicts least-recently-used tenants to snapshot until resident bytes
/// fit the budget. `keep` (the tenant just touched) is never evicted.
fn enforce_memory_budget(shared: &Shared, keep: Option<&str>) {
    let budget = shared.config.memory_budget_bytes;
    loop {
        // Fast path — the common case touches only the registry lock.
        {
            let reg = lock_registry(shared);
            let resident: u64 = reg
                .slots
                .values()
                .map(|s| match s {
                    Slot::Live(t) => t.resident_bytes(),
                    _ => 0,
                })
                .sum();
            if resident <= budget {
                return;
            }
        }
        // Eviction round. Lock order is ckpt_lock → registry, matching
        // checkpoint_all, and the registry stays held through the disk
        // write: `Slot::Evicted` must never be observable before the
        // victim's fresh bytes have landed. If it were, a concurrent
        // request could rehydrate the tenant from the *stale* on-disk
        // checkpoint; once the eviction save then landed, that stale
        // resident tenant would shadow it and the next checkpoint
        // round would persist the stale state over the fresh bytes —
        // silently losing acked ingests.
        let _round = shared
            .ckpt_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut reg = lock_registry(shared);
        let mut resident: u64 = 0;
        let mut lru: Option<(String, u64)> = None;
        for (name, slot) in &reg.slots {
            if let Slot::Live(t) = slot {
                resident += t.resident_bytes();
                if Some(name.as_str()) == keep {
                    continue;
                }
                if lru.as_ref().is_none_or(|(_, stamp)| t.last_touch < *stamp) {
                    lru = Some((name.clone(), t.last_touch));
                }
            }
        }
        // Re-checked under both locks: a concurrent round may have
        // already evicted enough.
        if resident <= budget {
            return;
        }
        let Some((victim, _)) = lru else { return };
        let Some(Slot::Live(mut t)) = reg.slots.remove(&victim) else {
            return;
        };
        let bank = t.checkpoint(shared.config.checkpoint_timeout);
        let spec = t.spec;
        if shared.store.save_tenant(&victim, &spec, &bank).is_ok() {
            // The bundle covers everything up to the marks; retire the
            // sealed WAL segments it makes redundant before the tenant
            // (and its log handle) leaves memory.
            if let Some(wal) = t.wal() {
                let _ = wal.compact(t.covered_seq());
            }
            reg.slots.insert(victim, Slot::Evicted);
            shared.stats.evictions.fetch_add(1, Ordering::Relaxed);
        } else {
            // A failed save keeps the tenant resident (no data loss).
            reg.slots.insert(victim, Slot::Live(t));
            return;
        }
        // Both locks drop here; loop to re-check the budget.
    }
}

/// Checkpoints every resident tenant to disk. Returns tenants saved.
///
/// Single-flight: the whole round (collect + save) holds
/// `Shared::ckpt_lock`, so concurrent callers queue instead of racing
/// each other's temp files. Callers must not hold the registry lock —
/// the round takes it internally.
fn checkpoint_all(shared: &Shared) -> u64 {
    let _round = shared
        .ckpt_lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Collect bundles under the lock, write outside it.
    type Round = (String, TenantSpec, BankSnapshot, Option<(Arc<Wal>, u64)>);
    let work: Vec<Round> = {
        let mut reg = lock_registry(shared);
        let names: Vec<String> = reg.slots.keys().cloned().collect();
        let mut work = Vec::new();
        for name in names {
            if let Some(Slot::Live(t)) = reg.slots.get_mut(&name) {
                let bank = t.checkpoint(shared.config.checkpoint_timeout);
                let wal = t.wal().map(|w| (Arc::clone(w), t.covered_seq()));
                work.push((name.clone(), t.spec, bank, wal));
            }
        }
        work
    };
    let mut saved = 0;
    for (name, spec, bank, wal) in work {
        if shared.store.save_tenant(&name, &spec, &bank).is_ok() {
            saved += 1;
            // Only after the bundle durably covers them may the sealed
            // segments below the marks be retired; a failed save keeps
            // every segment (replay still needs them).
            if let Some((wal, covered)) = wal {
                let _ = wal.compact(covered);
            }
        }
    }
    if saved > 0 {
        shared.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
    }
    saved
}

fn checkpoint_loop(shared: &Arc<Shared>) {
    loop {
        {
            let guard = shared
                .tick_lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let _unused = shared
                .tick
                .wait_timeout(guard, shared.config.checkpoint_every);
        }
        if shared.stopping.load(Ordering::SeqCst) {
            // The final checkpoint (graceful only) is run by whoever
            // initiated the stop.
            return;
        }
        checkpoint_all(shared);
    }
}

fn build_health(shared: &Shared) -> ServerHealth {
    let mut reg = lock_registry(shared);
    let mut quarantined: Vec<String> = shared.boot_lost.clone();
    let mut shed = 0;
    let mut resident = 0;
    let mut wal_appended = 0;
    let mut wal_depth = 0;
    let mut wal_fsyncs = 0;
    let mut wal_max_commit_wait_us = 0;
    let mut wal_replayed = 0;
    let mut dedup_hits = 0;
    let mut wal_segments = 0;
    let tenants = reg.slots.len() as u64;
    for (name, slot) in reg.slots.iter_mut() {
        match slot {
            Slot::Live(t) => {
                shed += t.shed_items();
                resident += t.resident_bytes();
                let ws = t.wal_stats();
                wal_appended += ws.appended_records;
                wal_depth += ws.depth_records;
                wal_fsyncs += ws.fsyncs;
                wal_max_commit_wait_us = wal_max_commit_wait_us.max(ws.max_commit_wait_us);
                wal_segments += ws.segments;
                wal_replayed += t.wal_replayed();
                dedup_hits += t.dedup_hits();
                if t.quarantined() {
                    quarantined.push(name.clone());
                }
            }
            Slot::Broken(_) => quarantined.push(name.clone()),
            Slot::Evicted => {}
        }
    }
    quarantined.sort();
    quarantined.dedup();
    ServerHealth {
        tenants,
        active_connections: shared.active.load(Ordering::SeqCst),
        accept_rejections: shared.stats.accept_rejections.load(Ordering::Relaxed),
        shed_batches: shed + shared.stats.admission_shed.load(Ordering::Relaxed),
        evictions: shared.stats.evictions.load(Ordering::Relaxed),
        checkpoints: shared.stats.checkpoints.load(Ordering::Relaxed),
        recovered_tenants: shared.recovered_tenants,
        quarantined,
        resident_bytes: resident,
        wal_appended,
        wal_depth,
        wal_fsyncs,
        wal_max_commit_wait_us,
        wal_replayed,
        dedup_hits,
        wal_segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::facade::SummaryKind;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hh-server-srv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> TenantSpec {
        TenantSpec {
            kind: SummaryKind::SpaceSaving,
            shards: 1,
            m: 100_000,
            universe: 1 << 20,
            ..TenantSpec::default()
        }
    }

    fn start_tcp(tag: &str) -> (Server, Client, PathBuf) {
        let root = tmp_root(tag);
        let server = Server::start(
            ServerConfig::fast(&root),
            Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
        )
        .unwrap();
        let client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        (server, client, root)
    }

    #[test]
    fn full_request_cycle_over_tcp() {
        let (server, mut client, root) = start_tcp("cycle");
        client.ping().unwrap();
        client.create("alpha", spec()).unwrap();
        let heavy: Vec<u64> = (0..4_000u64)
            .map(|i| if i % 2 == 0 { 5 } else { i })
            .collect();
        assert_eq!(
            client.ingest("alpha", 0, &heavy).unwrap(),
            heavy.len() as u64
        );
        let (entries, _epoch) = client.query("alpha").unwrap();
        assert!(entries.iter().any(|&(item, _)| item == 5));
        let snapshot = client.snapshot("alpha").unwrap();
        use hh_core::{HeavyHitters as _, MergeableSummary as _};
        let restored = crate::facade::DynSummary::from_bytes(&snapshot).unwrap();
        assert!(restored.report().contains(5));
        let health = client.health().unwrap();
        assert_eq!(health.tenants, 1);
        assert!(health.quarantined.is_empty());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn dyadic_tenant_serves_range_queries_over_the_wire() {
        let (server, mut client, root) = start_tcp("ranges");
        let dyadic = TenantSpec {
            kind: SummaryKind::Dyadic,
            shards: 2,
            m: 100_000,
            universe: 1 << 16,
            ..TenantSpec::default()
        };
        client.create("net", dyadic).unwrap();
        // Half the traffic lands in the block [0x4000, 0x7FFF].
        let stream: Vec<u64> = (0..8_000u64)
            .map(|i| {
                if i % 2 == 0 {
                    0x4000 + (i % 64)
                } else {
                    i % 0x4000
                }
            })
            .collect();
        client.ingest("net", 0, &stream[..4_000]).unwrap();
        client.ingest("net", 1, &stream[4_000..]).unwrap();
        let (estimate, epoch) = client.range_query("net", 0x4000, 0x7FFF).unwrap();
        assert!(
            (estimate - 4_000.0).abs() <= 0.05 * 8_000.0,
            "block mass {estimate}"
        );
        let (ranges, epoch2) = client.heavy_ranges("net", 0.4).unwrap();
        assert_eq!(epoch, epoch2, "quiescent reads share an epoch");
        assert!(
            ranges
                .iter()
                .any(|&(_, lo, hi, _)| lo <= 0x4000 && 0x7FFF <= hi),
            "no reported range covers the planted block: {ranges:?}"
        );
        // A point-summary tenant refuses range ops with a structured error.
        client.create("points", spec()).unwrap();
        client.ingest("points", 0, &[5; 100]).unwrap();
        assert!(matches!(
            client.range_query("points", 0, 10).unwrap_err(),
            ProtocolError::BadRequest(_)
        ));
        assert!(matches!(
            client.heavy_ranges("points", 0.1).unwrap_err(),
            ProtocolError::BadRequest(_)
        ));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_create_and_unknown_tenant_are_structured() {
        let (server, mut client, root) = start_tcp("errors");
        client.create("a", spec()).unwrap();
        assert!(matches!(
            client.create("a", spec()).unwrap_err(),
            ProtocolError::TenantExists(_)
        ));
        assert!(matches!(
            client.query("ghost").unwrap_err(),
            ProtocolError::UnknownTenant(_)
        ));
        assert!(matches!(
            client.create("bad/../name", spec()).unwrap_err(),
            ProtocolError::BadRequest(_)
        ));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fault_drill_refuses_writes_serves_reads_then_recovers() {
        let (server, mut client, root) = start_tcp("drill");
        client.create("t", spec()).unwrap();
        client.ingest("t", 0, &[7; 1000]).unwrap();
        server.handle().inject_tenant_fault("t", "drill").unwrap();
        assert!(matches!(
            client.ingest("t", 0, &[8; 10]).unwrap_err(),
            ProtocolError::Quarantined(_)
        ));
        let (entries, _) = client.query("t").unwrap();
        assert!(
            entries.iter().any(|&(item, _)| item == 7),
            "reads must survive"
        );
        assert_eq!(client.health().unwrap().quarantined, vec!["t".to_string()]);
        client.recover("t").unwrap();
        client.ingest("t", 0, &[8; 10]).unwrap();
        assert!(client.health().unwrap().quarantined.is_empty());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn kill_loses_only_the_unchckpointed_window_and_recovery_serves_it() {
        let root = tmp_root("kill");
        let cfg = ServerConfig {
            // Effectively disable the periodic checkpointer: the test
            // controls checkpoint timing explicitly. Checkpoint-only
            // durability: this test measures the *un-logged* loss
            // window; the WAL variant below closes it.
            checkpoint_every: Duration::from_secs(3600),
            durability: Durability::CheckpointOnly,
            ..ServerConfig::fast(&root)
        };
        let server =
            Server::start(cfg.clone(), Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        client.create("t", spec()).unwrap();
        client.ingest("t", 0, &[42; 2_000]).unwrap();
        client.checkpoint().unwrap();
        // This window is ingested but never checkpointed: it dies with
        // the server.
        client.ingest("t", 0, &[99; 2_000]).unwrap();
        server.kill();

        let server = Server::start(cfg, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        let health = client.health().unwrap();
        assert_eq!(health.recovered_tenants, 1);
        assert!(health.quarantined.is_empty());
        let (entries, _) = client.query("t").unwrap();
        assert!(
            entries.iter().any(|&(item, _)| item == 42),
            "checkpointed item lost"
        );
        assert!(
            !entries.iter().any(|&(item, _)| item == 99),
            "un-checkpointed window survived a kill -9?"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn kill_with_wal_loses_nothing_acked() {
        let root = tmp_root("kill-wal");
        let cfg = ServerConfig {
            // No periodic checkpoints: every acked batch after the one
            // explicit checkpoint lives only in the WAL when the server
            // dies.
            checkpoint_every: Duration::from_secs(3600),
            ..ServerConfig::fast(&root)
        };
        let server =
            Server::start(cfg.clone(), Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        client.create("t", spec()).unwrap();
        client.ingest("t", 0, &[42; 2_000]).unwrap();
        client.checkpoint().unwrap();
        // Acked after the checkpoint: only the log holds it now.
        client.ingest("t", 0, &[99; 2_000]).unwrap();
        server.kill();

        let server = Server::start(cfg, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        let health = client.health().unwrap();
        assert_eq!(health.recovered_tenants, 1);
        assert!(health.quarantined.is_empty());
        assert!(health.wal_replayed >= 1, "replay did no work: {health:?}");
        let (entries, _) = client.query("t").unwrap();
        let count_of = |item: u64| {
            entries
                .iter()
                .find(|&&(i, _)| i == item)
                .map_or(0.0, |&(_, n)| n)
        };
        assert_eq!(count_of(42) as u64, 2_000, "checkpointed batch lost");
        assert_eq!(
            count_of(99) as u64,
            2_000,
            "acked batch lost despite the WAL"
        );
        // And the replayed state keeps accepting + checkpointing.
        client.ingest("t", 0, &[7; 100]).unwrap();
        client.checkpoint().unwrap();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn connection_flood_gets_retry_after_not_thread_exhaustion() {
        let root = tmp_root("flood");
        let cfg = ServerConfig {
            max_connections: 2,
            ..ServerConfig::fast(&root)
        };
        let server = Server::start(cfg, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let addr = server.local_addr().unwrap();
        let _c1 = Client::connect_tcp(addr).unwrap();
        let _c2 = Client::connect_tcp(addr).unwrap();
        // Give the acceptor a beat to account for both handlers.
        std::thread::sleep(Duration::from_millis(50));
        let mut c3 = Client::connect_tcp(addr).unwrap();
        match c3.ping() {
            Err(ProtocolError::Overloaded { .. }) => {}
            other => panic!("expected RetryAfter at the door, got {other:?}"),
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn memory_budget_evicts_lru_to_snapshot_and_rehydrates() {
        let root = tmp_root("evict");
        let cfg = ServerConfig {
            // Small enough that two tenants cannot both stay resident.
            memory_budget_bytes: 1,
            ..ServerConfig::fast(&root)
        };
        let server = Server::start(cfg, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        client.create("old", spec()).unwrap();
        client.ingest("old", 0, &[11; 2_000]).unwrap();
        client.create("new", spec()).unwrap();
        let health = client.health().unwrap();
        assert!(health.evictions >= 1, "budget of 1 byte must evict");
        // The evicted tenant rehydrates transparently, data intact.
        let (entries, _) = client.query("old").unwrap();
        assert!(entries.iter().any(|&(item, _)| item == 11));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn eviction_churn_with_concurrent_rehydration_loses_no_acked_items() {
        let root = tmp_root("churn");
        let cfg = ServerConfig {
            // Nothing fits: every touch evicts the other tenant, so
            // eviction saves and rehydrations interleave constantly.
            memory_budget_bytes: 1,
            ..ServerConfig::fast(&root)
        };
        let server = Server::start(cfg, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let addr = server.local_addr().unwrap();
        {
            let mut c = Client::connect_tcp(addr).unwrap();
            c.create("a", spec()).unwrap();
            c.create("b", spec()).unwrap();
        }
        // The regression this guards: `Slot::Evicted` published before
        // the eviction save reached disk let a concurrent request
        // rehydrate the stale on-disk checkpoint, which then shadowed
        // the fresh bytes — acked ingests silently lost.
        let workers: Vec<_> = [("a", 1u64), ("b", 2u64)]
            .into_iter()
            .map(|(name, item)| {
                std::thread::spawn(move || {
                    let mut c = Client::connect_tcp(addr).unwrap();
                    let mut acked = 0u64;
                    for _ in 0..40 {
                        acked += c.ingest_retry(name, 0, &[item; 25], 20).unwrap();
                        c.query(name).unwrap();
                    }
                    (name, item, acked)
                })
            })
            .collect();
        let mut c = Client::connect_tcp(addr).unwrap();
        for w in workers {
            let (name, item, acked) = w.join().unwrap();
            let (entries, _) = c.query(name).unwrap();
            let count = entries
                .iter()
                .find(|&&(i, _)| i == item)
                .map_or(0.0, |&(_, n)| n);
            assert_eq!(
                count as u64, acked,
                "tenant {name}: acked ingests lost in eviction churn"
            );
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn protocol_shutdown_checkpoints_before_exit() {
        let root = tmp_root("proto-shutdown");
        let cfg = ServerConfig {
            checkpoint_every: Duration::from_secs(3600),
            ..ServerConfig::fast(&root)
        };
        let server =
            Server::start(cfg.clone(), Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        client.create("t", spec()).unwrap();
        client.ingest("t", 0, &[5; 1_000]).unwrap();
        client.shutdown_server().unwrap();
        drop(client);
        server.shutdown(); // joins; final checkpoint already ran

        let server = Server::start(cfg, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        let (entries, _) = client.query("t").unwrap();
        assert!(
            entries.iter().any(|&(item, _)| item == 5),
            "graceful shutdown must not lose acked data"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}
