//! The wire protocol: length-prefixed frames whose bodies ride the v3
//! snapshot codec.
//!
//! A frame is `[u32 LE body_len][body]`. The body is a tagged,
//! checksummed buffer produced by [`hh_core::mergeable::snapshot`]'s
//! `encode` — the same fail-closed codec the summaries snapshot with —
//! under [`REQUEST_TAG`] or [`RESPONSE_TAG`]. That buys the protocol
//! the codec's whole hardening story for free: every length prefix is
//! validated against the remaining input before any allocation
//! (`bounded_len`), the fnv1a64x4 trailer is verified before a single
//! payload byte is interpreted, and any malformed input decodes to a
//! structured [`SnapshotError`] — never a panic, never an oversized
//! allocation.
//!
//! The one allocation the codec cannot guard — the frame body buffer
//! itself — is guarded here: [`read_frame`] rejects any length prefix
//! above [`MAX_FRAME_LEN`] *before* allocating
//! ([`ProtocolError::FrameTooLarge`]).
//!
//! ```text
//!        0        4              4+N-8        4+N
//!        +--------+----------------+------------+
//!        | u32 LE |  tagged body   |  fnv1a64x4 |
//!        | N      |  "hh.proto.*"  |  trailer   |
//!        +--------+----------------+------------+
//!                  \______ snapshot::encode ____/
//! ```
//!
//! Errors cross the wire as `(code, message)` pairs inside
//! [`Response::Error`]; [`ProtocolError::to_wire`] /
//! [`ProtocolError::from_wire`] are the stable mapping.

use crate::facade::{SummaryKind, TenantSpec, MAX_SHARDS};
use hh_core::mergeable::snapshot;
use hh_core::{MergeError, ParamError, SnapshotError};
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::io::{Read, Write};

/// Snapshot-codec tag for request bodies.
pub const REQUEST_TAG: &str = "hh.proto.req.v1";
/// Snapshot-codec tag for response bodies.
pub const RESPONSE_TAG: &str = "hh.proto.rsp.v1";

/// Hard ceiling on a frame body. A hostile length prefix above this is
/// rejected before any buffer is allocated.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// Hard ceiling on items in one `Ingest` batch (keeps a single request
/// comfortably under [`MAX_FRAME_LEN`] and bounds per-request work).
pub const MAX_BATCH: usize = 1 << 16;

/// Hard ceiling on tenant-name length.
pub const MAX_TENANT_NAME: usize = 64;

/// Everything that can go wrong between two protocol peers, as one
/// `?`-friendly error type.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`]; rejected
    /// before allocation.
    FrameTooLarge {
        /// The advertised body length.
        len: u64,
        /// The ceiling it exceeded.
        max: u64,
    },
    /// The peer closed the connection mid-frame.
    Truncated,
    /// A read or write missed its per-connection deadline.
    DeadlineExceeded,
    /// The frame body failed the snapshot codec's validation
    /// (bad tag, checksum mismatch, hostile length, malformed payload).
    Snapshot(SnapshotError),
    /// A merge the request demanded was refused by the summaries.
    Merge(MergeError),
    /// The request was well-formed bytes but semantically invalid.
    BadRequest(String),
    /// The named tenant does not exist.
    UnknownTenant(String),
    /// `Create` named a tenant that already exists.
    TenantExists(String),
    /// `Ingest` addressed a shard outside the tenant's bank.
    ShardOutOfRange {
        /// The shard the request addressed.
        shard: u32,
        /// The tenant's shard count.
        shards: u32,
    },
    /// The tenant's runtime is quarantined; reads still work, writes
    /// are refused until `Recover`.
    Quarantined(String),
    /// The server shed the request under overload; retry after the
    /// indicated backoff.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The peer answered with a response the request cannot produce.
    UnexpectedResponse(&'static str),
    /// A transport-level failure, with its [`std::io::ErrorKind`].
    Io(std::io::ErrorKind, String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            Self::Truncated => write!(f, "connection closed mid-frame"),
            Self::DeadlineExceeded => write!(f, "connection deadline exceeded"),
            Self::Snapshot(e) => write!(f, "frame body rejected: {e}"),
            Self::Merge(e) => write!(f, "merge refused: {e}"),
            Self::BadRequest(what) => write!(f, "bad request: {what}"),
            Self::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            Self::TenantExists(name) => write!(f, "tenant {name:?} already exists"),
            Self::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} out of range for a {shards}-shard tenant")
            }
            Self::Quarantined(name) => {
                write!(f, "tenant {name:?} is quarantined; recover before writing")
            }
            Self::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
            Self::UnexpectedResponse(what) => write!(f, "unexpected response: {what}"),
            Self::Io(kind, msg) => write!(f, "transport failure ({kind:?}): {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Snapshot(e) => Some(e),
            Self::Merge(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ProtocolError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

impl From<MergeError> for ProtocolError {
    fn from(e: MergeError) -> Self {
        Self::Merge(e)
    }
}

impl From<ParamError> for ProtocolError {
    fn from(e: ParamError) -> Self {
        Self::BadRequest(e.to_string())
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            // Deadline-bounded sockets surface expiry as one of these
            // two kinds depending on platform.
            ErrorKind::TimedOut | ErrorKind::WouldBlock => Self::DeadlineExceeded,
            ErrorKind::UnexpectedEof => Self::Truncated,
            kind => Self::Io(kind, e.to_string()),
        }
    }
}

impl ProtocolError {
    /// Stable `(code, message)` wire form for [`Response::Error`].
    pub fn to_wire(&self) -> (u64, String) {
        let code = match self {
            Self::FrameTooLarge { .. } => 1,
            Self::Truncated => 2,
            Self::DeadlineExceeded => 3,
            Self::Snapshot(_) => 4,
            Self::Merge(_) => 5,
            Self::BadRequest(_) => 6,
            Self::UnknownTenant(_) => 7,
            Self::TenantExists(_) => 8,
            Self::ShardOutOfRange { .. } => 9,
            Self::Quarantined(_) => 10,
            Self::Overloaded { .. } => 11,
            Self::UnexpectedResponse(_) => 12,
            Self::Io(..) => 13,
        };
        (code, self.to_string())
    }

    /// Rebuilds the error a peer sent as `(code, message)`. Codes that
    /// carry structure rebuild the closest structured variant; unknown
    /// codes fold into [`ProtocolError::BadRequest`] (an old server
    /// talking to a newer client must not crash the client).
    pub fn from_wire(code: u64, message: String) -> Self {
        match code {
            1 => Self::FrameTooLarge {
                len: 0,
                max: MAX_FRAME_LEN as u64,
            },
            2 => Self::Truncated,
            3 => Self::DeadlineExceeded,
            4 => Self::Snapshot(SnapshotError::Malformed(message)),
            5 => Self::Merge(MergeError::Incompatible("remote peer refused the merge")),
            7 => Self::UnknownTenant(message),
            8 => Self::TenantExists(message),
            9 => Self::ShardOutOfRange {
                shard: 0,
                shards: 0,
            },
            10 => Self::Quarantined(message),
            11 => Self::Overloaded { retry_after_ms: 0 },
            12 => Self::UnexpectedResponse("remote"),
            13 => Self::Io(std::io::ErrorKind::Other, message),
            _ => Self::BadRequest(message),
        }
    }
}

/// Validates a tenant name: non-empty, at most [`MAX_TENANT_NAME`]
/// bytes, `[A-Za-z0-9_-]` only (names become snapshot directory names,
/// so path metacharacters are rejected at the protocol boundary).
pub fn validate_tenant_name(name: &str) -> Result<(), ProtocolError> {
    if name.is_empty() || name.len() > MAX_TENANT_NAME {
        return Err(ProtocolError::BadRequest(format!(
            "tenant name must be 1..={MAX_TENANT_NAME} bytes, got {}",
            name.len()
        )));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return Err(ProtocolError::BadRequest(format!(
            "tenant name {name:?} has characters outside [A-Za-z0-9_-]"
        )));
    }
    Ok(())
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Creates a tenant with the given summary spec.
    Create {
        /// Tenant name (see [`validate_tenant_name`]).
        tenant: String,
        /// Summary kind, parameters, seeds, shard count.
        spec: TenantSpec,
    },
    /// Appends a batch of stream items to one shard of a tenant.
    Ingest {
        /// Target tenant.
        tenant: String,
        /// Target shard in `0..spec.shards`.
        shard: u32,
        /// Client identity for exactly-once dedup (0 = anonymous:
        /// no dedup, the batch is applied every time it arrives).
        client: u64,
        /// Client request sequence number. Retrying a transport-failed
        /// ingest with the **same** `(client, req_seq)` is exactly-once:
        /// if the original was applied, the server replies with the
        /// original ack instead of applying again.
        req_seq: u64,
        /// Stream items (at most [`MAX_BATCH`]).
        items: Vec<u64>,
    },
    /// Reads the tenant's merged heavy-hitter report from its frozen
    /// serving view.
    Query {
        /// Target tenant.
        tenant: String,
    },
    /// Server health and statistics.
    Health,
    /// Forces a checkpoint of every tenant bank to disk now.
    Checkpoint,
    /// Returns the tenant's merged summary as portable snapshot bytes.
    Snapshot {
        /// Target tenant.
        tenant: String,
    },
    /// Clears a quarantined tenant back to its last checkpoint.
    Recover {
        /// Target tenant.
        tenant: String,
    },
    /// Asks the server to drain, checkpoint, and exit.
    Shutdown,
    /// Estimates the mass of an inclusive id range `[lo, hi]` from the
    /// tenant's frozen serving view. Only tenants of the
    /// [`SummaryKind::Dyadic`] kind can answer.
    RangeQuery {
        /// Target tenant.
        tenant: String,
        /// First id of the range (inclusive).
        lo: u64,
        /// Last id of the range (inclusive).
        hi: u64,
    },
    /// Reads the tenant's heavy dyadic intervals (prefixes) at the
    /// given threshold. Only [`SummaryKind::Dyadic`] tenants answer.
    HeavyRanges {
        /// Target tenant.
        tenant: String,
        /// Heaviness threshold as a fraction of the stream.
        phi: f64,
    },
}

/// One heavy dyadic interval on the wire: `(level, lo, hi, estimate)`.
pub type RangeEntry = (u32, u64, u64, f64);

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Create`].
    Created,
    /// Reply to [`Request::Ingest`]: the batch was applied.
    Ingested {
        /// Items applied from this batch.
        accepted: u64,
    },
    /// Overload reply to [`Request::Ingest`]: nothing was applied;
    /// retry after the indicated backoff.
    RetryAfter {
        /// Suggested client backoff in milliseconds.
        millis: u64,
    },
    /// Reply to [`Request::Query`].
    Report {
        /// `(item, estimate)` pairs in decreasing-estimate order.
        entries: Vec<(u64, f64)>,
        /// Serving-view epoch the report was read from.
        epoch: u64,
    },
    /// Reply to [`Request::Health`].
    Health(ServerHealth),
    /// Reply to [`Request::Checkpoint`].
    Checkpointed {
        /// Tenants whose banks were written to disk.
        tenants: u64,
    },
    /// Reply to [`Request::Snapshot`].
    Snapshot {
        /// Portable snapshot bytes (restorable by any
        /// `MergeableSummary` of the tenant's kind — or the
        /// `DynSummary` facade).
        bytes: Vec<u8>,
    },
    /// Reply to [`Request::Shutdown`].
    ShuttingDown,
    /// Reply to [`Request::Recover`].
    Recovered {
        /// Shards rebuilt from their last checkpoint.
        shards: u64,
    },
    /// Structured failure, from [`ProtocolError::to_wire`].
    Error {
        /// Stable error code.
        code: u64,
        /// Human-readable description.
        message: String,
    },
    /// Reply to [`Request::RangeQuery`].
    RangeEstimate {
        /// Estimated range mass, in stream counts.
        estimate: f64,
        /// Serving-view epoch the estimate was read from.
        epoch: u64,
    },
    /// Reply to [`Request::HeavyRanges`].
    Ranges {
        /// `(level, lo, hi, estimate)` per heavy dyadic interval,
        /// level-major (coarsest first), then by lower endpoint.
        entries: Vec<RangeEntry>,
        /// Serving-view epoch the ranges were read from.
        epoch: u64,
    },
}

/// Server health: the observability surface the `Health` op exposes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerHealth {
    /// Live tenants.
    pub tenants: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Connections refused at accept because the server was full.
    pub accept_rejections: u64,
    /// Ingest batches shed under overload (sums tenant runtimes' shed
    /// counters and admission-control rejections).
    pub shed_batches: u64,
    /// Tenants evicted to snapshot by the memory budget (LRU).
    pub evictions: u64,
    /// Checkpoint rounds completed.
    pub checkpoints: u64,
    /// Tenants restored from disk at the last boot.
    pub recovered_tenants: u64,
    /// Tenants currently quarantined (poisoned runtime, or
    /// unrecoverable at boot). Writes to them are refused; the rest of
    /// the server keeps serving.
    pub quarantined: Vec<String>,
    /// Heap bytes currently held by resident tenant summaries.
    pub resident_bytes: u64,
    /// WAL records appended across resident tenants (0 when running
    /// checkpoint-only).
    pub wal_appended: u64,
    /// WAL records not yet covered by a checkpoint — the replay debt a
    /// crash right now would incur.
    pub wal_depth: u64,
    /// WAL fsyncs issued (group commit amortizes these across acks).
    pub wal_fsyncs: u64,
    /// Worst single commit wait observed, in microseconds — the fsync
    /// lag an acked ingest paid.
    pub wal_max_commit_wait_us: u64,
    /// WAL records replayed into summaries at boot/rehydration.
    pub wal_replayed: u64,
    /// Retried ingests answered from the dedup table instead of
    /// re-applied.
    pub dedup_hits: u64,
    /// Live WAL segment files across resident tenants.
    pub wal_segments: u64,
}

// --- manual serde impls (the vendored derive is a compile-time stub) ---

fn write_string_seq<S: Serializer>(values: &[String], s: &mut S) -> Result<(), S::Error> {
    s.write_seq_len(values.len())?;
    for v in values {
        s.write_str(v)?;
    }
    Ok(())
}

fn read_string_seq<'de, D: Deserializer<'de>>(d: &mut D) -> Result<Vec<String>, D::Error> {
    let n = d.read_seq_len()?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(d.read_string()?);
    }
    Ok(out)
}

impl Serialize for TenantSpec {
    fn serialize<S: Serializer>(&self, mut s: S) -> Result<S::Ok, S::Error> {
        s.write_u64(self.kind.code())?;
        s.write_f64(self.eps)?;
        s.write_f64(self.phi)?;
        s.write_f64(self.delta)?;
        s.write_u64(self.universe)?;
        s.write_u64(self.m)?;
        s.write_u64(self.structure_seed)?;
        s.write_u64(u64::from(self.shards))?;
        s.done()
    }
}

impl<'de> Deserialize<'de> for TenantSpec {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let code = d.read_u64()?;
        let kind = SummaryKind::from_code(code)
            .ok_or_else(|| de::Error::invariant(format!("unknown summary kind code {code}")))?;
        let eps = d.read_f64()?;
        let phi = d.read_f64()?;
        let delta = d.read_f64()?;
        let universe = d.read_u64()?;
        let m = d.read_u64()?;
        let structure_seed = d.read_u64()?;
        let shards = d.read_u64()?;
        if shards == 0 || shards > u64::from(MAX_SHARDS) {
            return Err(de::Error::invariant(format!(
                "shard count {shards} outside 1..={MAX_SHARDS}"
            )));
        }
        Ok(Self {
            kind,
            eps,
            phi,
            delta,
            universe,
            m,
            structure_seed,
            shards: shards as u32,
        })
    }
}

impl Serialize for Request {
    fn serialize<S: Serializer>(&self, mut s: S) -> Result<S::Ok, S::Error> {
        match self {
            Self::Ping => s.write_u64(0)?,
            Self::Create { tenant, spec } => {
                s.write_u64(1)?;
                s.write_str(tenant)?;
                spec.serialize(&mut s)?;
            }
            Self::Ingest {
                tenant,
                shard,
                client,
                req_seq,
                items,
            } => {
                s.write_u64(2)?;
                s.write_str(tenant)?;
                s.write_u64(u64::from(*shard))?;
                s.write_u64(*client)?;
                s.write_u64(*req_seq)?;
                snapshot::write_u64_slice(items, &mut s)?;
            }
            Self::Query { tenant } => {
                s.write_u64(3)?;
                s.write_str(tenant)?;
            }
            Self::Health => s.write_u64(4)?,
            Self::Checkpoint => s.write_u64(5)?,
            Self::Snapshot { tenant } => {
                s.write_u64(6)?;
                s.write_str(tenant)?;
            }
            Self::Recover { tenant } => {
                s.write_u64(7)?;
                s.write_str(tenant)?;
            }
            Self::Shutdown => s.write_u64(8)?,
            Self::RangeQuery { tenant, lo, hi } => {
                s.write_u64(9)?;
                s.write_str(tenant)?;
                s.write_u64(*lo)?;
                s.write_u64(*hi)?;
            }
            Self::HeavyRanges { tenant, phi } => {
                s.write_u64(10)?;
                s.write_str(tenant)?;
                s.write_f64(*phi)?;
            }
        }
        s.done()
    }
}

impl<'de> Deserialize<'de> for Request {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let read_tenant = |d: &mut D| -> Result<String, D::Error> {
            let name = d.read_string()?;
            if name.len() > MAX_TENANT_NAME {
                return Err(de::Error::length_overflow(format!(
                    "tenant name of {} bytes exceeds the {MAX_TENANT_NAME}-byte cap",
                    name.len()
                )));
            }
            Ok(name)
        };
        Ok(match d.read_u64()? {
            0 => Self::Ping,
            1 => {
                let tenant = read_tenant(&mut d)?;
                let spec = TenantSpec::deserialize(&mut d)?;
                Self::Create { tenant, spec }
            }
            2 => {
                let tenant = read_tenant(&mut d)?;
                let shard = d.read_u64()?;
                if shard > u64::from(MAX_SHARDS) {
                    return Err(de::Error::invariant(format!(
                        "shard index {shard} outside any legal bank"
                    )));
                }
                let client = d.read_u64()?;
                let req_seq = d.read_u64()?;
                let items = snapshot::read_u64_slice(&mut d)?;
                if items.len() > MAX_BATCH {
                    return Err(de::Error::length_overflow(format!(
                        "ingest batch of {} items exceeds the {MAX_BATCH}-item cap",
                        items.len()
                    )));
                }
                Self::Ingest {
                    tenant,
                    shard: shard as u32,
                    client,
                    req_seq,
                    items,
                }
            }
            3 => Self::Query {
                tenant: read_tenant(&mut d)?,
            },
            4 => Self::Health,
            5 => Self::Checkpoint,
            6 => Self::Snapshot {
                tenant: read_tenant(&mut d)?,
            },
            7 => Self::Recover {
                tenant: read_tenant(&mut d)?,
            },
            8 => Self::Shutdown,
            9 => {
                let tenant = read_tenant(&mut d)?;
                let lo = d.read_u64()?;
                let hi = d.read_u64()?;
                if lo > hi {
                    return Err(de::Error::invariant(format!(
                        "range lower bound {lo} above upper bound {hi}"
                    )));
                }
                Self::RangeQuery { tenant, lo, hi }
            }
            10 => {
                let tenant = read_tenant(&mut d)?;
                let phi = d.read_f64()?;
                if !(phi > 0.0 && phi <= 1.0) {
                    return Err(de::Error::invariant(format!(
                        "range threshold {phi} outside (0, 1]"
                    )));
                }
                Self::HeavyRanges { tenant, phi }
            }
            op => return Err(de::Error::invariant(format!("unknown request op {op}"))),
        })
    }
}

impl Serialize for ServerHealth {
    fn serialize<S: Serializer>(&self, mut s: S) -> Result<S::Ok, S::Error> {
        s.write_u64(self.tenants)?;
        s.write_u64(self.active_connections)?;
        s.write_u64(self.accept_rejections)?;
        s.write_u64(self.shed_batches)?;
        s.write_u64(self.evictions)?;
        s.write_u64(self.checkpoints)?;
        s.write_u64(self.recovered_tenants)?;
        write_string_seq(&self.quarantined, &mut s)?;
        s.write_u64(self.resident_bytes)?;
        s.write_u64(self.wal_appended)?;
        s.write_u64(self.wal_depth)?;
        s.write_u64(self.wal_fsyncs)?;
        s.write_u64(self.wal_max_commit_wait_us)?;
        s.write_u64(self.wal_replayed)?;
        s.write_u64(self.dedup_hits)?;
        s.write_u64(self.wal_segments)?;
        s.done()
    }
}

impl<'de> Deserialize<'de> for ServerHealth {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        Ok(Self {
            tenants: d.read_u64()?,
            active_connections: d.read_u64()?,
            accept_rejections: d.read_u64()?,
            shed_batches: d.read_u64()?,
            evictions: d.read_u64()?,
            checkpoints: d.read_u64()?,
            recovered_tenants: d.read_u64()?,
            quarantined: read_string_seq(&mut d)?,
            resident_bytes: d.read_u64()?,
            wal_appended: d.read_u64()?,
            wal_depth: d.read_u64()?,
            wal_fsyncs: d.read_u64()?,
            wal_max_commit_wait_us: d.read_u64()?,
            wal_replayed: d.read_u64()?,
            dedup_hits: d.read_u64()?,
            wal_segments: d.read_u64()?,
        })
    }
}

impl Serialize for Response {
    fn serialize<S: Serializer>(&self, mut s: S) -> Result<S::Ok, S::Error> {
        match self {
            Self::Pong => s.write_u64(0)?,
            Self::Created => s.write_u64(1)?,
            Self::Ingested { accepted } => {
                s.write_u64(2)?;
                s.write_u64(*accepted)?;
            }
            Self::RetryAfter { millis } => {
                s.write_u64(3)?;
                s.write_u64(*millis)?;
            }
            Self::Report { entries, epoch } => {
                s.write_u64(4)?;
                s.write_seq_len(entries.len())?;
                for &(item, estimate) in entries {
                    s.write_u64(item)?;
                    s.write_f64(estimate)?;
                }
                s.write_u64(*epoch)?;
            }
            Self::Health(health) => {
                s.write_u64(5)?;
                health.serialize(&mut s)?;
            }
            Self::Checkpointed { tenants } => {
                s.write_u64(6)?;
                s.write_u64(*tenants)?;
            }
            Self::Snapshot { bytes } => {
                s.write_u64(7)?;
                s.write_byte_seq(bytes)?;
            }
            Self::ShuttingDown => s.write_u64(8)?,
            Self::Recovered { shards } => {
                s.write_u64(10)?;
                s.write_u64(*shards)?;
            }
            Self::Error { code, message } => {
                s.write_u64(9)?;
                s.write_u64(*code)?;
                s.write_str(message)?;
            }
            Self::RangeEstimate { estimate, epoch } => {
                s.write_u64(11)?;
                s.write_f64(*estimate)?;
                s.write_u64(*epoch)?;
            }
            Self::Ranges { entries, epoch } => {
                s.write_u64(12)?;
                s.write_seq_len(entries.len())?;
                for &(level, lo, hi, estimate) in entries {
                    s.write_u64(u64::from(level))?;
                    s.write_u64(lo)?;
                    s.write_u64(hi)?;
                    s.write_f64(estimate)?;
                }
                s.write_u64(*epoch)?;
            }
        }
        s.done()
    }
}

impl<'de> Deserialize<'de> for Response {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        Ok(match d.read_u64()? {
            0 => Self::Pong,
            1 => Self::Created,
            2 => Self::Ingested {
                accepted: d.read_u64()?,
            },
            3 => Self::RetryAfter {
                millis: d.read_u64()?,
            },
            4 => {
                let n = d.read_seq_len()?;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let item = d.read_u64()?;
                    let estimate = d.read_f64()?;
                    entries.push((item, estimate));
                }
                Self::Report {
                    entries,
                    epoch: d.read_u64()?,
                }
            }
            5 => Self::Health(ServerHealth::deserialize(&mut d)?),
            6 => Self::Checkpointed {
                tenants: d.read_u64()?,
            },
            7 => Self::Snapshot {
                bytes: d.read_byte_seq()?,
            },
            8 => Self::ShuttingDown,
            9 => Self::Error {
                code: d.read_u64()?,
                message: d.read_string()?,
            },
            10 => Self::Recovered {
                shards: d.read_u64()?,
            },
            11 => Self::RangeEstimate {
                estimate: d.read_f64()?,
                epoch: d.read_u64()?,
            },
            12 => {
                let n = d.read_seq_len()?;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let level = d.read_u64()?;
                    if level > 64 {
                        return Err(de::Error::invariant(format!(
                            "dyadic level {level} above 64"
                        )));
                    }
                    let lo = d.read_u64()?;
                    let hi = d.read_u64()?;
                    let estimate = d.read_f64()?;
                    entries.push((level as u32, lo, hi, estimate));
                }
                Self::Ranges {
                    entries,
                    epoch: d.read_u64()?,
                }
            }
            op => return Err(de::Error::invariant(format!("unknown response op {op}"))),
        })
    }
}

impl Request {
    /// Encodes into a checksummed, tagged frame body.
    pub fn encode(&self) -> bytes::Bytes {
        snapshot::encode(REQUEST_TAG, self)
    }

    /// Decodes a frame body. Fail-closed: any deviation is a
    /// structured error.
    pub fn decode(body: &[u8]) -> Result<Self, ProtocolError> {
        Ok(snapshot::decode(REQUEST_TAG, body)?)
    }
}

impl Response {
    /// Encodes into a checksummed, tagged frame body.
    pub fn encode(&self) -> bytes::Bytes {
        snapshot::encode(RESPONSE_TAG, self)
    }

    /// Decodes a frame body. Fail-closed: any deviation is a
    /// structured error.
    pub fn decode(body: &[u8]) -> Result<Self, ProtocolError> {
        Ok(snapshot::decode(RESPONSE_TAG, body)?)
    }

    /// The error response for a failed request.
    pub fn from_error(e: &ProtocolError) -> Self {
        let (code, message) = e.to_wire();
        Self::Error { code, message }
    }
}

/// Writes one frame: the `u32 LE` body length, then the body.
///
/// # Errors
/// [`ProtocolError::FrameTooLarge`] if `body` exceeds
/// [`MAX_FRAME_LEN`]; otherwise transport errors.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), ProtocolError> {
    if body.len() > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge {
            len: body.len() as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame body, validating the length prefix against
/// [`MAX_FRAME_LEN`] before allocating.
///
/// A clean EOF *before the first prefix byte* returns `Ok(None)` (the
/// peer hung up between frames); EOF anywhere later is
/// [`ProtocolError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(ProtocolError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge {
            len: len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Create {
                tenant: "alpha".into(),
                spec: TenantSpec::default(),
            },
            Request::Ingest {
                tenant: "alpha".into(),
                shard: 3,
                client: 0x9E37_79B9,
                req_seq: 17,
                items: vec![1, 2, 3, u64::MAX],
            },
            Request::Query {
                tenant: "alpha".into(),
            },
            Request::Health,
            Request::Checkpoint,
            Request::Snapshot {
                tenant: "alpha".into(),
            },
            Request::Recover {
                tenant: "alpha".into(),
            },
            Request::Shutdown,
            Request::RangeQuery {
                tenant: "alpha".into(),
                lo: 1 << 24,
                hi: (1 << 25) - 1,
            },
            Request::HeavyRanges {
                tenant: "alpha".into(),
                phi: 0.05,
            },
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Created,
            Response::Ingested { accepted: 42 },
            Response::RetryAfter { millis: 25 },
            Response::Report {
                entries: vec![(7, 1000.5), (9, 10.0)],
                epoch: 12,
            },
            Response::Health(ServerHealth {
                tenants: 2,
                quarantined: vec!["bad".into()],
                resident_bytes: 4096,
                wal_appended: 12,
                wal_depth: 3,
                wal_fsyncs: 4,
                wal_max_commit_wait_us: 1500,
                wal_replayed: 7,
                dedup_hits: 2,
                wal_segments: 2,
                ..ServerHealth::default()
            }),
            Response::Checkpointed { tenants: 2 },
            Response::Snapshot {
                bytes: vec![0xDE, 0xAD],
            },
            Response::ShuttingDown,
            Response::Recovered { shards: 1 },
            Response::Error {
                code: 7,
                message: "unknown tenant".into(),
            },
            Response::RangeEstimate {
                estimate: 123.5,
                epoch: 4,
            },
            Response::Ranges {
                entries: vec![(8, 0, (1 << 24) - 1, 400.0), (32, 7, 7, 90.25)],
                epoch: 4,
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for req in requests() {
            let back = Request::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
        for rsp in responses() {
            let back = Response::decode(&rsp.encode()).unwrap();
            assert_eq!(back, rsp);
        }
    }

    #[test]
    fn frames_roundtrip_over_a_byte_pipe() {
        let mut pipe = Vec::new();
        for req in requests() {
            write_frame(&mut pipe, &req.encode()).unwrap();
        }
        let mut r = &pipe[..];
        for req in requests() {
            let body = read_frame(&mut r).unwrap().expect("frame present");
            assert_eq!(Request::decode(&body).unwrap(), req);
        }
        assert_eq!(
            read_frame(&mut r).unwrap(),
            None,
            "clean EOF between frames"
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut &evil[..]).unwrap_err();
        assert!(matches!(err, ProtocolError::FrameTooLarge { .. }), "{err}");
    }

    #[test]
    fn truncation_mid_prefix_and_mid_body_is_structured() {
        let mut pipe = Vec::new();
        write_frame(
            &mut pipe,
            &Request::Query {
                tenant: "alpha".into(),
            }
            .encode(),
        )
        .unwrap();
        for cut in 1..pipe.len() {
            let err = read_frame(&mut &pipe[..cut]).unwrap_err();
            assert_eq!(err, ProtocolError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_bodies_never_decode() {
        let body = Request::Health.encode();
        for i in 0..body.len() {
            let mut bent = body.to_vec();
            bent[i] ^= 0x40;
            assert!(
                Request::decode(&bent).is_err(),
                "bit flip at byte {i} slipped through the checksum"
            );
        }
    }

    #[test]
    fn hostile_batch_and_name_caps_hold() {
        let shard0_items = |n: usize| Request::Ingest {
            tenant: "t".into(),
            shard: 0,
            client: 0,
            req_seq: 0,
            items: vec![7; n],
        };
        assert!(Request::decode(&shard0_items(MAX_BATCH).encode()).is_ok());
        assert!(Request::decode(&shard0_items(MAX_BATCH + 1).encode()).is_err());
        let long_name = Request::Query {
            tenant: "x".repeat(MAX_TENANT_NAME + 1),
        };
        assert!(Request::decode(&long_name.encode()).is_err());
    }

    #[test]
    fn wire_errors_roundtrip_their_codes() {
        let errors = [
            ProtocolError::Truncated,
            ProtocolError::DeadlineExceeded,
            ProtocolError::UnknownTenant("t".into()),
            ProtocolError::TenantExists("t".into()),
            ProtocolError::Quarantined("t".into()),
            ProtocolError::Overloaded { retry_after_ms: 9 },
        ];
        for e in errors {
            let (code, message) = e.to_wire();
            let back = ProtocolError::from_wire(code, message.clone());
            assert_eq!(back.to_wire().0, code, "{message}");
        }
    }
}
