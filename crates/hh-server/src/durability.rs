//! The durability contract: what gets logged, what gets deduplicated,
//! and what a checkpoint bundle carries.
//!
//! Three pieces, all consumed by [`crate::tenant`] and
//! [`crate::store`]:
//!
//! * [`Durability`] — the server-level knob: checkpoint-only (PR 8's
//!   contract, lose at most the un-checkpointed window) or a per-tenant
//!   WAL (this PR's contract, lose nothing acked).
//! * [`IngestFrame`] — the WAL record payload: one acked ingest batch
//!   with its shard, the client's identity, and the client's request
//!   sequence number. Replay re-applies it; the identity pair re-arms
//!   dedup so a retry that straddles a crash is still exactly-once.
//! * [`DedupTable`] — per-tenant request dedup: the last request
//!   sequence number seen from each client, with the ack it earned.
//!   A retried `(client, req_seq)` returns the original ack instead of
//!   double-applying. Bounded FIFO (oldest client evicted), and
//!   persisted inside the checkpoint bundle so exactly-once survives
//!   recovery.
//! * [`BankSnapshot`] — the one-file checkpoint bundle: every shard's
//!   summary bytes, the per-shard WAL high-water marks those bytes
//!   reflect, and the dedup table. One file because the pieces are
//!   meaningless apart: shard bytes without their high-water marks
//!   either double-apply or drop the replay tail.

use crate::proto::MAX_BATCH;
use hh_wal::FsyncPolicy;
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::collections::HashMap;
use std::collections::VecDeque;

/// What the server promises about acked ingests across a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Periodic checkpoints only (PR 8's contract): a kill loses at
    /// most the un-checkpointed window.
    CheckpointOnly,
    /// Write-ahead log every acked ingest: a kill loses nothing acked.
    Wal {
        /// When acks become power-loss durable (see [`FsyncPolicy`]).
        fsync: FsyncPolicy,
        /// WAL segment rotation threshold in bytes.
        segment_bytes: u64,
    },
}

/// Hard ceiling on dedup entries per tenant (one per distinct client;
/// FIFO eviction beyond it).
pub const DEDUP_CAP: usize = 4096;

/// One acked ingest batch, as logged to (and replayed from) the WAL.
///
/// The encoding is plain little-endian — `[u32 shard][u64 client]
/// [u64 req_seq][u32 count][count × u64 items]` — not the snapshot
/// codec: the WAL record layer already owns framing and checksumming,
/// so the payload only needs to be unambiguous and bounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestFrame {
    /// Target shard in the tenant's bank.
    pub shard: u32,
    /// Client identity (0 = anonymous, no dedup).
    pub client: u64,
    /// Client's request sequence number (dedup key with `client`).
    pub req_seq: u64,
    /// The batch items.
    pub items: Vec<u64>,
}

/// Encodes an ingest frame from its parts into `out` (cleared first) —
/// the hot-path form, no [`IngestFrame`] allocation.
pub fn encode_frame(shard: u32, client: u64, req_seq: u64, items: &[u64], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(24 + items.len() * 8);
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&client.to_le_bytes());
    out.extend_from_slice(&req_seq.to_le_bytes());
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for &item in items {
        out.extend_from_slice(&item.to_le_bytes());
    }
}

impl IngestFrame {
    /// Encodes into `out` (cleared first).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_frame(self.shard, self.client, self.req_seq, &self.items, out);
    }

    /// Decodes a WAL record payload. Fail-closed: the item count is
    /// bounded by [`MAX_BATCH`] and checked against the remaining bytes
    /// before any allocation; trailing garbage is an error. A payload
    /// that fails here inside a checksum-valid record is structural
    /// damage, not a torn tail.
    pub fn decode(buf: &[u8]) -> Result<Self, String> {
        if buf.len() < 24 {
            return Err(format!("ingest frame of {} bytes is too short", buf.len()));
        }
        let shard = u32::from_le_bytes(buf[0..4].try_into().expect("sized"));
        let client = u64::from_le_bytes(buf[4..12].try_into().expect("sized"));
        let req_seq = u64::from_le_bytes(buf[12..20].try_into().expect("sized"));
        let count = u32::from_le_bytes(buf[20..24].try_into().expect("sized")) as usize;
        if count > MAX_BATCH {
            return Err(format!(
                "ingest frame claims {count} items, above the {MAX_BATCH}-item cap"
            ));
        }
        if buf.len() != 24 + count * 8 {
            return Err(format!(
                "ingest frame length {} does not match {count} items",
                buf.len()
            ));
        }
        let items = buf[24..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        Ok(Self {
            shard,
            client,
            req_seq,
            items,
        })
    }
}

/// What dedup remembers about a client's latest request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupEntry {
    /// The client's request sequence number.
    pub req_seq: u64,
    /// The ack the request earned (items accepted).
    pub accepted: u64,
    /// The WAL sequence number the batch was logged under (0 when the
    /// tenant runs without a WAL).
    pub wal_seq: u64,
}

/// Per-tenant exactly-once request dedup; see the module docs.
#[derive(Debug, Default)]
pub struct DedupTable {
    entries: HashMap<u64, DedupEntry>,
    /// Clients in admission order, for FIFO eviction at [`DEDUP_CAP`].
    order: VecDeque<u64>,
    hits: u64,
}

impl DedupTable {
    /// Looks up a retry: returns the original ack if `(client,
    /// req_seq)` matches the client's latest request. `client` 0 is
    /// anonymous and never deduplicated.
    pub fn check(&mut self, client: u64, req_seq: u64) -> Option<DedupEntry> {
        if client == 0 {
            return None;
        }
        let entry = self.entries.get(&client)?;
        if entry.req_seq == req_seq {
            self.hits += 1;
            return Some(*entry);
        }
        None
    }

    /// Records the ack for a client's latest request (replacing any
    /// earlier one). Evicts the oldest-admitted client beyond
    /// [`DEDUP_CAP`].
    pub fn admit(&mut self, client: u64, entry: DedupEntry) {
        if client == 0 {
            return;
        }
        if self.entries.insert(client, entry).is_none() {
            self.order.push_back(client);
            if self.order.len() > DEDUP_CAP {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                }
            }
        }
    }

    /// Admission for WAL replay: only takes the entry if it is newer
    /// (higher `req_seq`) than what the checkpoint bundle already
    /// restored — a replayed record must never regress a client's
    /// entry, or a later retry of the newer request would miss dedup
    /// and double-apply.
    pub fn admit_replay(&mut self, client: u64, entry: DedupEntry) {
        if client == 0 {
            return;
        }
        if let Some(cur) = self.entries.get(&client) {
            if cur.req_seq >= entry.req_seq {
                return;
            }
        }
        self.admit(client, entry);
    }

    /// Retries answered from the table so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries as `(client, entry)` in admission order, for the
    /// checkpoint bundle.
    pub fn snapshot(&self) -> Vec<(u64, DedupEntry)> {
        self.order
            .iter()
            .filter_map(|c| self.entries.get(c).map(|e| (*c, *e)))
            .collect()
    }

    /// Rebuilds a table from a checkpoint bundle's entries.
    pub fn from_snapshot(entries: &[(u64, DedupEntry)]) -> Self {
        let mut t = Self::default();
        for &(client, entry) in entries {
            t.admit(client, entry);
        }
        t
    }
}

/// The one-file checkpoint bundle a tenant persists; see the module
/// docs. Serialized under the store's bank tag through the v3 snapshot
/// codec, so it inherits tagging, checksumming, and fail-closed
/// decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct BankSnapshot {
    /// Each shard's summary snapshot bytes, in shard order.
    pub shards: Vec<Vec<u8>>,
    /// Per-shard WAL high-water marks: shard `j`'s bytes reflect every
    /// WAL record for `j` with sequence number at or below `hwms[j]`.
    /// All zeros when the tenant runs without a WAL.
    pub hwms: Vec<u64>,
    /// The dedup table at checkpoint time.
    pub dedup: Vec<(u64, DedupEntry)>,
}

impl Serialize for BankSnapshot {
    fn serialize<S: Serializer>(&self, mut s: S) -> Result<S::Ok, S::Error> {
        s.write_seq_len(self.shards.len())?;
        for bytes in &self.shards {
            s.write_byte_seq(bytes)?;
        }
        s.write_seq_len(self.hwms.len())?;
        for &hwm in &self.hwms {
            s.write_u64(hwm)?;
        }
        s.write_seq_len(self.dedup.len())?;
        for &(client, e) in &self.dedup {
            s.write_u64(client)?;
            s.write_u64(e.req_seq)?;
            s.write_u64(e.accepted)?;
            s.write_u64(e.wal_seq)?;
        }
        s.done()
    }
}

impl<'de> Deserialize<'de> for BankSnapshot {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let n = d.read_seq_len()?;
        if n == 0 || n > crate::facade::MAX_SHARDS as usize {
            return Err(de::Error::invariant(format!(
                "bank claims {n} shards outside 1..={}",
                crate::facade::MAX_SHARDS
            )));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(d.read_byte_seq()?);
        }
        let h = d.read_seq_len()?;
        if h != n {
            return Err(de::Error::invariant(format!(
                "bank has {n} shards but {h} high-water marks"
            )));
        }
        let mut hwms = Vec::with_capacity(h);
        for _ in 0..h {
            hwms.push(d.read_u64()?);
        }
        let k = d.read_seq_len()?;
        if k > DEDUP_CAP {
            return Err(de::Error::length_overflow(format!(
                "bank carries {k} dedup entries, above the {DEDUP_CAP} cap"
            )));
        }
        let mut dedup = Vec::with_capacity(k);
        for _ in 0..k {
            let client = d.read_u64()?;
            let req_seq = d.read_u64()?;
            let accepted = d.read_u64()?;
            let wal_seq = d.read_u64()?;
            dedup.push((
                client,
                DedupEntry {
                    req_seq,
                    accepted,
                    wal_seq,
                },
            ));
        }
        Ok(Self {
            shards,
            hwms,
            dedup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_frame_roundtrips_and_rejects_damage() {
        let frame = IngestFrame {
            shard: 3,
            client: 0xDEAD_BEEF,
            req_seq: 42,
            items: vec![1, 2, 3, u64::MAX],
        };
        let mut buf = Vec::new();
        frame.encode_into(&mut buf);
        assert_eq!(IngestFrame::decode(&buf).unwrap(), frame);
        // Truncations and extensions both fail (exact length required).
        assert!(IngestFrame::decode(&buf[..buf.len() - 1]).is_err());
        let mut long = buf.clone();
        long.push(0);
        assert!(IngestFrame::decode(&long).is_err());
        // A hostile count is rejected before sizing anything from it.
        let mut evil = buf.clone();
        evil[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(IngestFrame::decode(&evil).is_err());
    }

    #[test]
    fn dedup_answers_retries_and_forgets_superseded_seqs() {
        let mut t = DedupTable::default();
        assert!(t.check(7, 1).is_none());
        t.admit(
            7,
            DedupEntry {
                req_seq: 1,
                accepted: 100,
                wal_seq: 5,
            },
        );
        let hit = t.check(7, 1).unwrap();
        assert_eq!((hit.accepted, hit.wal_seq), (100, 5));
        assert_eq!(t.hits(), 1);
        // A newer request from the same client supersedes the entry.
        t.admit(
            7,
            DedupEntry {
                req_seq: 2,
                accepted: 50,
                wal_seq: 6,
            },
        );
        assert!(t.check(7, 1).is_none());
        assert!(t.check(7, 2).is_some());
        // Client 0 is anonymous.
        t.admit(
            0,
            DedupEntry {
                req_seq: 9,
                accepted: 9,
                wal_seq: 9,
            },
        );
        assert!(t.check(0, 9).is_none());
    }

    #[test]
    fn dedup_evicts_fifo_at_the_cap() {
        let mut t = DedupTable::default();
        for c in 1..=(DEDUP_CAP as u64 + 10) {
            t.admit(
                c,
                DedupEntry {
                    req_seq: 1,
                    accepted: 1,
                    wal_seq: c,
                },
            );
        }
        assert!(t.check(1, 1).is_none(), "oldest client evicted");
        assert!(t.check(DEDUP_CAP as u64 + 10, 1).is_some());
        assert!(t.snapshot().len() <= DEDUP_CAP);
    }

    #[test]
    fn dedup_survives_a_snapshot_roundtrip() {
        let mut t = DedupTable::default();
        for c in [3u64, 9, 27] {
            t.admit(
                c,
                DedupEntry {
                    req_seq: c * 2,
                    accepted: c * 3,
                    wal_seq: c * 4,
                },
            );
        }
        let back = DedupTable::from_snapshot(&t.snapshot());
        for c in [3u64, 9, 27] {
            let e = {
                let mut b = DedupTable::from_snapshot(&back.snapshot());
                b.check(c, c * 2).unwrap()
            };
            assert_eq!((e.accepted, e.wal_seq), (c * 3, c * 4));
        }
    }

    #[test]
    fn bank_snapshot_roundtrips_through_the_codec() {
        use hh_core::mergeable::snapshot;
        let bank = BankSnapshot {
            shards: vec![vec![1, 2, 3], vec![], vec![0xFF; 64]],
            hwms: vec![10, 0, 7],
            dedup: vec![(
                5,
                DedupEntry {
                    req_seq: 1,
                    accepted: 2,
                    wal_seq: 3,
                },
            )],
        };
        let bytes = snapshot::encode("hh.test.bank", &bank);
        let back: BankSnapshot = snapshot::decode("hh.test.bank", &bytes).unwrap();
        assert_eq!(back, bank);
        // Mismatched hwm count is an invariant violation, not a panic.
        let bent = BankSnapshot {
            hwms: vec![1],
            ..bank.clone()
        };
        let bytes = snapshot::encode("hh.test.bank", &bent);
        assert!(snapshot::decode::<BankSnapshot>("hh.test.bank", &bytes).is_err());
    }
}
