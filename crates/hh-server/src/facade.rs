//! The object-safe serving facade: one summary type for all nine
//! implementations.
//!
//! The server hosts tenants whose summary *kind* is chosen per tenant
//! at `Create` time, so its banks cannot be generic over a summary
//! type — they need one runtime type that any of the workspace's nine
//! [`MergeableSummary`] implementations can stand behind.
//! [`DynSummary`] is that type: a boxed [`ErasedSummary`] that
//! implements the full summary contract (`StreamSummary`,
//! `HeavyHitters`, `MergeableSummary`, `SpaceUsage`) by delegation, so
//! everything built for concrete summaries — `ShardRuntime` ingestion,
//! `Frozen` serving views, checkpoint/recover — works unchanged on the
//! erased type.
//!
//! Two pieces make the erasure total rather than partial:
//!
//! * **Merging** goes through a kind check plus `Any` downcast: merging
//!   two `DynSummary` values of different kinds is a structured
//!   [`MergeError::Incompatible`], same-kind merges delegate to the
//!   concrete summary's own compatibility checks (parameters, seeds).
//! * **Restore** is tag-dispatched: snapshot buffers already carry
//!   `"hh.<type>.vN"` tags, so [`DynSummary::from_bytes_report`] probes
//!   each kind's decoder and lets the one whose tag matches run its
//!   full fail-closed validation. A buffer matching no kind is a
//!   [`SnapshotError::WrongTag`]; a buffer matching a kind but failing
//!   its validation reports that kind's structured error.
//!
//! Banks are built from [`TenantSpec::build_bank`], which splits seeds
//! exactly like the `hh-pipeline` presets: one *structure seed* shared
//! by every shard of the tenant (merge compatibility), a distinct
//! *stream seed* per shard (independent sampling).

use crate::proto::ProtocolError;
use bytes::Bytes;
use hh_baselines::{CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving};
use hh_core::{
    HeavyHitters, HhParams, ItemEstimate, MergeError, MergeableSummary, MisraGries, OptimalListHh,
    Report, RestoreReport, SimpleListHh, SnapshotError, StreamSummary,
};
use hh_dyadic::{DyadicHh, HeavyRange};
use hh_space::SpaceUsage;
use std::any::Any;

/// Which of the nine mergeable summary implementations a tenant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// The paper's Algorithm 1 ([`SimpleListHh`]).
    Algo1,
    /// The paper's Algorithm 2 ([`OptimalListHh`]).
    Algo2,
    /// The hashed-id Misra–Gries core primitive ([`MisraGries`]).
    MisraGries,
    /// The raw-id Misra–Gries baseline ([`MisraGriesBaseline`]).
    MisraGriesBaseline,
    /// Space-Saving \[MAE05\] ([`SpaceSaving`]).
    SpaceSaving,
    /// Lossy Counting \[MM02\] ([`LossyCounting`]).
    LossyCounting,
    /// Count-Min \[CM05\] ([`CountMin`]).
    CountMin,
    /// CountSketch \[CCFC04\] ([`CountSketch`]).
    CountSketch,
    /// Dyadic range/prefix bank over Count-Min levels ([`DyadicHh`]) —
    /// the only kind that answers `RangeQuery`/`HeavyRanges`.
    Dyadic,
}

impl SummaryKind {
    /// Every servable kind, in wire-discriminant order (new kinds are
    /// appended — existing codes never move).
    pub const ALL: [SummaryKind; 9] = [
        SummaryKind::Algo1,
        SummaryKind::Algo2,
        SummaryKind::MisraGries,
        SummaryKind::MisraGriesBaseline,
        SummaryKind::SpaceSaving,
        SummaryKind::LossyCounting,
        SummaryKind::CountMin,
        SummaryKind::CountSketch,
        SummaryKind::Dyadic,
    ];

    /// Stable wire discriminant.
    pub fn code(self) -> u64 {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("every kind is in ALL") as u64
    }

    /// Inverse of [`SummaryKind::code`].
    pub fn from_code(code: u64) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// Human-readable name (matches the snapshot tag families).
    pub fn name(self) -> &'static str {
        match self {
            SummaryKind::Algo1 => "algo1",
            SummaryKind::Algo2 => "algo2",
            SummaryKind::MisraGries => "misra-gries",
            SummaryKind::MisraGriesBaseline => "baseline.misra-gries",
            SummaryKind::SpaceSaving => "baseline.space-saving",
            SummaryKind::LossyCounting => "baseline.lossy-counting",
            SummaryKind::CountMin => "baseline.count-min",
            SummaryKind::CountSketch => "baseline.count-sketch",
            SummaryKind::Dyadic => "dyadic",
        }
    }
}

/// Everything a tenant needs to (re)build its summary bank: the kind,
/// the problem parameters, and the shared structure seed.
///
/// Instances with the same spec are merge-compatible by construction:
/// deterministic kinds need only matching parameters, randomized kinds
/// additionally share `structure_seed` (their hash draws) while each
/// shard's sampling coins come from a derived per-shard stream seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Which summary implementation the tenant runs.
    pub kind: SummaryKind,
    /// Additive error ε (fraction of the stream).
    pub eps: f64,
    /// Report threshold φ (fraction of the stream).
    pub phi: f64,
    /// Failure probability δ for the randomized kinds.
    pub delta: f64,
    /// Universe size `n` (ids are in `[0, n)`).
    pub universe: u64,
    /// Advertised stream length `m` (sampling rates key off this).
    pub m: u64,
    /// Structure seed: hash draws, shared across the tenant's shards.
    pub structure_seed: u64,
    /// Shards in the tenant's ingest bank (`1..=MAX_SHARDS`).
    pub shards: u32,
}

/// Upper bound on shards per tenant (a protocol-level sanity cap, not
/// a tuning recommendation).
pub const MAX_SHARDS: u32 = 64;

impl Default for TenantSpec {
    fn default() -> Self {
        Self {
            kind: SummaryKind::SpaceSaving,
            eps: 0.05,
            phi: 0.2,
            delta: 0.1,
            universe: 1 << 32,
            m: 1 << 24,
            structure_seed: 42,
            shards: 1,
        }
    }
}

/// SplitMix64 finalizer (the same mix the pipeline presets use).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TenantSpec {
    /// Validates every field against its protocol-level range, so the
    /// concrete constructors below can never panic on hostile specs.
    ///
    /// # Errors
    /// [`ProtocolError::BadRequest`] naming the offending field.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        let bad = |what: String| Err(ProtocolError::BadRequest(what));
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return bad(format!("eps {} must be in (0, 1)", self.eps));
        }
        if !(self.phi > 0.0 && self.phi <= 1.0) {
            return bad(format!("phi {} must be in (0, 1]", self.phi));
        }
        if self.eps >= self.phi {
            return bad(format!("eps {} must be below phi {}", self.eps, self.phi));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return bad(format!("delta {} must be in (0, 1)", self.delta));
        }
        if self.universe == 0 {
            return bad("universe must be at least 1".to_string());
        }
        if self.m == 0 {
            return bad("advertised stream length must be at least 1".to_string());
        }
        if self.shards == 0 || self.shards > MAX_SHARDS {
            return bad(format!(
                "shards {} must be in 1..={MAX_SHARDS}",
                self.shards
            ));
        }
        Ok(())
    }

    /// The stream seed shard `j` of this tenant samples with.
    fn stream_seed(&self, j: usize) -> u64 {
        mix64(mix64(self.structure_seed ^ 0x5EED).wrapping_add(j as u64))
    }

    /// Builds shard `j`'s summary. [`TenantSpec::validate`] must have
    /// passed (the constructors assume in-range parameters).
    fn build_shard(&self, j: usize) -> Result<DynSummary, ProtocolError> {
        let params = HhParams::with_delta(self.eps, self.phi, self.delta)?;
        Ok(match self.kind {
            SummaryKind::Algo1 => DynSummary::new(
                SummaryKind::Algo1,
                SimpleListHh::with_seeds(
                    params,
                    self.universe,
                    self.m,
                    self.structure_seed,
                    self.stream_seed(j),
                )?,
            ),
            SummaryKind::Algo2 => DynSummary::new(
                SummaryKind::Algo2,
                OptimalListHh::with_seeds(
                    params,
                    self.universe,
                    self.m,
                    self.structure_seed,
                    self.stream_seed(j),
                )?,
            ),
            SummaryKind::MisraGries => {
                // k counters bound the undercount by m/(k+1) ≤ εm.
                let capacity = (1.0 / self.eps).ceil() as usize;
                DynSummary::new(
                    SummaryKind::MisraGries,
                    MisraGries::for_universe(capacity, self.universe),
                )
            }
            SummaryKind::MisraGriesBaseline => DynSummary::new(
                SummaryKind::MisraGriesBaseline,
                MisraGriesBaseline::new(self.eps, self.phi, self.universe),
            ),
            SummaryKind::SpaceSaving => DynSummary::new(
                SummaryKind::SpaceSaving,
                SpaceSaving::new(self.eps, self.phi, self.universe),
            ),
            SummaryKind::LossyCounting => DynSummary::new(
                SummaryKind::LossyCounting,
                LossyCounting::new(self.eps, self.phi, self.universe),
            ),
            SummaryKind::CountMin => DynSummary::new(
                SummaryKind::CountMin,
                CountMin::new(
                    self.eps,
                    self.phi,
                    self.delta,
                    self.universe,
                    self.structure_seed,
                ),
            ),
            SummaryKind::CountSketch => DynSummary::new(
                SummaryKind::CountSketch,
                CountSketch::new(
                    self.eps,
                    self.phi,
                    self.delta,
                    self.universe,
                    self.structure_seed,
                ),
            ),
            // The Count-Min bank is deterministic given the structure
            // seed, so every shard is identical and merge-compatible.
            SummaryKind::Dyadic => DynSummary::new(
                SummaryKind::Dyadic,
                DyadicHh::count_min(
                    self.eps,
                    self.phi,
                    self.delta,
                    self.universe,
                    self.structure_seed,
                )?,
            ),
        })
    }

    /// Builds the tenant's full shard bank: `shards` seed-aligned
    /// summaries (shared structure seed, per-shard stream seeds), all
    /// merge-compatible with each other.
    ///
    /// # Errors
    /// [`ProtocolError::BadRequest`] on an out-of-range spec.
    pub fn build_bank(&self) -> Result<Vec<DynSummary>, ProtocolError> {
        self.validate()?;
        (0..self.shards as usize)
            .map(|j| self.build_shard(j))
            .collect()
    }
}

/// The object-safe method set [`DynSummary`] erases to. Implemented by
/// the private `Cell` wrapper for each of the nine kinds; not meant
/// to be implemented outside this module.
pub trait ErasedSummary: Send + Sync {
    /// Which implementation is behind the box.
    fn kind(&self) -> SummaryKind;
    /// [`StreamSummary::insert_batch`].
    fn insert_batch_dyn(&mut self, items: &[u64]);
    /// [`HeavyHitters::report`] (for [`MisraGries`], the full live
    /// entry list as a report — thresholding is the caller's).
    fn report_dyn(&self) -> Report;
    /// [`MergeableSummary::to_bytes`].
    fn to_bytes_dyn(&self) -> Bytes;
    /// Kind-checked [`MergeableSummary::merge_from`].
    fn merge_dyn(&mut self, other: &dyn ErasedSummary) -> Result<(), MergeError>;
    /// Downcast hook for [`ErasedSummary::merge_dyn`].
    fn as_any(&self) -> &dyn Any;
    /// [`Clone`], boxed.
    fn clone_dyn(&self) -> Box<dyn ErasedSummary>;
    /// [`SpaceUsage::heap_bytes`].
    fn heap_bytes_dyn(&self) -> usize;
    /// [`SpaceUsage::model_bits`].
    fn model_bits_dyn(&self) -> u64;
    /// [`DyadicHh::range_estimate`], for the kinds that answer range
    /// queries; `None` from every point summary.
    fn range_estimate_dyn(&self, _lo: u64, _hi: u64) -> Option<f64> {
        None
    }
    /// [`DyadicHh::heavy_ranges`], for the kinds that answer prefix
    /// queries; `None` from every point summary.
    fn heavy_ranges_dyn(&self, _phi: f64) -> Option<Vec<HeavyRange>> {
        None
    }
}

/// A concrete summary paired with its kind tag.
struct Cell<S> {
    kind: SummaryKind,
    inner: S,
}

/// The facade bound: everything the serving surface needs from a
/// concrete summary. All nine kinds satisfy it; `report` is supplied
/// per-kind by the macro below because [`MisraGries`] exposes entries
/// instead of implementing [`HeavyHitters`].
macro_rules! erase {
    ($ty:ty, $report:expr $(, $extra:item)*) => {
        impl ErasedSummary for Cell<$ty> {
            fn kind(&self) -> SummaryKind {
                self.kind
            }
            fn insert_batch_dyn(&mut self, items: &[u64]) {
                self.inner.insert_batch(items);
            }
            fn report_dyn(&self) -> Report {
                #[allow(clippy::redundant_closure_call)]
                ($report)(&self.inner)
            }
            fn to_bytes_dyn(&self) -> Bytes {
                self.inner.to_bytes()
            }
            fn merge_dyn(&mut self, other: &dyn ErasedSummary) -> Result<(), MergeError> {
                match other.as_any().downcast_ref::<Cell<$ty>>() {
                    Some(o) => self.inner.merge_from(&o.inner),
                    None => Err(MergeError::Incompatible("summary kinds")),
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn clone_dyn(&self) -> Box<dyn ErasedSummary> {
                Box::new(Cell {
                    kind: self.kind,
                    inner: self.inner.clone(),
                })
            }
            fn heap_bytes_dyn(&self) -> usize {
                self.inner.heap_bytes()
            }
            fn model_bits_dyn(&self) -> u64 {
                self.inner.model_bits()
            }
            $($extra)*
        }
    };
}

erase!(SimpleListHh, HeavyHitters::report);
erase!(OptimalListHh, HeavyHitters::report);
erase!(MisraGries, |mg: &MisraGries| Report::new(
    mg.live_entries()
        .map(|(item, count)| ItemEstimate {
            item,
            count: count as f64,
        })
        .collect(),
));
erase!(MisraGriesBaseline, HeavyHitters::report);
erase!(SpaceSaving, HeavyHitters::report);
erase!(LossyCounting, HeavyHitters::report);
erase!(CountMin, HeavyHitters::report);
erase!(CountSketch, HeavyHitters::report);
erase!(
    DyadicHh<CountMin>,
    HeavyHitters::report,
    fn range_estimate_dyn(&self, lo: u64, hi: u64) -> Option<f64> {
        Some(self.inner.range_estimate(lo, hi))
    },
    fn heavy_ranges_dyn(&self, phi: f64) -> Option<Vec<HeavyRange>> {
        Some(self.inner.heavy_ranges(phi))
    }
);

/// Any of the nine summary implementations behind one runtime type.
///
/// Implements the whole summary contract by delegation, so the shard
/// runtime, frozen serving views, and the snapshot/checkpoint machinery
/// all work on it unchanged. Restore is tag-dispatched across all
/// kinds; see the module docs.
pub struct DynSummary(Box<dyn ErasedSummary>);

impl std::fmt::Debug for DynSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynSummary")
            .field("kind", &self.0.kind())
            .finish_non_exhaustive()
    }
}

impl Clone for DynSummary {
    fn clone(&self) -> Self {
        Self(self.0.clone_dyn())
    }
}

impl DynSummary {
    /// Erases a concrete summary under its kind tag.
    fn new<S>(kind: SummaryKind, inner: S) -> Self
    where
        Cell<S>: ErasedSummary + 'static,
    {
        Self(Box::new(Cell { kind, inner }))
    }

    /// Which implementation is behind the facade.
    pub fn kind(&self) -> SummaryKind {
        self.0.kind()
    }

    /// Estimated mass of the inclusive id range `[lo, hi]`; `None`
    /// unless the tenant runs the [`SummaryKind::Dyadic`] kind.
    pub fn range_estimate(&self, lo: u64, hi: u64) -> Option<f64> {
        self.0.range_estimate_dyn(lo, hi)
    }

    /// Heavy dyadic intervals at threshold `phi`; `None` unless the
    /// tenant runs the [`SummaryKind::Dyadic`] kind.
    pub fn heavy_ranges(&self, phi: f64) -> Option<Vec<HeavyRange>> {
        self.0.heavy_ranges_dyn(phi)
    }

    /// Restores whichever kind's snapshot tag `bytes` carries; tried in
    /// [`SummaryKind::ALL`] order.
    fn restore_any(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        let mut wrong_tag = None;
        for kind in SummaryKind::ALL {
            let outcome =
                match kind {
                    SummaryKind::Algo1 => {
                        SimpleListHh::from_bytes_report(bytes).map(|(s, r)| (Self::new(kind, s), r))
                    }
                    SummaryKind::Algo2 => OptimalListHh::from_bytes_report(bytes)
                        .map(|(s, r)| (Self::new(kind, s), r)),
                    SummaryKind::MisraGries => {
                        MisraGries::from_bytes_report(bytes).map(|(s, r)| (Self::new(kind, s), r))
                    }
                    SummaryKind::MisraGriesBaseline => MisraGriesBaseline::from_bytes_report(bytes)
                        .map(|(s, r)| (Self::new(kind, s), r)),
                    SummaryKind::SpaceSaving => {
                        SpaceSaving::from_bytes_report(bytes).map(|(s, r)| (Self::new(kind, s), r))
                    }
                    SummaryKind::LossyCounting => LossyCounting::from_bytes_report(bytes)
                        .map(|(s, r)| (Self::new(kind, s), r)),
                    SummaryKind::CountMin => {
                        CountMin::from_bytes_report(bytes).map(|(s, r)| (Self::new(kind, s), r))
                    }
                    SummaryKind::CountSketch => {
                        CountSketch::from_bytes_report(bytes).map(|(s, r)| (Self::new(kind, s), r))
                    }
                    SummaryKind::Dyadic => DyadicHh::<CountMin>::from_bytes_report(bytes)
                        .map(|(s, r)| (Self::new(kind, s), r)),
                };
            match outcome {
                Ok(restored) => return Ok(restored),
                // Another kind may still claim the tag; remember the
                // first mismatch in case none does.
                Err(SnapshotError::WrongTag { expected, found }) => {
                    wrong_tag.get_or_insert(SnapshotError::WrongTag { expected, found });
                }
                // The tag matched this kind and its fail-closed decoder
                // rejected the payload: that is the definitive error.
                Err(e) => return Err(e),
            }
        }
        Err(wrong_tag.unwrap_or(SnapshotError::Truncated))
    }
}

impl StreamSummary for DynSummary {
    fn insert(&mut self, item: u64) {
        self.0.insert_batch_dyn(&[item]);
    }

    fn insert_batch(&mut self, items: &[u64]) {
        self.0.insert_batch_dyn(items);
    }
}

impl HeavyHitters for DynSummary {
    fn report(&self) -> Report {
        self.0.report_dyn()
    }
}

impl MergeableSummary for DynSummary {
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.0.merge_dyn(&*other.0)
    }

    fn to_bytes(&self) -> Bytes {
        self.0.to_bytes_dyn()
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        Self::restore_any(bytes)
    }
}

impl SpaceUsage for DynSummary {
    fn model_bits(&self) -> u64 {
        self.0.model_bits_dyn()
    }

    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes_dyn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: SummaryKind) -> TenantSpec {
        TenantSpec {
            kind,
            m: 100_000,
            universe: 1 << 20,
            ..TenantSpec::default()
        }
    }

    #[test]
    fn every_kind_builds_ingests_reports_and_roundtrips() {
        for kind in SummaryKind::ALL {
            let mut bank = spec(kind).build_bank().unwrap();
            assert_eq!(bank.len(), 1, "{kind:?}");
            let s = &mut bank[0];
            let stream: Vec<u64> = (0..50_000u64)
                .map(|i| if i % 3 == 0 { 7 } else { i })
                .collect();
            s.insert_batch(&stream);
            assert!(s.report().contains(7), "{kind:?} lost the 33% item");
            let bytes = s.to_bytes();
            let (back, report) = DynSummary::from_bytes_report(&bytes).unwrap();
            assert!(report.checksum_verified, "{kind:?}");
            assert_eq!(back.kind(), kind, "tag dispatch picked the wrong kind");
            assert_eq!(back.to_bytes(), bytes, "{kind:?} restore not bit-identical");
        }
    }

    #[test]
    fn shards_are_seed_aligned_and_merge() {
        for kind in SummaryKind::ALL {
            let mut bank = spec(kind).tap_shards(4).build_bank().unwrap();
            let stream: Vec<u64> = (0..80_000u64)
                .map(|i| if i % 2 == 0 { 9 } else { i })
                .collect();
            for (j, chunk) in stream.chunks(20_000).enumerate() {
                bank[j].insert_batch(chunk);
            }
            let mut acc = bank.remove(0);
            for part in &bank {
                acc.merge_from(part)
                    .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            }
            assert!(acc.report().contains(9), "{kind:?} lost the 50% item");
        }
    }

    #[test]
    fn cross_kind_merge_is_a_structured_error() {
        let mut a = spec(SummaryKind::SpaceSaving)
            .build_bank()
            .unwrap()
            .remove(0);
        let b = spec(SummaryKind::CountMin).build_bank().unwrap().remove(0);
        assert_eq!(
            a.merge_from(&b).unwrap_err(),
            MergeError::Incompatible("summary kinds")
        );
    }

    #[test]
    fn restore_rejects_garbage_with_wrong_tag() {
        let err = DynSummary::from_bytes(b"definitely not a snapshot").unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::WrongTag { .. }
                | SnapshotError::Truncated
                | SnapshotError::LengthOverflow(_)
                | SnapshotError::Malformed(_)
        ));
    }

    #[test]
    fn spec_validation_rejects_out_of_range_fields() {
        for bad in [
            TenantSpec {
                eps: 0.0,
                ..TenantSpec::default()
            },
            TenantSpec {
                eps: 0.3,
                phi: 0.2,
                ..TenantSpec::default()
            },
            TenantSpec {
                phi: 1.5,
                ..TenantSpec::default()
            },
            TenantSpec {
                delta: 1.0,
                ..TenantSpec::default()
            },
            TenantSpec {
                universe: 0,
                ..TenantSpec::default()
            },
            TenantSpec {
                m: 0,
                ..TenantSpec::default()
            },
            TenantSpec {
                shards: 0,
                ..TenantSpec::default()
            },
            TenantSpec {
                shards: MAX_SHARDS + 1,
                ..TenantSpec::default()
            },
        ] {
            assert!(bad.build_bank().is_err(), "{bad:?} accepted");
        }
    }

    impl TenantSpec {
        fn tap_shards(mut self, shards: u32) -> Self {
            self.shards = shards;
            self
        }
    }
}
