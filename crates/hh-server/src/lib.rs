//! `hh-server`: a fault-tolerant multi-tenant serving daemon for the
//! paper's heavy-hitter summaries.
//!
//! The summaries this workspace reproduces (BhattacharyyaDW16) are
//! mergeable, checkpointable, `O(1/φ)`-space objects — exactly the
//! shape of state a network daemon can keep per tenant, snapshot under
//! pressure, and rebuild after a crash. This crate is that daemon,
//! std-only, built on the robustness substrate the workspace already
//! has:
//!
//! * **Protocol** ([`proto`]): length-prefixed frames whose bodies ride
//!   the v3 snapshot codec — checksummed and fail-closed, so malformed
//!   or truncated input yields a structured [`ProtocolError`], never a
//!   panic or an allocation sized from hostile bytes.
//! * **Deadlines** ([`conn`]): idle/io/frame budgets on every
//!   connection; slow-loris clients are reaped, stalls are bounded.
//! * **Tenancy** ([`facade`], [`tenant`]): any of the nine
//!   `MergeableSummary` implementations behind one object-safe
//!   [`DynSummary`]; ingest rides `ShardRuntime` with quarantine-and-
//!   shed failure handling, reads ride epoch-swapped `Frozen` views.
//! * **Durability** ([`durability`], [`store`], [`server`]): every
//!   acked ingest is write-ahead logged (`hh-wal`) before the ack, so
//!   a kill at any point loses nothing acked — recovery restores the
//!   atomic checkpoint bundle and replays the log tail over it,
//!   idempotently. Numbered requests give exactly-once retry semantics
//!   ([`Client::ingest_reliable`]); atomic file writes and a boot scan
//!   restore every verifiable tenant and quarantine — rather than die
//!   on — the rest. Overload degrades to `RetryAfter` replies and LRU
//!   eviction-to-snapshot, all surfaced in [`ServerHealth`].
//!
//! ```no_run
//! use hh_server::{Client, Endpoint, Server, ServerConfig, SummaryKind, TenantSpec};
//!
//! let server = Server::start(
//!     ServerConfig::new("/var/lib/hh"),
//!     Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
//! )?;
//! let mut client = Client::connect_tcp(server.local_addr().unwrap())?;
//! client.create("clicks", TenantSpec { kind: SummaryKind::Algo2, ..TenantSpec::default() })?;
//! client.ingest("clicks", 0, &[1, 2, 2, 3])?;
//! let (report, _epoch) = client.query("clicks")?;
//! # let _ = report;
//! # Ok::<(), hh_server::ProtocolError>(())
//! ```

pub mod client;
pub mod conn;
pub mod durability;
pub mod facade;
pub mod proto;
pub mod server;
pub mod store;
pub mod tenant;

pub use client::{Client, RetryPolicy};
pub use conn::{ConnLimits, DeadlineConn, Transport};
pub use durability::{BankSnapshot, DedupEntry, Durability, IngestFrame, DEDUP_CAP};
pub use facade::{DynSummary, SummaryKind, TenantSpec, MAX_SHARDS};
// Re-exported so embedders can configure `Durability::Wal` without
// depending on hh-wal directly.
pub use hh_wal::{FsyncPolicy, WalStats};
pub use proto::{
    read_frame, write_frame, ProtocolError, RangeEntry, Request, Response, ServerHealth, MAX_BATCH,
    MAX_FRAME_LEN, MAX_TENANT_NAME, REQUEST_TAG, RESPONSE_TAG,
};
pub use server::{Endpoint, Server, ServerConfig, ServerHandle};
pub use store::{BootReport, RecoveredTenant, Store};
pub use tenant::{IngestOutcome, Tenant};
