//! Deadline-bounded connection plumbing: the transport abstraction over
//! TCP and Unix sockets, and the framed reader/writer that survives
//! slow-loris clients.
//!
//! The failure the deadlines exist for is the *stall*, not the error: a
//! client that sends three bytes of a length prefix and goes silent
//! would otherwise pin a server thread forever. [`DeadlineConn`] bounds
//! every wait three ways:
//!
//! * **idle** — how long to wait *between* frames for the first byte of
//!   the next one. Generous: an idle client is cheap.
//! * **io** — the per-`read`/`write` tick. Short: it only bounds how
//!   long a stall goes unnoticed.
//! * **frame** — the total budget for one frame, enforced against a
//!   monotonic deadline across ticks. A client trickling one byte per
//!   tick (each tick succeeding, so no single timeout fires) still
//!   cannot hold the connection past this.
//!
//! Expiry surfaces as [`ProtocolError::DeadlineExceeded`]; a peer that
//! hangs up cleanly between frames is `Ok(None)`; one that hangs up
//! mid-frame is [`ProtocolError::Truncated`]. The caller drops the
//! connection in every case — there is no protocol resync after a
//! damaged stream.

use crate::proto::{ProtocolError, MAX_FRAME_LEN};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A stream transport the deadline machinery can drive: byte I/O plus
/// socket-level timeouts and shutdown.
pub trait Transport: Read + Write + Send {
    /// Bounds each subsequent `read` call.
    fn set_read_deadline(&self, t: Option<Duration>) -> std::io::Result<()>;
    /// Bounds each subsequent `write` call.
    fn set_write_deadline(&self, t: Option<Duration>) -> std::io::Result<()>;
    /// Closes both directions (used by the reaper to cut a peer loose).
    fn shutdown(&self) -> std::io::Result<()>;
}

impl Transport for TcpStream {
    fn set_read_deadline(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(t)
    }
    fn set_write_deadline(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(t)
    }
    fn shutdown(&self) -> std::io::Result<()> {
        TcpStream::shutdown(self, std::net::Shutdown::Both)
    }
}

impl Transport for UnixStream {
    fn set_read_deadline(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(t)
    }
    fn set_write_deadline(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(t)
    }
    fn shutdown(&self) -> std::io::Result<()> {
        UnixStream::shutdown(self, std::net::Shutdown::Both)
    }
}

impl Transport for Box<dyn Transport> {
    fn set_read_deadline(&self, t: Option<Duration>) -> std::io::Result<()> {
        (**self).set_read_deadline(t)
    }
    fn set_write_deadline(&self, t: Option<Duration>) -> std::io::Result<()> {
        (**self).set_write_deadline(t)
    }
    fn shutdown(&self) -> std::io::Result<()> {
        (**self).shutdown()
    }
}

/// The three deadline knobs; see the module docs for what each bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnLimits {
    /// Max wait between frames (slow client allowance).
    pub idle: Duration,
    /// Per-read/write tick (stall detection granularity).
    pub io: Duration,
    /// Total budget for one frame, read or write (trickle ceiling).
    pub frame: Duration,
}

impl Default for ConnLimits {
    fn default() -> Self {
        Self {
            idle: Duration::from_secs(30),
            io: Duration::from_millis(250),
            frame: Duration::from_secs(5),
        }
    }
}

impl ConnLimits {
    /// Tight limits for tests: stalls are detected in tens of
    /// milliseconds instead of seconds.
    pub fn fast() -> Self {
        Self {
            idle: Duration::from_millis(400),
            io: Duration::from_millis(20),
            frame: Duration::from_millis(200),
        }
    }
}

/// A transport wrapped in the three-deadline frame state machine.
pub struct DeadlineConn<T: Transport> {
    inner: T,
    limits: ConnLimits,
    /// Optional server-wide stop flag; when it flips, the idle wait
    /// between frames ends as a clean hang-up within one io tick.
    stop: Option<Arc<AtomicBool>>,
}

impl<T: Transport> DeadlineConn<T> {
    /// Wraps `inner` under `limits`.
    pub fn new(inner: T, limits: ConnLimits) -> Self {
        Self {
            inner,
            limits,
            stop: None,
        }
    }

    /// Attaches a stop flag: once it reads `true`, the between-frames
    /// wait in [`DeadlineConn::read_frame`] returns `Ok(None)` (clean
    /// hang-up) within roughly one `limits.io` tick, instead of
    /// blocking out the full idle allowance. This is how a server
    /// drains handler threads promptly on shutdown.
    pub fn with_stop(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop = Some(flag);
        self
    }

    fn stopped(&self) -> bool {
        self.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst))
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &T {
        &self.inner
    }

    /// Reads one frame body, spending at most `limits.idle` waiting for
    /// it to start and `limits.frame` from its first byte. `Ok(None)`
    /// is a clean hang-up between frames (or a stop-flag trip, see
    /// [`DeadlineConn::with_stop`]).
    pub fn read_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        // Between frames: wait for the first byte in io-sized ticks so
        // a stop flag is noticed within one tick, not one idle period.
        let idle_deadline = Instant::now() + self.limits.idle;
        self.inner.set_read_deadline(Some(self.limits.io))?;
        let mut prefix = [0u8; 4];
        loop {
            if self.stopped() {
                return Ok(None);
            }
            match self.inner.read(&mut prefix[..1]) {
                Ok(0) => return Ok(None),
                Ok(_) => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {
                    if Instant::now() >= idle_deadline {
                        return Err(ProtocolError::DeadlineExceeded);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        // Mid-frame: tick-sized reads against the frame deadline.
        let deadline = Instant::now() + self.limits.frame;
        self.inner.set_read_deadline(Some(self.limits.io))?;
        self.read_exact_deadline(&mut prefix[1..4], deadline)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(ProtocolError::FrameTooLarge {
                len: len as u64,
                max: MAX_FRAME_LEN as u64,
            });
        }
        let mut body = vec![0u8; len];
        self.read_exact_deadline(&mut body, deadline)?;
        Ok(Some(body))
    }

    /// Writes one frame (length prefix + body) under the frame budget.
    pub fn write_frame(&mut self, body: &[u8]) -> Result<(), ProtocolError> {
        if body.len() > MAX_FRAME_LEN {
            return Err(ProtocolError::FrameTooLarge {
                len: body.len() as u64,
                max: MAX_FRAME_LEN as u64,
            });
        }
        let deadline = Instant::now() + self.limits.frame;
        self.inner.set_write_deadline(Some(self.limits.io))?;
        // One buffer, one write: prefix and body in the same segment so
        // the peer never waits on a second packet for a frame boundary.
        let mut framed = Vec::with_capacity(4 + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(body);
        self.write_all_deadline(&framed, deadline)?;
        self.inner.flush()?;
        Ok(())
    }

    /// Fills `buf`, looping over io ticks until done or `deadline`.
    fn read_exact_deadline(
        &mut self,
        buf: &mut [u8],
        deadline: Instant,
    ) -> Result<(), ProtocolError> {
        let mut off = 0;
        while off < buf.len() {
            if Instant::now() >= deadline {
                return Err(ProtocolError::DeadlineExceeded);
            }
            match self.inner.read(&mut buf[off..]) {
                Ok(0) => return Err(ProtocolError::Truncated),
                Ok(n) => off += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // One tick expired; the frame deadline decides whether
                // the stall has gone on long enough to cut the peer off.
                Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Drains `buf`, looping over io ticks until done or `deadline`.
    fn write_all_deadline(&mut self, buf: &[u8], deadline: Instant) -> Result<(), ProtocolError> {
        let mut off = 0;
        while off < buf.len() {
            if Instant::now() >= deadline {
                return Err(ProtocolError::DeadlineExceeded);
            }
            match self.inner.write(&buf[off..]) {
                Ok(0) => return Err(ProtocolError::Truncated),
                Ok(n) => off += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;
    use std::net::TcpListener;

    /// A loopback pair with the accepted side wrapped in `limits`.
    fn pair(limits: ConnLimits) -> (DeadlineConn<TcpStream>, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (DeadlineConn::new(server, limits), client)
    }

    #[test]
    fn whole_frames_roundtrip() {
        let (mut server, mut client) = pair(ConnLimits::default());
        let body = Request::Ping.encode();
        crate::proto::write_frame(&mut client, &body).unwrap();
        let got = server.read_frame().unwrap().expect("frame arrives");
        assert_eq!(got, body.as_ref());
    }

    #[test]
    fn clean_hangup_between_frames_is_none() {
        let (mut server, client) = pair(ConnLimits::fast());
        drop(client);
        assert!(server.read_frame().unwrap().is_none());
    }

    #[test]
    fn hangup_mid_frame_is_truncated() {
        let (mut server, mut client) = pair(ConnLimits::fast());
        client.write_all(&[10, 0, 0, 0, 1, 2]).unwrap();
        drop(client);
        assert_eq!(server.read_frame().unwrap_err(), ProtocolError::Truncated);
    }

    #[test]
    fn idle_peer_trips_the_idle_deadline() {
        let (mut server, _client) = pair(ConnLimits::fast());
        let t0 = Instant::now();
        assert_eq!(
            server.read_frame().unwrap_err(),
            ProtocolError::DeadlineExceeded
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "reaper took too long"
        );
    }

    #[test]
    fn stall_mid_frame_trips_the_frame_deadline() {
        let (mut server, mut client) = pair(ConnLimits::fast());
        // Three of four prefix bytes, then silence.
        client.write_all(&[5, 0, 0]).unwrap();
        let t0 = Instant::now();
        assert_eq!(
            server.read_frame().unwrap_err(),
            ProtocolError::DeadlineExceeded
        );
        assert!(t0.elapsed() < Duration::from_secs(5), "stall went unreaped");
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let (mut server, mut client) = pair(ConnLimits::fast());
        client.write_all(&u32::MAX.to_le_bytes()).unwrap();
        assert!(matches!(
            server.read_frame().unwrap_err(),
            ProtocolError::FrameTooLarge { .. }
        ));
    }
}
