//! Durable tenant state: the checkpoint directory layout, atomic
//! writes, and the fail-closed boot scan.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/<tenant>/spec.hhs      snapshot-codec TenantSpec ("hh.server.spec.v1")
//! <root>/<tenant>/bank.hhs      checkpoint bundle ("hh.server.bank.v1"):
//!                               every shard's snapshot + per-shard WAL
//!                               high-water marks + the dedup table
//! <root>/<tenant>/wal/          segmented write-ahead log (hh-wal)
//! <root>/.quarantine/<tenant>/  tenants that failed verification at boot
//! ```
//!
//! The bundle is **one file on purpose**: the shard bytes, the marks
//! that say which WAL records those bytes already cover, and the dedup
//! table that says which acks stand, must advance together. Split
//! across files, a crash between writes could pair new bytes with old
//! marks (records replayed twice) or old bytes with new marks (acked
//! records never replayed — silent loss).
//!
//! Every file is written `tmp → fsync → rename → fsync(dir)`, so a
//! crash — or a power cut — mid-write leaves either the old file or
//! the new one, durably, and never a torn one. Every
//! file is a tagged, checksummed snapshot-codec buffer, so the boot
//! scan can verify integrity before trusting a byte of payload.
//!
//! The scan itself is *quarantine, don't refuse*: a tenant whose spec
//! or bundle fails verification is moved aside into `.quarantine/`
//! (forensics intact, WAL included) and reported, and the server boots
//! serving everyone else. Refusing to boot over one corrupt tenant
//! would turn a partial loss into a total outage.

use crate::durability::{BankSnapshot, DedupEntry};
use crate::facade::{DynSummary, TenantSpec};
use crate::proto::{validate_tenant_name, ProtocolError};
use hh_core::mergeable::snapshot;
use hh_core::MergeableSummary;
use std::fs;
use std::path::{Path, PathBuf};

/// Snapshot-codec tag for persisted tenant specs.
pub const SPEC_TAG: &str = "hh.server.spec.v1";

/// Snapshot-codec tag for the checkpoint bundle.
pub const BANK_TAG: &str = "hh.server.bank.v1";

/// Directory (under the root) holding tenants that failed boot
/// verification.
pub const QUARANTINE_DIR: &str = ".quarantine";

/// Name of the per-tenant WAL directory (managed by `hh-wal`).
pub const WAL_DIR: &str = "wal";

/// A tenant the boot scan restored successfully.
#[derive(Debug)]
pub struct RecoveredTenant {
    /// Tenant name (the directory name, validated).
    pub name: String,
    /// The spec its bank was rebuilt from.
    pub spec: TenantSpec,
    /// The restored shard bank, in shard order.
    pub shards: Vec<DynSummary>,
    /// Per-shard WAL high-water marks from the bundle.
    pub hwms: Vec<u64>,
    /// The dedup table from the bundle.
    pub dedup: Vec<(u64, DedupEntry)>,
}

/// Everything the boot scan found.
#[derive(Debug, Default)]
pub struct BootReport {
    /// Tenants restored and ready to serve.
    pub recovered: Vec<RecoveredTenant>,
    /// Tenants moved to quarantine, as `(name, reason)` pairs.
    pub lost: Vec<(String, String)>,
}

/// The on-disk tenant store.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

/// Writes `bytes` to `path` atomically and durably: sibling temp
/// file, fsync, rename over the target, fsync of the parent
/// directory.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        use std::io::Write as _;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // The rename is only durable once the directory entry is: without
    // this, a power failure (unlike a mere process crash) could revert
    // to the old file after the server already counted the save.
    if let Some(dir) = path.parent() {
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn tenant_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// The tenant's WAL directory (whether or not it exists yet).
    pub fn wal_dir(&self, name: &str) -> PathBuf {
        self.tenant_dir(name).join(WAL_DIR)
    }

    /// Persists one tenant: its spec plus the checkpoint bundle, each
    /// file written atomically. The tenant name must already have
    /// passed [`validate_tenant_name`] (enforced again here — the name
    /// becomes a path component).
    pub fn save_tenant(
        &self,
        name: &str,
        spec: &TenantSpec,
        bank: &BankSnapshot,
    ) -> Result<(), ProtocolError> {
        validate_tenant_name(name)?;
        let dir = self.tenant_dir(name);
        fs::create_dir_all(&dir).map_err(ProtocolError::from)?;
        write_atomic(&dir.join("spec.hhs"), &snapshot::encode(SPEC_TAG, spec))?;
        write_atomic(&dir.join("bank.hhs"), &snapshot::encode(BANK_TAG, bank))?;
        Ok(())
    }

    /// Loads one tenant directory, verifying the spec and the bundle.
    /// Used by the boot scan and by eviction rehydration. WAL replay is
    /// the *server's* job — this only restores what the checkpoint
    /// covers.
    pub(crate) fn load_tenant(&self, name: &str) -> Result<RecoveredTenant, String> {
        let dir = self.tenant_dir(name);
        let spec_bytes =
            fs::read(dir.join("spec.hhs")).map_err(|e| format!("spec unreadable: {e}"))?;
        let spec: TenantSpec =
            snapshot::decode(SPEC_TAG, &spec_bytes).map_err(|e| format!("spec rejected: {e}"))?;
        spec.validate().map_err(|e| format!("spec invalid: {e}"))?;
        let bank_bytes =
            fs::read(dir.join("bank.hhs")).map_err(|e| format!("bank unreadable: {e}"))?;
        let bank: BankSnapshot =
            snapshot::decode(BANK_TAG, &bank_bytes).map_err(|e| format!("bank rejected: {e}"))?;
        if bank.shards.len() != spec.shards as usize {
            return Err(format!(
                "bank holds {} shards but the spec says {}",
                bank.shards.len(),
                spec.shards
            ));
        }
        let mut shards = Vec::with_capacity(spec.shards as usize);
        for (j, bytes) in bank.shards.iter().enumerate() {
            let (summary, _report) = DynSummary::from_bytes_report(bytes)
                .map_err(|e| format!("shard {j} rejected: {e}"))?;
            if summary.kind() != spec.kind {
                return Err(format!(
                    "shard {j} restored as {:?} but the spec says {:?}",
                    summary.kind(),
                    spec.kind
                ));
            }
            shards.push(summary);
        }
        Ok(RecoveredTenant {
            name: name.to_string(),
            spec,
            shards,
            hwms: bank.hwms,
            dedup: bank.dedup,
        })
    }

    /// Moves a failed tenant directory into [`QUARANTINE_DIR`],
    /// suffixing the name if a previous quarantine already used it.
    /// The WAL directory rides along — forensics keep the whole story.
    pub(crate) fn quarantine(&self, name: &str) -> std::io::Result<()> {
        let pen = self.root.join(QUARANTINE_DIR);
        fs::create_dir_all(&pen)?;
        let mut target = pen.join(name);
        let mut n = 1;
        while target.exists() {
            target = pen.join(format!("{name}.{n}"));
            n += 1;
        }
        fs::rename(self.tenant_dir(name), target)
    }

    /// The boot scan: restores every verifiable tenant, quarantines the
    /// rest, refuses to boot over nothing. Unknown files and the
    /// quarantine pen itself are ignored.
    pub fn load_all(&self) -> std::io::Result<BootReport> {
        let mut report = BootReport::default();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if validate_tenant_name(&name).is_err() {
                continue; // includes the ".quarantine" pen
            }
            match self.load_tenant(&name) {
                Ok(recovered) => report.recovered.push(recovered),
                Err(reason) => {
                    // Quarantine is best-effort: a rename failure must
                    // not take the boot down with it.
                    let penned = self.quarantine(&name).is_ok();
                    let suffix = if penned { "" } else { " (left in place)" };
                    report.lost.push((name, format!("{reason}{suffix}")));
                }
            }
        }
        report.recovered.sort_by(|a, b| a.name.cmp(&b.name));
        report.lost.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::SummaryKind;
    use hh_core::{MergeableSummary, StreamSummary};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hh-server-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> TenantSpec {
        TenantSpec {
            kind: SummaryKind::SpaceSaving,
            shards: 2,
            m: 10_000,
            universe: 1 << 16,
            ..TenantSpec::default()
        }
    }

    fn bank(spec: &TenantSpec, feed: u64) -> (Vec<DynSummary>, BankSnapshot) {
        let mut shards = spec.build_bank().unwrap();
        for (j, s) in shards.iter_mut().enumerate() {
            s.insert_batch(&vec![feed + j as u64; 100]);
        }
        let bundle = BankSnapshot {
            shards: shards.iter().map(|s| s.to_bytes().to_vec()).collect(),
            hwms: vec![feed; shards.len()],
            dedup: vec![(
                9,
                DedupEntry {
                    req_seq: 3,
                    accepted: 100,
                    wal_seq: feed,
                },
            )],
        };
        (shards, bundle)
    }

    #[test]
    fn save_then_boot_restores_bit_identical_banks_and_marks() {
        let root = tmpdir("roundtrip");
        let store = Store::open(&root).unwrap();
        let spec = spec();
        let (shards, bundle) = bank(&spec, 7);
        store.save_tenant("alpha", &spec, &bundle).unwrap();
        let report = store.load_all().unwrap();
        assert!(report.lost.is_empty(), "{:?}", report.lost);
        assert_eq!(report.recovered.len(), 1);
        let back = &report.recovered[0];
        assert_eq!(back.name, "alpha");
        assert_eq!(back.spec, spec);
        assert_eq!(back.hwms, bundle.hwms);
        assert_eq!(back.dedup, bundle.dedup);
        for (restored, original) in back.shards.iter().zip(&shards) {
            assert_eq!(restored.to_bytes(), original.to_bytes());
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_bundle_quarantines_the_tenant_and_spares_the_rest() {
        let root = tmpdir("corrupt");
        let store = Store::open(&root).unwrap();
        let spec = spec();
        let (_, bundle) = bank(&spec, 1);
        store.save_tenant("good", &spec, &bundle).unwrap();
        store.save_tenant("bad", &spec, &bundle).unwrap();
        // Flip one byte in the middle of bad's bundle.
        let victim = root.join("bad").join("bank.hhs");
        let mut buf = fs::read(&victim).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        fs::write(&victim, &buf).unwrap();

        let report = store.load_all().unwrap();
        assert_eq!(report.recovered.len(), 1);
        assert_eq!(report.recovered[0].name, "good");
        assert_eq!(report.lost.len(), 1);
        assert_eq!(report.lost[0].0, "bad");
        assert!(
            root.join(QUARANTINE_DIR).join("bad").exists(),
            "forensics not preserved"
        );
        assert!(!root.join("bad").exists(), "corrupt tenant left live");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_spec_and_missing_bundle_are_both_fatal_for_the_tenant() {
        let root = tmpdir("partial");
        let store = Store::open(&root).unwrap();
        let spec = spec();
        let (_, bundle) = bank(&spec, 2);
        store.save_tenant("t1", &spec, &bundle).unwrap();
        store.save_tenant("t2", &spec, &bundle).unwrap();
        let spec_file = root.join("t1").join("spec.hhs");
        let full = fs::read(&spec_file).unwrap();
        fs::write(&spec_file, &full[..full.len() / 2]).unwrap();
        fs::remove_file(root.join("t2").join("bank.hhs")).unwrap();

        let report = store.load_all().unwrap();
        assert!(report.recovered.is_empty());
        assert_eq!(report.lost.len(), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bundle_that_contradicts_the_spec_is_rejected() {
        let root = tmpdir("mismatch");
        let store = Store::open(&root).unwrap();
        let spec = spec();
        let (_, mut bundle) = bank(&spec, 4);
        bundle.shards.pop();
        bundle.hwms.pop();
        store.save_tenant("t", &spec, &bundle).unwrap();
        let report = store.load_all().unwrap();
        assert!(report.recovered.is_empty());
        assert_eq!(report.lost.len(), 1);
        assert!(
            report.lost[0].1.contains("holds 1 shards"),
            "{:?}",
            report.lost
        );
        let _ = fs::remove_dir_all(&root);
    }
}
