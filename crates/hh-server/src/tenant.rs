//! One tenant: a shard bank behind a quarantining [`ShardRuntime`],
//! with an epoch-swapped [`Frozen`] serving view.
//!
//! The write side and the read side never contend: ingest dispatches
//! into the runtime's shards, while queries read a materialized
//! [`Frozen`] view behind an [`Arc`]. A query against a stale view
//! triggers a refresh — flush the runtime, merge clones of the shards,
//! freeze the merge, swap the `Arc`, bump the epoch — and in-flight
//! readers of the old view keep their borrowed reports until they drop
//! it. Writers are blocked only for the flush barrier, never for the
//! reads themselves.
//!
//! Failure containment is layered:
//!
//! * A shard whose summary panics is **quarantined** by the runtime
//!   ([`FailurePolicy::Quarantine`]): its traffic is shed and counted,
//!   every other shard keeps serving. [`Tenant::recover`] rebuilds it
//!   from the runtime's last in-memory checkpoint.
//! * Overload **sheds** instead of blocking
//!   ([`Backpressure::Shed`]): a full shard queue drops the batch, and
//!   [`Tenant::ingest`] turns the drop into a structured
//!   [`ProtocolError::Overloaded`] so the client backs off.
//! * [`Tenant::checkpoint`] produces the bytes the [`crate::store`]
//!   persists. Poisoned shards keep their *last good* bytes — the
//!   panic-interrupted state never reaches disk.

use crate::facade::{DynSummary, TenantSpec};
use crate::proto::{ProtocolError, RangeEntry};
use bytes::Bytes;
use hh_core::MergeableSummary;
use hh_pipeline::{Backpressure, FailurePolicy, Frozen, IngestMode, ShardRuntime};
use hh_space::SpaceUsage;
use std::sync::Arc;
use std::time::Duration;

/// Backoff hint clients get with [`ProtocolError::Overloaded`].
pub const RETRY_AFTER_MS: u64 = 50;

/// How long a view refresh waits on the flush barrier before giving up
/// and serving the previous epoch.
const REFRESH_FLUSH_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a checkpoint waits on the flush barrier before falling
/// back to last-good bytes for the shards still pending. Checkpoint
/// rounds run under the server's registry lock, so this bound is what
/// keeps one wedged shard worker from stalling every request on the
/// server.
const CHECKPOINT_FLUSH_TIMEOUT: Duration = Duration::from_secs(2);

/// A live tenant: spec, shard bank, serving view, and bookkeeping.
pub struct Tenant {
    /// The spec the bank was built from (persisted alongside it).
    pub spec: TenantSpec,
    runtime: ShardRuntime<DynSummary>,
    view: Arc<Frozen<DynSummary>>,
    epoch: u64,
    /// Items ingested since the last view refresh.
    stale_items: u64,
    /// Items accepted over the tenant's lifetime.
    pub total_items: u64,
    /// LRU stamp, maintained by the registry.
    pub last_touch: u64,
    /// Bytes most recently handed to the store, per shard. Poisoned
    /// shards keep their last good entry here.
    disk_bytes: Vec<Bytes>,
    /// Operator-injected fault (testing and drills): while set, writes
    /// are refused as [`ProtocolError::Quarantined`] and health reports
    /// the tenant, without any shard actually dying.
    forced_fault: Option<String>,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("spec", &self.spec)
            .field("epoch", &self.epoch)
            .field("total_items", &self.total_items)
            .finish_non_exhaustive()
    }
}

/// Merges clones of `bank` into one summary (shard 0's clone
/// accumulates the rest).
fn merge_bank(bank: &[DynSummary]) -> Result<DynSummary, ProtocolError> {
    let mut acc = bank.first().expect("banks are non-empty").clone();
    for part in &bank[1..] {
        acc.merge_from(part)?;
    }
    Ok(acc)
}

impl Tenant {
    /// Builds a fresh tenant from its spec.
    pub fn create(spec: TenantSpec) -> Result<Self, ProtocolError> {
        let bank = spec.build_bank()?;
        Self::from_bank(spec, bank)
    }

    /// Rehydrates a tenant around an existing bank (boot recovery).
    pub fn from_bank(spec: TenantSpec, bank: Vec<DynSummary>) -> Result<Self, ProtocolError> {
        debug_assert_eq!(bank.len(), spec.shards as usize);
        let view = Arc::new(Frozen::new(merge_bank(&bank)?));
        let disk_bytes = bank.iter().map(MergeableSummary::to_bytes).collect();
        let mut runtime = ShardRuntime::new(bank, IngestMode::Auto);
        runtime.set_failure_policy(FailurePolicy::Quarantine);
        runtime.set_backpressure(Backpressure::Shed);
        // Arm in-memory recovery immediately: a shard that dies before
        // the first periodic checkpoint can still be rebuilt.
        runtime.checkpoint();
        Ok(Self {
            spec,
            runtime,
            view,
            epoch: 0,
            stale_items: 0,
            total_items: 0,
            last_touch: 0,
            disk_bytes,
            forced_fault: None,
        })
    }

    /// Appends `items` to shard `shard`. Returns the number accepted.
    ///
    /// # Errors
    /// [`ProtocolError::ShardOutOfRange`] for a bad index,
    /// [`ProtocolError::Quarantined`] if the shard (or the whole
    /// tenant, via an injected fault) is quarantined, and
    /// [`ProtocolError::Overloaded`] if the batch was shed on a full
    /// queue.
    pub fn ingest(&mut self, name: &str, shard: u32, items: &[u64]) -> Result<u64, ProtocolError> {
        if shard >= self.spec.shards {
            return Err(ProtocolError::ShardOutOfRange {
                shard,
                shards: self.spec.shards,
            });
        }
        if self.forced_fault.is_some() {
            return Err(ProtocolError::Quarantined(name.to_string()));
        }
        let j = shard as usize;
        let before = self.runtime.health();
        if before.poisoned.iter().any(|&(p, _)| p == j) {
            return Err(ProtocolError::Quarantined(name.to_string()));
        }
        self.runtime.dispatch_ref(j, items);
        let after = self.runtime.health();
        if after.shed_items > before.shed_items {
            // The dispatch itself shed the batch: either the queue was
            // full or the worker died under our feet.
            if after.poisoned.iter().any(|&(p, _)| p == j) {
                return Err(ProtocolError::Quarantined(name.to_string()));
            }
            return Err(ProtocolError::Overloaded {
                retry_after_ms: RETRY_AFTER_MS,
            });
        }
        self.stale_items += items.len() as u64;
        self.total_items += items.len() as u64;
        Ok(items.len() as u64)
    }

    /// The serving view, refreshed first if ingestion has outrun it.
    /// The returned `Arc` stays valid (and immutable) however long the
    /// caller holds it, across any number of later refreshes.
    pub fn view(&mut self) -> Result<Arc<Frozen<DynSummary>>, ProtocolError> {
        if self.stale_items > 0 {
            self.refresh_view()?;
        }
        Ok(Arc::clone(&self.view))
    }

    /// Current serving epoch (bumps on every refresh).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reads the current report as protocol entries.
    pub fn query(&mut self) -> Result<(Vec<(u64, f64)>, u64), ProtocolError> {
        let view = self.view()?;
        let entries = view
            .report()
            .entries()
            .iter()
            .map(|e| (e.item, e.count))
            .collect();
        Ok((entries, self.epoch))
    }

    /// Estimates the mass of the inclusive id range `[lo, hi]` from
    /// the serving view. Only dyadic tenants can answer; every other
    /// kind refuses with [`ProtocolError::BadRequest`].
    pub fn range_query(&mut self, lo: u64, hi: u64) -> Result<(f64, u64), ProtocolError> {
        let view = self.view()?;
        let estimate = view.summary().range_estimate(lo, hi).ok_or_else(|| {
            ProtocolError::BadRequest(format!(
                "kind {:?} does not answer range queries (only dyadic tenants do)",
                self.spec.kind
            ))
        })?;
        Ok((estimate, self.epoch))
    }

    /// Reads the heavy dyadic intervals at threshold `phi` from the
    /// serving view, as `(level, lo, hi, estimate)` protocol entries.
    /// Only dyadic tenants can answer.
    pub fn heavy_ranges(&mut self, phi: f64) -> Result<(Vec<RangeEntry>, u64), ProtocolError> {
        let view = self.view()?;
        let ranges = view.summary().heavy_ranges(phi).ok_or_else(|| {
            ProtocolError::BadRequest(format!(
                "kind {:?} does not answer range queries (only dyadic tenants do)",
                self.spec.kind
            ))
        })?;
        let entries = ranges
            .iter()
            .map(|r| (r.level, r.lo, r.hi, r.count))
            .collect();
        Ok((entries, self.epoch))
    }

    /// Rebuilds the frozen view from the live bank.
    fn refresh_view(&mut self) -> Result<(), ProtocolError> {
        if let Err(e) = self.runtime.flush_timeout(REFRESH_FLUSH_TIMEOUT) {
            // Quarantines were applied by the barrier; a timeout keeps
            // the batches queued. Either way the bank is still
            // readable — merge what is there rather than failing the
            // read path.
            let _ = e;
        }
        let bank = self.runtime.map_summaries(Clone::clone);
        self.view = Arc::new(Frozen::new(merge_bank(&bank)?));
        self.epoch += 1;
        self.stale_items = 0;
        Ok(())
    }

    /// The merged summary's portable snapshot bytes.
    pub fn snapshot_merged(&mut self) -> Result<Bytes, ProtocolError> {
        Ok(self.view()?.summary().to_bytes())
    }

    /// Checkpoints the bank: arms the runtime's in-memory recovery and
    /// returns the per-shard bytes to persist. The flush barrier is
    /// bounded (`CHECKPOINT_FLUSH_TIMEOUT`); poisoned shards and
    /// shards whose worker missed the deadline contribute their last
    /// good bytes — a wedged worker's cell lock is never even taken.
    pub fn checkpoint(&mut self) -> Vec<Bytes> {
        for (j, bytes) in self.runtime.checkpoint_timeout(CHECKPOINT_FLUSH_TIMEOUT) {
            self.disk_bytes[j] = bytes;
        }
        self.disk_bytes.clone()
    }

    /// Clears quarantine: rebuilds every poisoned shard from its last
    /// in-memory checkpoint and lifts any injected fault. Returns how
    /// many shards were rebuilt.
    pub fn recover(&mut self) -> Result<usize, ProtocolError> {
        self.forced_fault = None;
        let poisoned: Vec<usize> = self
            .runtime
            .health()
            .poisoned
            .iter()
            .map(|&(j, _)| j)
            .collect();
        let mut rebuilt = 0;
        for j in poisoned {
            self.runtime
                .recover(j)
                .map_err(|e| ProtocolError::BadRequest(format!("shard {j}: {e}")))?;
            rebuilt += 1;
        }
        if rebuilt > 0 {
            self.stale_items += 1; // force the next read to re-merge
        }
        Ok(rebuilt)
    }

    /// Whether writes are currently refused.
    pub fn quarantined(&self) -> bool {
        self.forced_fault.is_some() || !self.runtime.health().poisoned.is_empty()
    }

    /// Items shed by this tenant's runtime so far.
    pub fn shed_items(&self) -> u64 {
        self.runtime.health().shed_items
    }

    /// Heap bytes resident in the live bank (the memory-budget input).
    pub fn resident_bytes(&self) -> u64 {
        self.runtime
            .map_summaries(|s| s.heap_bytes() as u64)
            .into_iter()
            .sum()
    }

    /// Injects an operator fault: writes fail as quarantined until
    /// [`Tenant::recover`]. Deterministic drills for the failure
    /// surface; no shard actually dies.
    pub fn inject_fault(&mut self, reason: impl Into<String>) {
        self.forced_fault = Some(reason.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::SummaryKind;
    use hh_core::HeavyHitters;

    fn spec() -> TenantSpec {
        TenantSpec {
            kind: SummaryKind::SpaceSaving,
            shards: 2,
            m: 100_000,
            universe: 1 << 20,
            ..TenantSpec::default()
        }
    }

    #[test]
    fn ingest_then_query_sees_the_heavy_item_and_bumps_epochs() {
        let mut t = Tenant::create(spec()).unwrap();
        let heavy: Vec<u64> = (0..10_000u64)
            .map(|i| if i % 2 == 0 { 5 } else { i })
            .collect();
        t.ingest("t", 0, &heavy[..5_000]).unwrap();
        t.ingest("t", 1, &heavy[5_000..]).unwrap();
        let (entries, epoch1) = t.query().unwrap();
        assert!(entries.iter().any(|&(item, _)| item == 5));
        // A quiescent re-query serves the same epoch; new data bumps it.
        let (_, epoch2) = t.query().unwrap();
        assert_eq!(epoch1, epoch2);
        t.ingest("t", 0, &[5; 100]).unwrap();
        let (_, epoch3) = t.query().unwrap();
        assert!(epoch3 > epoch2);
    }

    #[test]
    fn bad_shard_index_is_structured() {
        let mut t = Tenant::create(spec()).unwrap();
        assert_eq!(
            t.ingest("t", 9, &[1]).unwrap_err(),
            ProtocolError::ShardOutOfRange {
                shard: 9,
                shards: 2
            }
        );
    }

    #[test]
    fn injected_fault_refuses_writes_until_recover() {
        let mut t = Tenant::create(spec()).unwrap();
        t.ingest("t", 0, &[1, 2, 3]).unwrap();
        t.inject_fault("drill");
        assert!(t.quarantined());
        assert!(matches!(
            t.ingest("t", 0, &[4]).unwrap_err(),
            ProtocolError::Quarantined(_)
        ));
        // Reads keep working while quarantined.
        assert!(t.query().is_ok());
        t.recover().unwrap();
        assert!(!t.quarantined());
        t.ingest("t", 0, &[4]).unwrap();
    }

    #[test]
    fn checkpoint_bytes_restore_to_the_same_state() {
        let mut t = Tenant::create(spec()).unwrap();
        t.ingest("t", 0, &[7; 500]).unwrap();
        t.ingest("t", 1, &[9; 300]).unwrap();
        let bytes = t.checkpoint();
        assert_eq!(bytes.len(), 2);
        for b in &bytes {
            let (restored, report) = DynSummary::from_bytes_report(b).unwrap();
            assert!(report.checksum_verified);
            assert_eq!(restored.kind(), SummaryKind::SpaceSaving);
        }
    }

    #[test]
    fn snapshot_merged_is_restorable_and_reports_the_heavy_item() {
        let mut t = Tenant::create(spec()).unwrap();
        t.ingest("t", 0, &[3; 4_000]).unwrap();
        t.ingest("t", 1, &[3; 4_000]).unwrap();
        let bytes = t.snapshot_merged().unwrap();
        let restored = DynSummary::from_bytes(&bytes).unwrap();
        assert!(restored.report().contains(3));
    }
}
