//! One tenant: a shard bank behind a quarantining [`ShardRuntime`],
//! with an epoch-swapped [`Frozen`] serving view.
//!
//! The write side and the read side never contend: ingest dispatches
//! into the runtime's shards, while queries read a materialized
//! [`Frozen`] view behind an [`Arc`]. A query against a stale view
//! triggers a refresh — flush the runtime, merge clones of the shards,
//! freeze the merge, swap the `Arc`, bump the epoch — and in-flight
//! readers of the old view keep their borrowed reports until they drop
//! it. Writers are blocked only for the flush barrier, never for the
//! reads themselves.
//!
//! Failure containment is layered:
//!
//! * A shard whose summary panics is **quarantined** by the runtime
//!   ([`FailurePolicy::Quarantine`]): its traffic is shed and counted,
//!   every other shard keeps serving. [`Tenant::recover`] rebuilds it
//!   from the runtime's last in-memory checkpoint.
//! * Overload **sheds** instead of blocking
//!   ([`Backpressure::Shed`]): a full shard queue drops the batch, and
//!   [`Tenant::ingest`] turns the drop into a structured
//!   [`ProtocolError::Overloaded`] so the client backs off.
//! * [`Tenant::checkpoint`] produces the bundle the [`crate::store`]
//!   persists. Poisoned shards keep their *last good* bytes — the
//!   panic-interrupted state never reaches disk.
//! * With a WAL attached ([`Tenant::attach_wal`]), every accepted
//!   batch is appended to the log *before* the ack
//!   ([`Tenant::ingest_logged`]), per-shard high-water marks track
//!   what the last checkpoint covers, and [`Tenant::replay_frame`]
//!   re-applies the tail idempotently on recovery. A failed append is
//!   **fail-stop**: the batch is already in the shard but not in the
//!   log, so the tenant latches a write-quarantine rather than ack
//!   data it could silently lose.

use crate::durability::{encode_frame, BankSnapshot, DedupEntry, DedupTable, IngestFrame};
use crate::facade::{DynSummary, TenantSpec};
use crate::proto::{ProtocolError, RangeEntry};
use bytes::Bytes;
use hh_core::MergeableSummary;
use hh_pipeline::{Backpressure, FailurePolicy, Frozen, IngestMode, ShardRuntime};
use hh_space::SpaceUsage;
use hh_wal::{Wal, WalStats};
use std::sync::Arc;
use std::time::Duration;

/// Backoff hint clients get with [`ProtocolError::Overloaded`].
pub const RETRY_AFTER_MS: u64 = 50;

/// How long a view refresh waits on the flush barrier before giving up
/// and serving the previous epoch.
const REFRESH_FLUSH_TIMEOUT: Duration = Duration::from_secs(2);

/// What [`Tenant::ingest_logged`] hands back: the ack payload plus the
/// durability obligation the *server* must discharge before sending it.
#[derive(Debug)]
pub struct IngestOutcome {
    /// Items accepted (the ack payload).
    pub accepted: u64,
    /// When set, `wal.commit(seq)` must succeed before the ack leaves
    /// the server. Returned instead of committed inline so the server
    /// can drop the registry lock first — group-commit waits must not
    /// serialize every other tenant.
    pub commit: Option<(Arc<Wal>, u64)>,
    /// Whether this ack was replayed from the dedup table rather than
    /// applied.
    pub deduplicated: bool,
}

/// A live tenant: spec, shard bank, serving view, and bookkeeping.
pub struct Tenant {
    /// The spec the bank was built from (persisted alongside it).
    pub spec: TenantSpec,
    runtime: ShardRuntime<DynSummary>,
    view: Arc<Frozen<DynSummary>>,
    epoch: u64,
    /// Items ingested since the last view refresh.
    stale_items: u64,
    /// Items accepted over the tenant's lifetime.
    pub total_items: u64,
    /// LRU stamp, maintained by the registry.
    pub last_touch: u64,
    /// Bytes most recently handed to the store, per shard. Poisoned
    /// shards keep their last good entry here.
    disk_bytes: Vec<Bytes>,
    /// Operator-injected fault (testing and drills): while set, writes
    /// are refused as [`ProtocolError::Quarantined`] and health reports
    /// the tenant, without any shard actually dying. Also latched by a
    /// failed WAL append (fail-stop — see the module docs).
    forced_fault: Option<String>,
    /// The write-ahead log, when the server runs with one.
    wal: Option<Arc<Wal>>,
    /// Exactly-once request dedup (client → latest acked request).
    dedup: DedupTable,
    /// Highest WAL sequence number *dispatched* to each shard.
    applied: Vec<u64>,
    /// Highest WAL sequence number each shard's persisted bytes cover
    /// (advanced by [`Tenant::checkpoint`] for shards that flushed).
    disk_hwm: Vec<u64>,
    /// WAL records re-applied during recovery.
    wal_replayed: u64,
    /// Reused frame-encode buffer for the append hot path.
    wal_scratch: Vec<u8>,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("spec", &self.spec)
            .field("epoch", &self.epoch)
            .field("total_items", &self.total_items)
            .finish_non_exhaustive()
    }
}

/// Merges clones of `bank` into one summary (shard 0's clone
/// accumulates the rest).
fn merge_bank(bank: &[DynSummary]) -> Result<DynSummary, ProtocolError> {
    let mut acc = bank.first().expect("banks are non-empty").clone();
    for part in &bank[1..] {
        acc.merge_from(part)?;
    }
    Ok(acc)
}

impl Tenant {
    /// Builds a fresh tenant from its spec.
    pub fn create(spec: TenantSpec) -> Result<Self, ProtocolError> {
        let bank = spec.build_bank()?;
        Self::from_bank(spec, bank)
    }

    /// Rehydrates a tenant around an existing bank (boot recovery).
    pub fn from_bank(spec: TenantSpec, bank: Vec<DynSummary>) -> Result<Self, ProtocolError> {
        debug_assert_eq!(bank.len(), spec.shards as usize);
        let view = Arc::new(Frozen::new(merge_bank(&bank)?));
        let disk_bytes = bank.iter().map(MergeableSummary::to_bytes).collect();
        let mut runtime = ShardRuntime::new(bank, IngestMode::Auto);
        runtime.set_failure_policy(FailurePolicy::Quarantine);
        runtime.set_backpressure(Backpressure::Shed);
        // Arm in-memory recovery immediately: a shard that dies before
        // the first periodic checkpoint can still be rebuilt.
        runtime.checkpoint();
        let shards = spec.shards as usize;
        Ok(Self {
            spec,
            runtime,
            view,
            epoch: 0,
            stale_items: 0,
            total_items: 0,
            last_touch: 0,
            disk_bytes,
            forced_fault: None,
            wal: None,
            dedup: DedupTable::default(),
            applied: vec![0; shards],
            disk_hwm: vec![0; shards],
            wal_replayed: 0,
            wal_scratch: Vec::new(),
        })
    }

    /// Restores the durability metadata persisted in a checkpoint
    /// bundle: per-shard high-water marks and the dedup table. Must run
    /// before [`Tenant::replay_frame`] so replay can skip records the
    /// bundle already covers.
    pub fn restore_durability(&mut self, hwms: &[u64], dedup: &[(u64, DedupEntry)]) {
        debug_assert_eq!(hwms.len(), self.spec.shards as usize);
        self.disk_hwm.copy_from_slice(hwms);
        self.applied.copy_from_slice(hwms);
        self.dedup = DedupTable::from_snapshot(dedup);
    }

    /// Attaches the write-ahead log. Every later accepted batch routes
    /// through it ([`Tenant::ingest_logged`]).
    pub fn attach_wal(&mut self, wal: Arc<Wal>) {
        self.wal = Some(wal);
    }

    /// Appends `items` to shard `shard`. Returns the number accepted.
    ///
    /// # Errors
    /// [`ProtocolError::ShardOutOfRange`] for a bad index,
    /// [`ProtocolError::Quarantined`] if the shard (or the whole
    /// tenant, via an injected fault) is quarantined, and
    /// [`ProtocolError::Overloaded`] if the batch was shed on a full
    /// queue.
    pub fn ingest(&mut self, name: &str, shard: u32, items: &[u64]) -> Result<u64, ProtocolError> {
        self.ingest_logged(name, shard, 0, 0, items)
            .map(|o| o.accepted)
    }

    /// The full ingest path: exactly-once dedup, dispatch, WAL append.
    ///
    /// Ordering is load-bearing: dedup lookup first (a retry of an
    /// acked request replays the ack without touching the shards), then
    /// dispatch (a shed batch is *never* logged — the client will
    /// retry it), then the WAL append, then dedup admission. The
    /// returned [`IngestOutcome::commit`] obligation must be
    /// discharged by the caller before acking.
    ///
    /// # Errors
    /// Everything [`Tenant::ingest`] returns, plus
    /// [`ProtocolError::Io`] when the WAL append fails — in which case
    /// the tenant latches a write-quarantine (fail-stop): the batch
    /// reached the shard but not the log, and an un-logged ack is a
    /// promise recovery cannot keep.
    pub fn ingest_logged(
        &mut self,
        name: &str,
        shard: u32,
        client: u64,
        req_seq: u64,
        items: &[u64],
    ) -> Result<IngestOutcome, ProtocolError> {
        if shard >= self.spec.shards {
            return Err(ProtocolError::ShardOutOfRange {
                shard,
                shards: self.spec.shards,
            });
        }
        if let Some(hit) = self.dedup.check(client, req_seq) {
            // Replay the original ack — but only after the log entry it
            // stands on is durable (the first attempt may have died
            // between append and commit).
            let commit = match (&self.wal, hit.wal_seq) {
                (Some(wal), seq) if seq > 0 => Some((Arc::clone(wal), seq)),
                _ => None,
            };
            return Ok(IngestOutcome {
                accepted: hit.accepted,
                commit,
                deduplicated: true,
            });
        }
        if self.forced_fault.is_some() {
            return Err(ProtocolError::Quarantined(name.to_string()));
        }
        let j = shard as usize;
        let before = self.runtime.health();
        if before.poisoned.iter().any(|&(p, _)| p == j) {
            return Err(ProtocolError::Quarantined(name.to_string()));
        }
        self.runtime.dispatch_ref(j, items);
        let after = self.runtime.health();
        if after.shed_items > before.shed_items {
            // The dispatch itself shed the batch: either the queue was
            // full or the worker died under our feet.
            if after.poisoned.iter().any(|&(p, _)| p == j) {
                return Err(ProtocolError::Quarantined(name.to_string()));
            }
            return Err(ProtocolError::Overloaded {
                retry_after_ms: RETRY_AFTER_MS,
            });
        }
        let mut wal_seq = 0;
        let commit = if let Some(wal) = &self.wal {
            let mut scratch = std::mem::take(&mut self.wal_scratch);
            encode_frame(shard, client, req_seq, items, &mut scratch);
            let appended = wal.append(&scratch);
            self.wal_scratch = scratch;
            match appended {
                Ok(seq) => {
                    wal_seq = seq;
                    self.applied[j] = seq;
                    Some((Arc::clone(wal), seq))
                }
                Err(e) => {
                    self.forced_fault = Some(format!("wal append failed: {e}"));
                    return Err(ProtocolError::Io(
                        std::io::ErrorKind::Other,
                        format!("wal append failed, tenant write-quarantined: {e}"),
                    ));
                }
            }
        } else {
            None
        };
        self.dedup.admit(
            client,
            DedupEntry {
                req_seq,
                accepted: items.len() as u64,
                wal_seq,
            },
        );
        self.stale_items += items.len() as u64;
        self.total_items += items.len() as u64;
        Ok(IngestOutcome {
            accepted: items.len() as u64,
            commit,
            deduplicated: false,
        })
    }

    /// Re-applies one WAL record during recovery. Idempotent against
    /// the checkpoint bundle: a record whose sequence number is at or
    /// below its shard's high-water mark is already reflected in the
    /// restored bytes and is skipped (its dedup entry is still
    /// re-armed if newer than what the bundle carried). Returns whether
    /// the record was applied.
    ///
    /// # Errors
    /// [`ProtocolError::BadRequest`] if the frame names a shard the
    /// spec does not have — a crc-valid record that contradicts the
    /// spec is structural damage, and the caller quarantines the
    /// tenant.
    pub fn replay_frame(&mut self, seq: u64, frame: &IngestFrame) -> Result<bool, ProtocolError> {
        if frame.shard >= self.spec.shards {
            return Err(ProtocolError::BadRequest(format!(
                "wal record {seq} names shard {} but the spec has {}",
                frame.shard, self.spec.shards
            )));
        }
        let j = frame.shard as usize;
        self.dedup.admit_replay(
            frame.client,
            DedupEntry {
                req_seq: frame.req_seq,
                accepted: frame.items.len() as u64,
                wal_seq: seq,
            },
        );
        if seq <= self.disk_hwm[j] {
            return Ok(false);
        }
        self.runtime.dispatch_ref(j, &frame.items);
        self.applied[j] = seq;
        self.stale_items += frame.items.len() as u64;
        self.total_items += frame.items.len() as u64;
        self.wal_replayed += 1;
        Ok(true)
    }

    /// The serving view, refreshed first if ingestion has outrun it.
    /// The returned `Arc` stays valid (and immutable) however long the
    /// caller holds it, across any number of later refreshes.
    pub fn view(&mut self) -> Result<Arc<Frozen<DynSummary>>, ProtocolError> {
        if self.stale_items > 0 {
            self.refresh_view()?;
        }
        Ok(Arc::clone(&self.view))
    }

    /// Current serving epoch (bumps on every refresh).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reads the current report as protocol entries.
    pub fn query(&mut self) -> Result<(Vec<(u64, f64)>, u64), ProtocolError> {
        let view = self.view()?;
        let entries = view
            .report()
            .entries()
            .iter()
            .map(|e| (e.item, e.count))
            .collect();
        Ok((entries, self.epoch))
    }

    /// Estimates the mass of the inclusive id range `[lo, hi]` from
    /// the serving view. Only dyadic tenants can answer; every other
    /// kind refuses with [`ProtocolError::BadRequest`].
    pub fn range_query(&mut self, lo: u64, hi: u64) -> Result<(f64, u64), ProtocolError> {
        let view = self.view()?;
        let estimate = view.summary().range_estimate(lo, hi).ok_or_else(|| {
            ProtocolError::BadRequest(format!(
                "kind {:?} does not answer range queries (only dyadic tenants do)",
                self.spec.kind
            ))
        })?;
        Ok((estimate, self.epoch))
    }

    /// Reads the heavy dyadic intervals at threshold `phi` from the
    /// serving view, as `(level, lo, hi, estimate)` protocol entries.
    /// Only dyadic tenants can answer.
    pub fn heavy_ranges(&mut self, phi: f64) -> Result<(Vec<RangeEntry>, u64), ProtocolError> {
        let view = self.view()?;
        let ranges = view.summary().heavy_ranges(phi).ok_or_else(|| {
            ProtocolError::BadRequest(format!(
                "kind {:?} does not answer range queries (only dyadic tenants do)",
                self.spec.kind
            ))
        })?;
        let entries = ranges
            .iter()
            .map(|r| (r.level, r.lo, r.hi, r.count))
            .collect();
        Ok((entries, self.epoch))
    }

    /// Rebuilds the frozen view from the live bank.
    fn refresh_view(&mut self) -> Result<(), ProtocolError> {
        if let Err(e) = self.runtime.flush_timeout(REFRESH_FLUSH_TIMEOUT) {
            // Quarantines were applied by the barrier; a timeout keeps
            // the batches queued. Either way the bank is still
            // readable — merge what is there rather than failing the
            // read path.
            let _ = e;
        }
        let bank = self.runtime.map_summaries(Clone::clone);
        self.view = Arc::new(Frozen::new(merge_bank(&bank)?));
        self.epoch += 1;
        self.stale_items = 0;
        Ok(())
    }

    /// The merged summary's portable snapshot bytes.
    pub fn snapshot_merged(&mut self) -> Result<Bytes, ProtocolError> {
        Ok(self.view()?.summary().to_bytes())
    }

    /// Checkpoints the bank: arms the runtime's in-memory recovery and
    /// returns the bundle to persist. The flush barrier is bounded by
    /// `timeout` ([`crate::server::ServerConfig::checkpoint_timeout`]);
    /// poisoned shards and shards whose worker missed the deadline
    /// contribute their last good bytes *and keep their old high-water
    /// mark* — a wedged worker's cell lock is never even taken, and
    /// recovery replays its tail from the WAL instead.
    ///
    /// With a WAL attached the log is fsynced first, so the bundle's
    /// marks never reference sequence numbers the log could lose: a
    /// reopened log's next sequence number is always past every mark,
    /// and fresh appends can never be shadowed by a stale mark. If
    /// that sync fails the whole bundle falls back to last-good (bytes
    /// *and* marks) and the tenant latches a write-quarantine — the
    /// same fail-stop as a failed append.
    pub fn checkpoint(&mut self, timeout: Duration) -> BankSnapshot {
        let wal_ok = match &self.wal {
            Some(wal) => wal.sync().is_ok(),
            None => true,
        };
        if wal_ok {
            for (j, bytes) in self.runtime.checkpoint_timeout(timeout) {
                self.disk_bytes[j] = bytes;
                self.disk_hwm[j] = self.applied[j];
            }
        } else {
            self.forced_fault
                .get_or_insert_with(|| "wal sync failed at checkpoint".to_string());
        }
        BankSnapshot {
            shards: self.disk_bytes.iter().map(|b| b.to_vec()).collect(),
            hwms: self.disk_hwm.clone(),
            dedup: self.dedup.snapshot(),
        }
    }

    /// The WAL sequence number every shard's persisted bytes cover —
    /// the safe compaction bound: segments whose records all sit at or
    /// below it can be retired.
    pub fn covered_seq(&self) -> u64 {
        self.disk_hwm.iter().copied().min().unwrap_or(0)
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// The attached WAL's counters (zeroed defaults without one).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.as_ref().map(|w| w.stats()).unwrap_or_default()
    }

    /// Retries answered from the dedup table.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup.hits()
    }

    /// WAL records re-applied during recovery.
    pub fn wal_replayed(&self) -> u64 {
        self.wal_replayed
    }

    /// Clears quarantine: rebuilds every poisoned shard from its last
    /// in-memory checkpoint and lifts any injected fault. Returns how
    /// many shards were rebuilt.
    pub fn recover(&mut self) -> Result<usize, ProtocolError> {
        self.forced_fault = None;
        let poisoned: Vec<usize> = self
            .runtime
            .health()
            .poisoned
            .iter()
            .map(|&(j, _)| j)
            .collect();
        let mut rebuilt = 0;
        for j in poisoned {
            self.runtime
                .recover(j)
                .map_err(|e| ProtocolError::BadRequest(format!("shard {j}: {e}")))?;
            rebuilt += 1;
        }
        if rebuilt > 0 {
            self.stale_items += 1; // force the next read to re-merge
        }
        Ok(rebuilt)
    }

    /// Whether writes are currently refused.
    pub fn quarantined(&self) -> bool {
        self.forced_fault.is_some() || !self.runtime.health().poisoned.is_empty()
    }

    /// Items shed by this tenant's runtime so far.
    pub fn shed_items(&self) -> u64 {
        self.runtime.health().shed_items
    }

    /// Heap bytes resident in the live bank (the memory-budget input).
    pub fn resident_bytes(&self) -> u64 {
        self.runtime
            .map_summaries(|s| s.heap_bytes() as u64)
            .into_iter()
            .sum()
    }

    /// Injects an operator fault: writes fail as quarantined until
    /// [`Tenant::recover`]. Deterministic drills for the failure
    /// surface; no shard actually dies.
    pub fn inject_fault(&mut self, reason: impl Into<String>) {
        self.forced_fault = Some(reason.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::SummaryKind;
    use hh_core::HeavyHitters;

    fn spec() -> TenantSpec {
        TenantSpec {
            kind: SummaryKind::SpaceSaving,
            shards: 2,
            m: 100_000,
            universe: 1 << 20,
            ..TenantSpec::default()
        }
    }

    #[test]
    fn ingest_then_query_sees_the_heavy_item_and_bumps_epochs() {
        let mut t = Tenant::create(spec()).unwrap();
        let heavy: Vec<u64> = (0..10_000u64)
            .map(|i| if i % 2 == 0 { 5 } else { i })
            .collect();
        t.ingest("t", 0, &heavy[..5_000]).unwrap();
        t.ingest("t", 1, &heavy[5_000..]).unwrap();
        let (entries, epoch1) = t.query().unwrap();
        assert!(entries.iter().any(|&(item, _)| item == 5));
        // A quiescent re-query serves the same epoch; new data bumps it.
        let (_, epoch2) = t.query().unwrap();
        assert_eq!(epoch1, epoch2);
        t.ingest("t", 0, &[5; 100]).unwrap();
        let (_, epoch3) = t.query().unwrap();
        assert!(epoch3 > epoch2);
    }

    #[test]
    fn bad_shard_index_is_structured() {
        let mut t = Tenant::create(spec()).unwrap();
        assert_eq!(
            t.ingest("t", 9, &[1]).unwrap_err(),
            ProtocolError::ShardOutOfRange {
                shard: 9,
                shards: 2
            }
        );
    }

    #[test]
    fn injected_fault_refuses_writes_until_recover() {
        let mut t = Tenant::create(spec()).unwrap();
        t.ingest("t", 0, &[1, 2, 3]).unwrap();
        t.inject_fault("drill");
        assert!(t.quarantined());
        assert!(matches!(
            t.ingest("t", 0, &[4]).unwrap_err(),
            ProtocolError::Quarantined(_)
        ));
        // Reads keep working while quarantined.
        assert!(t.query().is_ok());
        t.recover().unwrap();
        assert!(!t.quarantined());
        t.ingest("t", 0, &[4]).unwrap();
    }

    #[test]
    fn checkpoint_bytes_restore_to_the_same_state() {
        let mut t = Tenant::create(spec()).unwrap();
        t.ingest("t", 0, &[7; 500]).unwrap();
        t.ingest("t", 1, &[9; 300]).unwrap();
        let bank = t.checkpoint(Duration::from_secs(2));
        assert_eq!(bank.shards.len(), 2);
        assert_eq!(bank.hwms, vec![0, 0], "no WAL, marks stay zero");
        for b in &bank.shards {
            let (restored, report) = DynSummary::from_bytes_report(b).unwrap();
            assert!(report.checksum_verified);
            assert_eq!(restored.kind(), SummaryKind::SpaceSaving);
        }
    }

    #[test]
    fn logged_ingest_appends_dedups_and_replays() {
        let dir = std::env::temp_dir().join(format!("hh-tenant-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (wal, replay) = hh_wal::Wal::open(hh_wal::WalConfig::new(&dir), 1).unwrap();
        assert!(replay.records.is_empty());
        let wal = Arc::new(wal);
        let mut t = Tenant::create(spec()).unwrap();
        t.attach_wal(Arc::clone(&wal));

        let out = t.ingest_logged("t", 0, 42, 1, &[7, 7, 9]).unwrap();
        assert_eq!(out.accepted, 3);
        assert!(!out.deduplicated);
        let (_, seq) = out.commit.expect("logged ingest owes a commit");
        wal.commit(seq).unwrap();

        // A retry of the same (client, req_seq) replays the ack
        // without dispatching again.
        let retry = t.ingest_logged("t", 0, 42, 1, &[7, 7, 9]).unwrap();
        assert!(retry.deduplicated);
        assert_eq!(retry.accepted, 3);
        assert_eq!(t.total_items, 3, "the retry never reached the shards");
        assert_eq!(t.dedup_hits(), 1);

        // Recovery: a fresh tenant replays the record once; marks make
        // a second replay of the same record a no-op.
        let (_, replay) = hh_wal::Wal::open(hh_wal::WalConfig::new(&dir), 1).unwrap();
        assert_eq!(replay.records.len(), 1);
        let mut fresh = Tenant::create(spec()).unwrap();
        for rec in &replay.records {
            let frame = IngestFrame::decode(&rec.payload).unwrap();
            assert!(fresh.replay_frame(rec.seq, &frame).unwrap());
        }
        assert_eq!(fresh.total_items, 3);
        assert_eq!(fresh.wal_replayed(), 1);
        // And the replayed dedup entry still answers the retry.
        let retry = fresh.ingest_logged("t", 0, 42, 1, &[7, 7, 9]).unwrap();
        assert!(retry.deduplicated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_merged_is_restorable_and_reports_the_heavy_item() {
        let mut t = Tenant::create(spec()).unwrap();
        t.ingest("t", 0, &[3; 4_000]).unwrap();
        t.ingest("t", 1, &[3; 4_000]).unwrap();
        let bytes = t.snapshot_merged().unwrap();
        let restored = DynSummary::from_bytes(&bytes).unwrap();
        assert!(restored.report().contains(3));
    }
}
