//! Simple tabulation hashing.
//!
//! The key is split into 8 bytes; each byte indexes a table of random
//! words which are XORed together. Simple tabulation is 3-independent and
//! enjoys much stronger Chernoff-style concentration than its independence
//! suggests (Pǎtraşcu–Thorup), making it a good "strong but constant-time"
//! option for the ablation experiments. Its seed is 8·256 words — far above
//! the `O(log n)` bits the paper charges — so it is *not* used in the
//! space-measured configurations, only in the timing ablations (E6/E12).

use crate::{HashFamily, HashFunction};
use hh_space::SpaceUsage;
use rand::Rng;
use serde::{Deserialize, Serialize};

const CHUNKS: usize = 8;
const TABLE: usize = 256;

/// The simple-tabulation family producing `out_bits`-bit outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TabulationFamily {
    out_bits: u32,
}

impl TabulationFamily {
    /// Family with codomain `[0, 2^out_bits)`.
    ///
    /// # Panics
    /// If `out_bits` is zero or exceeds 64.
    pub fn new_pow2(out_bits: u32) -> Self {
        assert!((1..=64).contains(&out_bits), "out_bits must be in 1..=64");
        Self { out_bits }
    }
}

impl HashFamily for TabulationFamily {
    type Fun = TabulationHash;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TabulationHash {
        let mut tables = vec![[0u64; TABLE]; CHUNKS];
        for t in tables.iter_mut() {
            for e in t.iter_mut() {
                *e = rng.gen();
            }
        }
        TabulationHash {
            tables,
            out_bits: self.out_bits,
        }
    }
}

/// A sampled simple-tabulation function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TabulationHash {
    #[serde(with = "table_serde")]
    tables: Vec<[u64; TABLE]>,
    out_bits: u32,
}

// Only the real serde_derive wires `#[serde(with)]` helpers into the
// derived impls; the vendored derive stubs don't, so outside of tests
// (which call these directly) the module looks dead to rustc.
#[cfg_attr(not(test), allow(dead_code))]
mod table_serde {
    //! `[u64; 256]` has no built-in serde impls; round-trip via `Vec<u64>`.
    use super::TABLE;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(t: &Vec<[u64; TABLE]>, s: S) -> Result<S::Ok, S::Error> {
        let flat: Vec<u64> = t.iter().flat_map(|a| a.iter().copied()).collect();
        flat.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<[u64; TABLE]>, D::Error> {
        let flat: Vec<u64> = Vec::deserialize(d)?;
        if flat.len() % TABLE != 0 {
            return Err(serde::de::Error::invariant("tabulation table length"));
        }
        Ok(flat
            .chunks_exact(TABLE)
            .map(|c| {
                let mut a = [0u64; TABLE];
                a.copy_from_slice(c);
                a
            })
            .collect())
    }
}

impl HashFunction for TabulationHash {
    #[inline]
    fn hash(&self, x: u64) -> u64 {
        let mut acc = 0u64;
        for (i, t) in self.tables.iter().enumerate() {
            let byte = ((x >> (8 * i)) & 0xFF) as usize;
            acc ^= t[byte];
        }
        acc >> (64 - self.out_bits)
    }

    #[inline]
    fn range(&self) -> u64 {
        if self.out_bits == 64 {
            u64::MAX
        } else {
            1u64 << self.out_bits
        }
    }
}

impl SpaceUsage for TabulationHash {
    fn model_bits(&self) -> u64 {
        (CHUNKS * TABLE * 64) as u64
    }
    fn heap_bytes(&self) -> usize {
        self.tables.capacity() * TABLE * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = TabulationFamily::new_pow2(10).sample(&mut rng);
        for _ in 0..1000 {
            assert!(h.hash(rng.gen()) < 1024);
        }
    }

    #[test]
    fn single_byte_flip_changes_output_often() {
        // Avalanche sanity: flipping one input byte should change the hash
        // almost always (tables are random words).
        let mut rng = StdRng::seed_from_u64(4);
        let h = TabulationFamily::new_pow2(32).sample(&mut rng);
        let mut changed = 0;
        let total = 1000;
        for i in 0..total {
            let x: u64 = rng.gen();
            let y = x ^ (0xFFu64 << (8 * (i % 8)));
            if h.hash(x) != h.hash(y) {
                changed += 1;
            }
        }
        assert!(changed > total * 9 / 10, "changed {changed}/{total}");
    }

    #[test]
    fn table_serde_round_trips_through_codec() {
        // The `#[serde(with = "table_serde")]` helpers must encode
        // `Vec<[u64; 256]>` losslessly; drive them through the vendored
        // byte codec directly (derived impls are compile-time stubs).
        let mut rng = StdRng::seed_from_u64(8);
        let h = TabulationFamily::new_pow2(16).sample(&mut rng);
        let mut writer = serde::bincode::Writer::default();
        super::table_serde::serialize(&h.tables, &mut writer).unwrap();
        let bytes = serde::Serializer::done(writer).unwrap();
        assert_eq!(bytes.len(), 8 + CHUNKS * TABLE * 8);
        let back = super::table_serde::deserialize(serde::bincode::Reader::new(&bytes)).unwrap();
        assert_eq!(back, h.tables);
    }

    #[test]
    fn seed_is_expensive_and_reported_honestly() {
        let mut rng = StdRng::seed_from_u64(6);
        let h = TabulationFamily::new_pow2(8).sample(&mut rng);
        assert_eq!(h.model_bits(), 8 * 256 * 64);
        assert!(h.heap_bytes() >= 8 * 256 * 8);
    }
}
