//! k-wise independent polynomial hashing over `F_p`, `p = 2⁶¹ − 1`.
//!
//! A uniformly random polynomial of degree `k − 1` evaluated at the key
//! gives a k-wise independent family. Pairwise (k = 2) suffices for the
//! paper's Lemma 2 and the Chebyshev arguments; k = 4 supports
//! fourth-moment concentration for CountSketch-style baselines.

use crate::mersenne::{self, P};
use crate::{HashFamily, HashFunction};
use hh_space::SpaceUsage;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Family of degree-(k−1) polynomials over `F_p` reduced into `[0, range)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolynomialFamily {
    range: u64,
    k: usize,
}

impl PolynomialFamily {
    /// Creates the family with independence parameter `k ≥ 1`.
    ///
    /// # Panics
    /// If `range` is zero / too large, or `k` is zero.
    pub fn new(range: u64, k: usize) -> Self {
        assert!(range > 0 && range < P, "invalid range");
        assert!(k >= 1, "independence k must be at least 1");
        Self { range, k }
    }

    /// Independence parameter.
    pub fn independence(&self) -> usize {
        self.k
    }
}

impl HashFamily for PolynomialFamily {
    type Fun = PolynomialHash;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PolynomialHash {
        // Leading coefficient nonzero keeps the polynomial at full degree;
        // uniformity of lower coefficients gives k-wise independence.
        let mut coeffs: Vec<u64> = (0..self.k).map(|_| rng.gen_range(0..P)).collect();
        if self.k > 1 && coeffs[0] == 0 {
            coeffs[0] = 1;
        }
        PolynomialHash {
            coeffs,
            range: self.range,
        }
    }
}

/// A sampled polynomial hash function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolynomialHash {
    coeffs: Vec<u64>,
    range: u64,
}

/// Field-wise snapshot: the coefficient vector and the structural range.
/// A restored function hashes (and signs) identically, preserving the
/// shared-seed contract sketch merging relies on.
impl Serialize for PolynomialHash {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        self.coeffs.serialize(&mut serializer)?;
        serializer.write_u64(self.range)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for PolynomialHash {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let coeffs: Vec<u64> = Vec::deserialize(&mut deserializer)?;
        let range = deserializer.read_u64()?;
        if coeffs.is_empty() || coeffs.iter().any(|&c| c >= P) || range == 0 || range >= P {
            return Err(serde::de::Error::invariant(
                "PolynomialHash snapshot outside the field",
            ));
        }
        Ok(Self { coeffs, range })
    }
}

impl PolynomialHash {
    /// Bucket and a `{−1, +1}` sign from **one** polynomial evaluation.
    ///
    /// The bucket is the fast-range of the field value `v` (driven by
    /// `v`'s high bits) and the sign is `v`'s low bit — a spare bit the
    /// range reduction all but ignores. This halves CountSketch's hash
    /// work versus evaluating a second polynomial for the sign, and the
    /// pair is still sound for the CountSketch analysis: `v` is k-wise
    /// independent across keys, and within each fast-range preimage
    /// class (a contiguous interval of ~`p/range` field values) the low
    /// bit alternates, so `|E[sign · 1[bucket = b]]| ≤ 1/p ≈ 2⁻⁶¹` —
    /// sign and bucket are unbiased and cross-key independent to within
    /// the field's own rounding.
    #[inline]
    pub fn hash_and_sign(&self, x: u64) -> (u64, i64) {
        let v = mersenne::poly_eval(&self.coeffs, mersenne::reduce64(x));
        let sign = if v & 1 == 1 { 1 } else { -1 };
        (mersenne::fast_range(v, self.range), sign)
    }

    /// The `{−1, +1}` sign alone (the same bit
    /// [`PolynomialHash::hash_and_sign`] returns).
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        let v = mersenne::poly_eval(&self.coeffs, mersenne::reduce64(x));
        if v & 1 == 1 {
            1
        } else {
            -1
        }
    }
}

impl HashFunction for PolynomialHash {
    #[inline]
    fn hash(&self, x: u64) -> u64 {
        // Fast-range instead of `% range`: same near-equal preimage
        // classes, no hardware division (see carter_wegman.rs).
        mersenne::fast_range(
            mersenne::poly_eval(&self.coeffs, mersenne::reduce64(x)),
            self.range,
        )
    }

    #[inline]
    fn range(&self) -> u64 {
        self.range
    }
}

impl SpaceUsage for PolynomialHash {
    fn model_bits(&self) -> u64 {
        61 * self.coeffs.len() as u64
    }
    fn heap_bytes(&self) -> usize {
        self.coeffs.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_in_range_for_various_k() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in [1usize, 2, 4, 8] {
            let fam = PolynomialFamily::new(1000, k);
            let h = fam.sample(&mut rng);
            for _ in 0..300 {
                assert!(h.hash(rng.gen()) < 1000);
            }
        }
    }

    #[test]
    fn seed_cost_scales_with_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let h2 = PolynomialFamily::new(64, 2).sample(&mut rng);
        let h4 = PolynomialFamily::new(64, 4).sample(&mut rng);
        assert_eq!(h2.model_bits(), 122);
        assert_eq!(h4.model_bits(), 244);
    }

    #[test]
    fn signs_are_balanced() {
        let mut rng = StdRng::seed_from_u64(23);
        let fam = PolynomialFamily::new(64, 2);
        let mut plus = 0i64;
        let n = 20_000;
        let h = fam.sample(&mut rng);
        for x in 0..n {
            plus += (h.sign(x) > 0) as i64;
        }
        let frac = plus as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "sign balance {frac}");
    }

    #[test]
    fn hash_and_sign_agrees_with_separate_calls() {
        let mut rng = StdRng::seed_from_u64(41);
        let fam = PolynomialFamily::new(1000, 2);
        let h = fam.sample(&mut rng);
        for _ in 0..2000 {
            let x: u64 = rng.gen();
            assert_eq!(h.hash_and_sign(x), (h.hash(x), h.sign(x)));
        }
    }

    #[test]
    fn sign_uncorrelated_with_bucket() {
        // CountSketch needs sign and bucket to behave independently; check
        // the empirical sign balance within each bucket.
        let mut rng = StdRng::seed_from_u64(31);
        let fam = PolynomialFamily::new(8, 2);
        let h = fam.sample(&mut rng);
        let mut per_bucket = [(0i64, 0i64); 8];
        for x in 0..40_000u64 {
            let b = h.hash(x) as usize;
            if h.sign(x) > 0 {
                per_bucket[b].0 += 1;
            } else {
                per_bucket[b].1 += 1;
            }
        }
        for (b, (p, m)) in per_bucket.iter().enumerate() {
            let frac = *p as f64 / (p + m) as f64;
            assert!((0.40..0.60).contains(&frac), "bucket {b} balance {frac}");
        }
    }
}
