//! A deterministic, multiply-based `std::hash::Hasher` for `u64`-keyed
//! hash maps on hot paths.
//!
//! `std::collections::HashMap`'s default SipHash costs more per lookup
//! (~20 ns) than this repo's entire per-item time budget for the
//! optimized Algorithm 2. For *internal* tables keyed by stream item ids
//! (Misra–Gries candidate tables, baseline summaries) the DoS-resistance
//! of SipHash buys nothing — keys are bounded integers, the tables are
//! size-capped by construction, and the algorithms already assume only
//! universal hashing — so a fixed multiply-mix hasher in the style of
//! rustc's FxHash is the right trade.
//!
//! This is *not* a [`crate::HashFamily`]: there is no seed, no
//! universality guarantee, and it must never back any structure whose
//! analysis needs pairwise independence. It exists solely to make
//! `HashMap<u64, _>` fast and deterministic.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher specialized for integer keys.
///
/// Each `write_*` folds the value in with a rotate-xor and a
/// multiplication by a 64-bit odd constant, which diffuses low-bit
/// patterns into the high bits `HashMap` uses for bucket selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxU64Hasher {
    state: u64,
}

/// The multiplicative constant: ≈ 2⁶⁴/π, the mixer rustc's FxHash uses.
/// (Distinct from the 2⁶⁴/φ golden-ratio constant `0x9E37…7C15` used by
/// the Misra–Gries slot hash; both are fine mixers — just don't "unify"
/// them to match a comment.)
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxU64Hasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl Hasher for FxU64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback: fold 8-byte words, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(tail) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxU64Hasher`]; plug into
/// `HashMap::with_capacity_and_hasher` or use [`FastMap`].
pub type FxBuildHasher = BuildHasherDefault<FxU64Hasher>;

/// A `HashMap` wired to the fast integer hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Creates an empty [`FastMap`] with at least `cap` capacity.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one(v: u64) -> u64 {
        let mut h = FxU64Hasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42), hash_one(42));
        assert_ne!(hash_one(42), hash_one(43));
    }

    #[test]
    fn sequential_keys_spread_over_high_bits() {
        // HashMap derives the bucket from the high bits; sequential ids
        // must not collapse there.
        let tops: std::collections::HashSet<u64> =
            (0..1024u64).map(|v| hash_one(v) >> 57).collect();
        assert!(
            tops.len() > 64,
            "only {} distinct high-7 values",
            tops.len()
        );
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FastMap<u64, u64> = fast_map_with_capacity(16);
        for k in 0..1000u64 {
            *m.entry(k % 37).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 37);
        assert_eq!(m[&0], 28);
    }

    #[test]
    fn byte_fallback_differs_by_length() {
        let mut a = FxU64Hasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxU64Hasher::default();
        b.write(&[1, 2, 3, 0]);
        assert_ne!(a.finish(), b.finish());
    }
}
