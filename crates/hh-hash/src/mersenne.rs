//! Arithmetic over the Mersenne prime field `F_p`, `p = 2⁶¹ − 1`.
//!
//! Reduction mod a Mersenne prime needs no division: for
//! `x < 2¹²²`, `x mod p` is computed with two shift-add folds. All hash
//! families with algebraic structure ([`crate::CarterWegmanFamily`],
//! [`crate::PolynomialFamily`]) work over this field, which comfortably
//! contains any `u64`-universe item after one fold.

/// The Mersenne prime `2⁶¹ − 1`.
pub const P: u64 = (1 << 61) - 1;

/// Reduces a 64-bit value into `[0, p)`.
#[inline]
pub fn reduce64(x: u64) -> u64 {
    // x = hi·2^61 + lo  ⇒  x ≡ hi + lo (mod p)
    let folded = (x >> 61) + (x & P);
    if folded >= P {
        folded - P
    } else {
        folded
    }
}

/// Reduces a 128-bit value into `[0, p)`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    let lo = (x & ((1 << 61) - 1)) as u64;
    let mid = ((x >> 61) & ((1 << 61) - 1)) as u64;
    let hi = (x >> 122) as u64;
    let mut s = lo as u128 + mid as u128 + hi as u128;
    // s < 3·2^61, two conditional subtractions suffice.
    if s >= P as u128 {
        s -= P as u128;
    }
    if s >= P as u128 {
        s -= P as u128;
    }
    s as u64
}

/// `(a + b) mod p` for `a, b < p`.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let s = a + b;
    if s >= P {
        s - P
    } else {
        s
    }
}

/// `(a · b) mod p` for `a, b < p`.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    reduce128(a as u128 * b as u128)
}

/// Lemire's multiply-shift fast-range reduction of a field element
/// `v ∈ [0, 2⁶¹)` into `[0, range)`: `⌊v · range / 2⁶¹⌋`.
///
/// This replaces the hardware division of `v % range` with one widening
/// multiply and a shift. Like `mod`, it partitions `[0, p)` into `range`
/// preimage classes whose sizes differ by at most one, so for a
/// pairwise-independent `v` the collision bound
/// `Pr[bucket(a) = bucket(b)] ≤ ⌈p/range⌉/p ≤ (1 + range/p)/range`
/// is unchanged — the Carter–Wegman guarantee survives, only the
/// bucket *labels* differ from the `mod` version.
#[inline]
pub fn fast_range(v: u64, range: u64) -> u64 {
    debug_assert!(v < (1u64 << 61));
    ((v as u128 * range as u128) >> 61) as u64
}

/// Horner evaluation of a polynomial with coefficients `coeffs` (constant
/// term last) at `x`, everything mod p.
#[inline]
pub fn poly_eval(coeffs: &[u64], x: u64) -> u64 {
    let mut acc = 0u64;
    for &c in coeffs {
        acc = add(mul(acc, x), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_mersenne() {
        assert_eq!(P, 2_305_843_009_213_693_951);
        assert_eq!(P, (1u64 << 61) - 1);
    }

    #[test]
    fn reduce64_agrees_with_modulo() {
        for x in [0u64, 1, P - 1, P, P + 1, 2 * P, u64::MAX] {
            assert_eq!(reduce64(x), x % P, "x={x}");
        }
    }

    #[test]
    fn reduce128_agrees_with_modulo() {
        let cases: [u128; 7] = [
            0,
            P as u128,
            (P as u128) * 2 + 5,
            u64::MAX as u128,
            u128::MAX,
            (P as u128) * (P as u128),
            (P as u128 - 1) * (P as u128 - 1),
        ];
        for x in cases {
            assert_eq!(reduce128(x) as u128, x % P as u128, "x={x}");
        }
    }

    #[test]
    fn field_ops_match_u128_reference() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state % P
        };
        for _ in 0..1000 {
            let a = next();
            let b = next();
            assert_eq!(add(a, b) as u128, (a as u128 + b as u128) % P as u128);
            assert_eq!(mul(a, b) as u128, (a as u128 * b as u128) % P as u128);
        }
    }

    #[test]
    fn fast_range_stays_in_range_and_is_balanced() {
        // Always lands in [0, range).
        for range in [1u64, 2, 3, 17, 100, 1 << 20] {
            for v in [0u64, 1, P / 2, P - 1] {
                assert!(fast_range(v, range) < range, "v={v} range={range}");
            }
        }
        // Preimage classes over [0, p) differ in size by at most one:
        // check on a small exhaustive sub-problem with the same formula
        // shape (width 2^7 standing in for 2^61).
        let bits = 7u32;
        let range = 10u64;
        let mut sizes = vec![0u64; range as usize];
        for v in 0..(1u64 << bits) {
            sizes[((v as u128 * range as u128) >> bits) as usize] += 1;
        }
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced: {sizes:?}");
    }

    #[test]
    fn poly_eval_matches_naive() {
        // 3x^2 + 5x + 7 at x = 11 → 3*121 + 55 + 7 = 425
        assert_eq!(poly_eval(&[3, 5, 7], 11), 425);
        // Degenerate cases.
        assert_eq!(poly_eval(&[], 5), 0);
        assert_eq!(poly_eval(&[42], 5), 42);
    }
}
