//! The Carter–Wegman pairwise-independent family
//! `h_{a,b}(x) = fastrange((a·x + b) mod p, r)` with `p = 2⁶¹ − 1`.
//!
//! This is the family the paper invokes via \[LRSC01\] in §2.4: it exists
//! for every range and its description (`a`, `b`) costs `2⌈log₂ p⌉ = 122`
//! bits — the `O(log n)` seed cost charged in the space analyses of
//! Theorems 1 and 2.
//!
//! The final reduction into `[0, r)` uses Lemire's multiply-shift
//! fast-range ([`mersenne::fast_range`]) instead of the textbook `mod r`:
//! both partition the field into `r` near-equal preimage classes (sizes
//! within one of each other), so the pairwise collision bound is
//! identical, but fast-range costs one widening multiply where `mod`
//! costs a hardware division — the difference between ~3 and ~25 cycles
//! on the per-repetition hot path of the heavy-hitter algorithms.

use crate::mersenne::{self, P};
use crate::{HashFamily, HashFunction};
use hh_space::SpaceUsage;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The family `{h_{a,b} : a ∈ [1,p), b ∈ [0,p)}` with codomain `[0, range)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarterWegmanFamily {
    range: u64,
}

impl CarterWegmanFamily {
    /// Creates the family with the given codomain size.
    ///
    /// # Panics
    /// If `range` is zero or not less than `p`.
    pub fn new(range: u64) -> Self {
        assert!(range > 0, "range must be positive");
        assert!(range < P, "range must be below the field size");
        Self { range }
    }
}

impl HashFamily for CarterWegmanFamily {
    type Fun = CarterWegmanHash;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CarterWegmanHash {
        CarterWegmanHash {
            a: rng.gen_range(1..P),
            b: rng.gen_range(0..P),
            range: self.range,
        }
    }
}

/// A sampled function `x ↦ fastrange((a·x + b) mod p, range)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarterWegmanHash {
    a: u64,
    b: u64,
    range: u64,
}

/// Field-wise snapshot of the drawn coefficients and the structural
/// range, so a restored function hashes identically — the seed-sharing
/// contract that makes summaries built on this family mergeable.
impl Serialize for CarterWegmanHash {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_u64(self.a)?;
        serializer.write_u64(self.b)?;
        serializer.write_u64(self.range)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for CarterWegmanHash {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let a = deserializer.read_u64()?;
        let b = deserializer.read_u64()?;
        let range = deserializer.read_u64()?;
        if !(1..P).contains(&a) || b >= P || range == 0 || range >= P {
            return Err(serde::de::Error::invariant(
                "CarterWegmanHash snapshot outside the field",
            ));
        }
        Ok(Self::from_coefficients(a, b, range))
    }
}

impl CarterWegmanHash {
    /// Builds a function with explicit coefficients (used by tests and by
    /// deterministic replay in the lower-bound protocols).
    pub fn from_coefficients(a: u64, b: u64, range: u64) -> Self {
        assert!((1..P).contains(&a) && b < P && range > 0 && range < P);
        Self { a, b, range }
    }
}

impl HashFunction for CarterWegmanHash {
    #[inline]
    fn hash(&self, x: u64) -> u64 {
        let x = mersenne::reduce64(x);
        mersenne::fast_range(mersenne::add(mersenne::mul(self.a, x), self.b), self.range)
    }

    #[inline]
    fn range(&self) -> u64 {
        self.range
    }
}

impl SpaceUsage for CarterWegmanHash {
    fn model_bits(&self) -> u64 {
        // The two field elements a and b; the range is a structural
        // parameter of the algorithm, not part of the random seed.
        2 * 61
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_always_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let fam = CarterWegmanFamily::new(17);
        for _ in 0..20 {
            let h = fam.sample(&mut rng);
            for _ in 0..200 {
                let x: u64 = rng.gen();
                assert!(h.hash(x) < 17);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_coefficients() {
        let h = CarterWegmanHash::from_coefficients(12345, 678, 100);
        let a = h.hash(42);
        for _ in 0..5 {
            assert_eq!(h.hash(42), a);
        }
        // Reference computation: field arithmetic, then the Lemire
        // multiply-shift reduction ⌊v·r/2⁶¹⌋.
        let v = (12345u128 * 42 + 678) % P as u128;
        let expected = (v * 100) >> 61;
        assert_eq!(a as u128, expected);
    }

    #[test]
    fn pairwise_independence_on_small_range() {
        // Over many function draws, the joint distribution of
        // (h(x0), h(x1)) for fixed x0 ≠ x1 should be close to uniform on
        // [r]² — the defining property of pairwise independence.
        let r = 4u64;
        let fam = CarterWegmanFamily::new(r);
        let mut rng = StdRng::seed_from_u64(99);
        let mut joint = vec![0u32; (r * r) as usize];
        let draws = 40_000;
        for _ in 0..draws {
            let h = fam.sample(&mut rng);
            let (y0, y1) = (h.hash(1), h.hash(2));
            joint[(y0 * r + y1) as usize] += 1;
        }
        let expect = draws as f64 / (r * r) as f64;
        for (cell, &c) in joint.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.15, "cell {cell}: count {c}, expected {expect}");
        }
    }

    #[test]
    fn seed_cost_is_two_field_elements() {
        let h = CarterWegmanHash::from_coefficients(1, 0, 10);
        assert_eq!(h.model_bits(), 122);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_rejected() {
        CarterWegmanFamily::new(0);
    }
}
