//! Dietzfelbinger's multiply-shift family for power-of-two ranges.
//!
//! `h_{a,b}(x) = ((a·x + b) mod 2¹²⁸) >> (128 − ℓ)` with uniformly random
//! 128-bit `a` (odd in the plain-universal variant) and `b` is strongly
//! universal onto `ℓ`-bit outputs. It needs no modular reduction, making it
//! the fastest family here — appropriate for the `O(1)` worst-case update
//! claim of Theorems 1 and 2.

use crate::{HashFamily, HashFunction};
use hh_space::SpaceUsage;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The multiply-shift family producing `ℓ`-bit outputs (range `2^ℓ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplyShiftFamily {
    out_bits: u32,
}

impl MultiplyShiftFamily {
    /// Family with codomain `[0, 2^out_bits)`.
    ///
    /// # Panics
    /// If `out_bits` is zero or exceeds 64.
    pub fn new_pow2(out_bits: u32) -> Self {
        assert!((1..=64).contains(&out_bits), "out_bits must be in 1..=64");
        Self { out_bits }
    }

    /// Family whose range is the smallest power of two `≥ min_range`.
    pub fn covering(min_range: u64) -> Self {
        Self::new_pow2(hh_space::ceil_log2(min_range).max(1) as u32)
    }
}

impl HashFamily for MultiplyShiftFamily {
    type Fun = MultiplyShiftHash;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MultiplyShiftHash {
        let a = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
        let b = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
        MultiplyShiftHash {
            a: a | 1, // odd multiplier
            b,
            out_bits: self.out_bits,
        }
    }
}

/// A sampled multiply-shift function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplyShiftHash {
    a: u128,
    b: u128,
    out_bits: u32,
}

impl HashFunction for MultiplyShiftHash {
    #[inline]
    fn hash(&self, x: u64) -> u64 {
        let v = self.a.wrapping_mul(x as u128).wrapping_add(self.b);
        (v >> (128 - self.out_bits)) as u64
    }

    #[inline]
    fn range(&self) -> u64 {
        if self.out_bits == 64 {
            u64::MAX // 2^64 does not fit; callers with 64-bit ranges know this
        } else {
            1u64 << self.out_bits
        }
    }
}

impl SpaceUsage for MultiplyShiftHash {
    fn model_bits(&self) -> u64 {
        2 * 128
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_fits_out_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [1u32, 5, 16, 63] {
            let fam = MultiplyShiftFamily::new_pow2(bits);
            let h = fam.sample(&mut rng);
            for _ in 0..500 {
                let y = h.hash(rng.gen());
                assert!(y < (1u64 << bits), "bits={bits} y={y}");
            }
        }
    }

    #[test]
    fn covering_picks_enough_bits() {
        assert_eq!(MultiplyShiftFamily::covering(100).out_bits, 7);
        assert_eq!(MultiplyShiftFamily::covering(128).out_bits, 7);
        assert_eq!(MultiplyShiftFamily::covering(129).out_bits, 8);
        assert_eq!(MultiplyShiftFamily::covering(1).out_bits, 1);
    }

    #[test]
    fn distribution_roughly_uniform() {
        // A single fixed function applied to sequential keys should spread
        // across buckets (this catches e.g. forgetting the shift).
        let mut rng = StdRng::seed_from_u64(17);
        let fam = MultiplyShiftFamily::new_pow2(4);
        let h = fam.sample(&mut rng);
        let mut buckets = [0u32; 16];
        for x in 0..16_000u64 {
            buckets[h.hash(x) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!((500..=1500).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn multiplier_is_forced_odd() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let h = MultiplyShiftFamily::new_pow2(8).sample(&mut rng);
            assert_eq!(h.a & 1, 1);
        }
    }
}
