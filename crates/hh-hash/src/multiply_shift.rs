//! Dietzfelbinger's multiply-shift family for power-of-two ranges.
//!
//! `h_{a,b}(x) = ((a·x + b) mod 2¹²⁸) >> (128 − ℓ)` with uniformly random
//! 128-bit `a` (odd in the plain-universal variant) and `b` is strongly
//! universal onto `ℓ`-bit outputs. It needs no modular reduction, making it
//! the fastest family here — appropriate for the `O(1)` worst-case update
//! claim of Theorems 1 and 2.

use crate::{HashFamily, HashFunction};
use hh_space::SpaceUsage;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The multiply-shift family producing `ℓ`-bit outputs (range `2^ℓ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplyShiftFamily {
    out_bits: u32,
}

impl MultiplyShiftFamily {
    /// Family with codomain `[0, 2^out_bits)`.
    ///
    /// # Panics
    /// If `out_bits` is zero or exceeds 64.
    pub fn new_pow2(out_bits: u32) -> Self {
        assert!((1..=64).contains(&out_bits), "out_bits must be in 1..=64");
        Self { out_bits }
    }

    /// Family whose range is the smallest power of two `≥ min_range`.
    pub fn covering(min_range: u64) -> Self {
        Self::new_pow2(hh_space::ceil_log2(min_range).max(1) as u32)
    }
}

impl HashFamily for MultiplyShiftFamily {
    type Fun = MultiplyShiftHash;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MultiplyShiftHash {
        let a = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
        let b = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
        MultiplyShiftHash {
            a: a | 1, // odd multiplier
            b,
            out_bits: self.out_bits,
        }
    }
}

/// A sampled multiply-shift function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplyShiftHash {
    a: u128,
    b: u128,
    out_bits: u32,
}

impl HashFunction for MultiplyShiftHash {
    #[inline]
    fn hash(&self, x: u64) -> u64 {
        let v = self.a.wrapping_mul(x as u128).wrapping_add(self.b);
        (v >> (128 - self.out_bits)) as u64
    }

    #[inline]
    fn range(&self) -> u64 {
        if self.out_bits == 64 {
            u64::MAX // 2^64 does not fit; callers with 64-bit ranges know this
        } else {
            1u64 << self.out_bits
        }
    }
}

impl SpaceUsage for MultiplyShiftHash {
    fn model_bits(&self) -> u64 {
        2 * 128
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Dietzfelbinger's *plain-universal* single-multiply variant:
/// `h_a(x) = (a·x mod 2⁶⁴) >> (64 − ℓ)` with `a` a uniformly random odd
/// 64-bit word.
///
/// Collision bound `Pr[h(x) = h(y)] ≤ 2/2^ℓ` for `x ≠ y` (\[DHKP97\]) —
/// a factor two weaker than Definition 2 demands of a range-`2^ℓ` family,
/// so callers that need `Pr ≤ 1/B` draw it with range `2B` (one extra
/// output bit). In exchange the evaluation is a single 64-bit multiply
/// and a shift: ~3 cycles, fully pipelined, against ~15 cycles for the
/// Mersenne-field families. This is the repetition hash of Algorithm 2's
/// hot path, where the hash is evaluated `R ≈ 20` times per sampled item
/// and the unit-cost RAM model of §2.3 prices exactly this operation
/// at O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplyShift64Family {
    out_bits: u32,
}

impl MultiplyShift64Family {
    /// Family with codomain `[0, 2^out_bits)`, `out_bits ∈ [1, 63]`.
    ///
    /// # Panics
    /// If `out_bits` is outside `1..=63`.
    pub fn new_pow2(out_bits: u32) -> Self {
        assert!((1..=63).contains(&out_bits), "out_bits must be in 1..=63");
        Self { out_bits }
    }

    /// Family whose range is the smallest power of two `≥ 2·min_range`:
    /// the doubling restores the `1/min_range` collision bound lost to
    /// the plain-universal factor two.
    pub fn covering_universal(min_range: u64) -> Self {
        Self::new_pow2(hh_space::ceil_log2(2 * min_range).max(1) as u32)
    }
}

impl HashFamily for MultiplyShift64Family {
    type Fun = MultiplyShift64Hash;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MultiplyShift64Hash {
        MultiplyShift64Hash {
            a: rng.gen::<u64>() | 1,
            shift: 64 - self.out_bits,
        }
    }
}

/// A sampled single-multiply function (see [`MultiplyShift64Family`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShift64Hash {
    a: u64,
    shift: u32,
}

/// Field-wise snapshot: the odd multiplier and the shift. A restored
/// function hashes identically, which is what lets seed-aligned
/// Algorithm-2 repetitions merge bucket-wise.
impl Serialize for MultiplyShift64Hash {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_u64(self.a)?;
        serializer.write_u64(self.shift as u64)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for MultiplyShift64Hash {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let a = deserializer.read_u64()?;
        let shift = deserializer.read_u64()?;
        if a & 1 == 0 || !(1..=63).contains(&shift) {
            return Err(serde::de::Error::invariant(
                "MultiplyShift64Hash snapshot malformed",
            ));
        }
        Ok(Self {
            a,
            shift: shift as u32,
        })
    }
}

impl HashFunction for MultiplyShift64Hash {
    #[inline]
    fn hash(&self, x: u64) -> u64 {
        self.a.wrapping_mul(x) >> self.shift
    }

    #[inline]
    fn range(&self) -> u64 {
        1u64 << (64 - self.shift)
    }
}

impl SpaceUsage for MultiplyShift64Hash {
    fn model_bits(&self) -> u64 {
        // One 64-bit multiplier; the shift is a structural parameter.
        64
    }
    fn heap_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_fits_out_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [1u32, 5, 16, 63] {
            let fam = MultiplyShiftFamily::new_pow2(bits);
            let h = fam.sample(&mut rng);
            for _ in 0..500 {
                let y = h.hash(rng.gen());
                assert!(y < (1u64 << bits), "bits={bits} y={y}");
            }
        }
    }

    #[test]
    fn covering_picks_enough_bits() {
        assert_eq!(MultiplyShiftFamily::covering(100).out_bits, 7);
        assert_eq!(MultiplyShiftFamily::covering(128).out_bits, 7);
        assert_eq!(MultiplyShiftFamily::covering(129).out_bits, 8);
        assert_eq!(MultiplyShiftFamily::covering(1).out_bits, 1);
    }

    #[test]
    fn distribution_roughly_uniform() {
        // A single fixed function applied to sequential keys should spread
        // across buckets (this catches e.g. forgetting the shift).
        let mut rng = StdRng::seed_from_u64(17);
        let fam = MultiplyShiftFamily::new_pow2(4);
        let h = fam.sample(&mut rng);
        let mut buckets = [0u32; 16];
        for x in 0..16_000u64 {
            buckets[h.hash(x) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!((500..=1500).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn multiplier_is_forced_odd() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let h = MultiplyShiftFamily::new_pow2(8).sample(&mut rng);
            assert_eq!(h.a & 1, 1);
        }
    }

    #[test]
    fn ms64_output_in_range_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let fam = MultiplyShift64Family::new_pow2(6);
        for _ in 0..20 {
            let h = fam.sample(&mut rng);
            assert_eq!(h.range(), 64);
            for _ in 0..200 {
                let x: u64 = rng.gen();
                let y = h.hash(x);
                assert!(y < 64);
                assert_eq!(y, h.hash(x));
            }
        }
    }

    #[test]
    fn ms64_collision_rate_within_plain_universal_bound() {
        // Empirical collision probability over random pairs must stay
        // under the 2/2^l plain-universal bound (with slack).
        let mut rng = StdRng::seed_from_u64(11);
        let bits = 6u32;
        let fam = MultiplyShift64Family::new_pow2(bits);
        let mut collisions = 0usize;
        let mut total = 0usize;
        for _ in 0..400 {
            let h = fam.sample(&mut rng);
            for _ in 0..200 {
                let a: u64 = rng.gen();
                let mut b: u64 = rng.gen();
                while b == a {
                    b = rng.gen();
                }
                total += 1;
                collisions += usize::from(h.hash(a) == h.hash(b));
            }
        }
        let rate = collisions as f64 / total as f64;
        let bound = 2.0 / (1u64 << bits) as f64;
        assert!(rate < 1.5 * bound, "collision rate {rate} vs bound {bound}");
    }

    #[test]
    fn ms64_covering_universal_doubles_range() {
        // covering_universal(B) must give 2^l >= 2B so 2/2^l <= 1/B.
        for min_range in [1u64, 5, 640, 1000, 4096] {
            let fam = MultiplyShift64Family::covering_universal(min_range);
            let mut rng = StdRng::seed_from_u64(1);
            let h = fam.sample(&mut rng);
            assert!(
                h.range() >= 2 * min_range,
                "range {} min {min_range}",
                h.range()
            );
        }
    }

    #[test]
    fn ms64_sequential_keys_spread() {
        let mut rng = StdRng::seed_from_u64(29);
        let h = MultiplyShift64Family::new_pow2(4).sample(&mut rng);
        let mut buckets = [0u32; 16];
        for x in 0..16_000u64 {
            buckets[h.hash(x) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!((500..=1500).contains(&c), "bucket {i} count {c}");
        }
    }
}
