//! Universal hash families (Definition 2 of the paper).
//!
//! The paper needs, for Lemma 2 and for both heavy-hitter algorithms, a
//! *universal family* `H = {h : A → B}` with
//! `Pr_{h∈H}[h(a)=h(b)] ≤ 1/|B|` for all `a ≠ b`, such that drawing and
//! storing `h` costs `O(log |A|)` bits. This crate provides four
//! interchangeable constructions:
//!
//! * [`CarterWegmanFamily`] — `fastrange((a·x + b) mod p, r)` over the
//!   Mersenne prime `p = 2⁶¹ − 1`; pairwise independent, the textbook
//!   family the paper cites (\[LRSC01\]), with a division-free Lemire
//!   range reduction.
//! * [`MultiplyShiftFamily`] — Dietzfelbinger's multiply-shift scheme for
//!   power-of-two ranges; 2-universal, fastest in practice, the natural
//!   choice in the unit-cost RAM model of §2.3 (\[DHKP97\] is by the same
//!   authors the paper cites for the model).
//! * [`PolynomialFamily`] — degree-(k−1) polynomials over `F_p`, giving
//!   k-wise independence for the concentration arguments.
//! * [`TabulationFamily`] — simple tabulation; 3-independent, constant time,
//!   larger seed.
//!
//! All families implement [`HashFamily`]; the sampled functions implement
//! [`HashFunction`] plus [`hh_space::SpaceUsage`] so algorithms can charge
//! their seed bits to the space accounting.
//!
//! # Example
//!
//! ```
//! use hh_hash::{CarterWegmanFamily, HashFamily, HashFunction};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let h = CarterWegmanFamily::new(128).sample(&mut rng);
//! assert!(h.hash(0xDEAD_BEEF) < 128);
//! // Deterministic once sampled:
//! assert_eq!(h.hash(42), h.hash(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod carter_wegman;
pub mod fast_map;
pub mod mersenne;
pub mod multiply_shift;
pub mod polynomial;
pub mod tabulation;

pub use carter_wegman::{CarterWegmanFamily, CarterWegmanHash};
pub use fast_map::{fast_map_with_capacity, FastMap, FxBuildHasher, FxU64Hasher};
pub use multiply_shift::{
    MultiplyShift64Family, MultiplyShift64Hash, MultiplyShiftFamily, MultiplyShiftHash,
};
pub use polynomial::{PolynomialFamily, PolynomialHash};
pub use tabulation::{TabulationFamily, TabulationHash};

use rand::Rng;

/// A sampled hash function from a universal family.
pub trait HashFunction {
    /// Evaluates the function. The result is in `[0, range)`.
    fn hash(&self, x: u64) -> u64;

    /// Size of the codomain `B`.
    fn range(&self) -> u64;
}

/// A distribution over hash functions (a hash family) from which functions
/// are drawn with fresh randomness.
pub trait HashFamily {
    /// Concrete function type produced by sampling.
    type Fun: HashFunction;

    /// Draws one function uniformly from the family.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Fun;

    /// Draws `k` independent functions (the "repetitions" both algorithms
    /// take medians over).
    fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<Self::Fun> {
        (0..k).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Empirical collision-rate check shared by the families: for random
    /// distinct pairs the measured collision rate must stay near `1/range`.
    fn collision_rate<F: HashFamily>(family: &F, range: u64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 400usize;
        let pairs = 200usize;
        let mut collisions = 0usize;
        let mut total = 0usize;
        for _ in 0..trials {
            let h = family.sample(&mut rng);
            assert_eq!(h.range(), range);
            for _ in 0..pairs {
                let a: u64 = rng.gen();
                let mut b: u64 = rng.gen();
                while b == a {
                    b = rng.gen();
                }
                total += 1;
                if h.hash(a) == h.hash(b) {
                    collisions += 1;
                }
            }
        }
        collisions as f64 / total as f64
    }

    #[test]
    fn all_families_are_universal_empirically() {
        let range = 64u64;
        let budget = 3.0 / range as f64; // generous slack over 1/range
        let cw = CarterWegmanFamily::new(range);
        let ms = MultiplyShiftFamily::new_pow2(6);
        let poly = PolynomialFamily::new(range, 4);
        let tab = TabulationFamily::new_pow2(6);
        assert!(collision_rate(&cw, range, 1) < budget);
        assert!(collision_rate(&ms, range, 2) < budget);
        assert!(collision_rate(&poly, range, 3) < budget);
        assert!(collision_rate(&tab, range, 4) < budget);
    }

    #[test]
    fn sample_many_draws_distinct_functions() {
        let mut rng = StdRng::seed_from_u64(7);
        let fam = CarterWegmanFamily::new(1024);
        let hs = fam.sample_many(&mut rng, 8);
        assert_eq!(hs.len(), 8);
        // Two independent draws almost surely differ on some input.
        let probe = 0xDEADBEEFu64;
        let outs: std::collections::HashSet<u64> = hs.iter().map(|h| h.hash(probe)).collect();
        assert!(outs.len() > 1, "eight draws should not all agree");
    }
}
