//! Network fault injection: a transport wrapper that misbehaves on a
//! deterministic schedule.
//!
//! [`FaultyConn`] wraps any `Read + Write` stream and injects the four
//! transport-level faults a hardened daemon must survive, each keyed to
//! a **cumulative byte offset** so a test names the exact failure point
//! and replays it forever:
//!
//! * **partial I/O** — [`FaultyConn::chunk`] caps every read/write at
//!   `n` bytes, so the peer sees the trickle that shakes out
//!   short-read/short-write bugs;
//! * **stalls** — [`FaultyConn::stall_at`] sleeps before the byte at a
//!   given offset goes out, long enough to trip (or probe) the peer's
//!   deadlines;
//! * **mid-frame disconnects** — [`FaultyConn::sever_at`] hard-closes
//!   the transport once the offset is reached, leaving the peer holding
//!   a truncated frame;
//! * **corruption** — [`FaultyConn::corrupt_at`] XORs the byte at an
//!   offset as it passes, so a checksummed protocol must detect it.
//!
//! Like everything in this crate the schedule is pure state, no
//! randomness: the same plan against the same traffic produces the same
//! byte stream. Compose with [`crate::corrupt`] for payload-level
//! attacks (this module corrupts *in flight*, that one corrupts *at
//! rest*).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A transport that can be hard-closed from the fault schedule.
pub trait Sever {
    /// Closes both directions immediately (best-effort).
    fn sever(&mut self);
}

impl Sever for TcpStream {
    fn sever(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

impl Sever for UnixStream {
    fn sever(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// The deterministic fault schedule; see the module docs.
#[derive(Debug, Clone, Default)]
struct Plan {
    /// Max bytes per read/write call.
    chunk: Option<usize>,
    /// `(write offset, pause)` pairs: sleep before that byte goes out.
    stalls: Vec<(usize, Duration)>,
    /// Hard-close once this many bytes have been written.
    sever_at: Option<usize>,
    /// `(write offset, xor mask)` pairs applied in flight.
    corruptions: Vec<(usize, u8)>,
}

/// A `Read + Write + Sever` transport wrapped in a fault schedule.
#[derive(Debug)]
pub struct FaultyConn<S> {
    inner: S,
    plan: Plan,
    /// Cumulative bytes written (the offset the schedule keys on).
    written: usize,
    severed: bool,
}

impl<S> FaultyConn<S> {
    /// Wraps `inner` with an empty (fault-free) schedule.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            plan: Plan::default(),
            written: 0,
            severed: false,
        }
    }

    /// Caps every read and write call at `n` bytes.
    #[must_use]
    pub fn chunk(mut self, n: usize) -> Self {
        assert!(n >= 1, "a zero-byte chunk would stall forever");
        self.plan.chunk = Some(n);
        self
    }

    /// Sleeps `pause` immediately before the byte at write-offset
    /// `offset` is sent.
    #[must_use]
    pub fn stall_at(mut self, offset: usize, pause: Duration) -> Self {
        self.plan.stalls.push((offset, pause));
        self
    }

    /// Hard-closes the transport once `offset` bytes have been written;
    /// further writes fail with `BrokenPipe`.
    #[must_use]
    pub fn sever_at(mut self, offset: usize) -> Self {
        self.plan.sever_at = Some(offset);
        self
    }

    /// XORs the byte at write-offset `offset` with `mask` in flight.
    #[must_use]
    pub fn corrupt_at(mut self, offset: usize, mask: u8) -> Self {
        self.plan.corruptions.push((offset, mask));
        self
    }

    /// Total bytes written through the wrapper so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyConn<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let cap = self.plan.chunk.unwrap_or(buf.len()).min(buf.len());
        if cap == 0 {
            return Ok(0);
        }
        self.inner.read(&mut buf[..cap])
    }
}

impl<S: Write + Sever> Write for FaultyConn<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.severed {
            return Err(std::io::ErrorKind::BrokenPipe.into());
        }
        if let Some(at) = self.plan.sever_at {
            if self.written >= at {
                self.inner.sever();
                self.severed = true;
                return Err(std::io::ErrorKind::BrokenPipe.into());
            }
        }
        for &(at, pause) in &self.plan.stalls {
            if self.written == at {
                std::thread::sleep(pause);
            }
        }
        // Bound this call so the next scheduled event lands exactly on
        // a call boundary (a stall or sever must not hide mid-chunk).
        let mut n = buf.len().min(self.plan.chunk.unwrap_or(buf.len()));
        if let Some(at) = self.plan.sever_at {
            n = n.min(at - self.written);
        }
        for &(at, _) in &self.plan.stalls {
            if at > self.written {
                n = n.min(at - self.written);
            }
        }
        let mut chunk = buf[..n].to_vec();
        for &(at, mask) in &self.plan.corruptions {
            if (self.written..self.written + n).contains(&at) {
                chunk[at - self.written] ^= mask;
            }
        }
        let sent = self.inner.write(&chunk)?;
        self.written += sent;
        Ok(sent)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A loopback pair plus a thread that drains the server side into a
    /// buffer, returned on join.
    fn sink_pair() -> (TcpStream, std::thread::JoinHandle<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let drain = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
            buf
        });
        (client, drain)
    }

    #[test]
    fn chunking_trickles_but_delivers_everything() {
        let (client, drain) = sink_pair();
        let mut conn = FaultyConn::new(client).chunk(1);
        let payload: Vec<u8> = (0..=255).collect();
        conn.write_all(&payload).unwrap();
        assert_eq!(conn.written(), payload.len());
        drop(conn);
        assert_eq!(drain.join().unwrap(), payload);
    }

    #[test]
    fn sever_cuts_exactly_at_the_offset() {
        let (client, drain) = sink_pair();
        let mut conn = FaultyConn::new(client).sever_at(5);
        let err = conn.write_all(&[9u8; 64]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(conn.written(), 5);
        drop(conn);
        assert_eq!(drain.join().unwrap(), vec![9u8; 5]);
    }

    #[test]
    fn corruption_flips_exactly_the_scheduled_byte() {
        let (client, drain) = sink_pair();
        let mut conn = FaultyConn::new(client).corrupt_at(3, 0xFF);
        conn.write_all(&[0u8; 8]).unwrap();
        drop(conn);
        let got = drain.join().unwrap();
        assert_eq!(got, vec![0, 0, 0, 0xFF, 0, 0, 0, 0]);
    }

    #[test]
    fn stall_pauses_before_the_scheduled_byte() {
        let (client, drain) = sink_pair();
        let pause = Duration::from_millis(60);
        let mut conn = FaultyConn::new(client).stall_at(4, pause);
        let t0 = std::time::Instant::now();
        conn.write_all(&[1u8; 8]).unwrap();
        assert!(t0.elapsed() >= pause, "stall did not happen");
        drop(conn);
        assert_eq!(drain.join().unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn schedules_compose_deterministically() {
        let (client, drain) = sink_pair();
        let mut conn = FaultyConn::new(client)
            .chunk(3)
            .corrupt_at(2, 0x01)
            .sever_at(7);
        let err = conn.write_all(&[0u8; 32]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        drop(conn);
        assert_eq!(drain.join().unwrap(), vec![0, 0, 1, 0, 0, 0, 0]);
    }
}
