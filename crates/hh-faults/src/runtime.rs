//! Runtime fault hooks: a summary wrapper whose ingestion can be made
//! to panic or stall on command.
//!
//! [`FaultySummary`] wraps any summary and threads every insert through
//! an [`FaultSwitch`] shared with the test: arm a panic countdown and
//! the wrapper panics mid-batch after that many more items (the
//! shard-runtime quarantine path); set a stall and every batch sleeps
//! first (the slow-consumer / flush-timeout path). The switch is plain
//! atomics behind an [`Arc`], so tests flip faults while worker threads
//! are live, with no locks that could mask the race being tested.
//!
//! The wrapper forwards `MergeableSummary` verbatim — snapshots carry
//! the *inner* summary's bytes and tag — so a shard checkpointed while
//! faulty restores as a clean summary: exactly the "recover rebuilds
//! the worker from its last checkpoint" contract under test.

use hh_core::{
    FrequencyEstimator, HeavyHitters, MergeError, MergeableSummary, Report, RestoreReport,
    SnapshotError, StreamSummary,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Countdown value meaning "no panic armed".
const DISARMED: u64 = u64::MAX;

/// Shared fault controls for one or more [`FaultySummary`] instances.
#[derive(Debug)]
pub struct FaultSwitch {
    /// Items remaining before an injected panic; [`DISARMED`] when off.
    panic_in: AtomicU64,
    /// Injected sleep per `insert_batch` call, in microseconds.
    stall_micros: AtomicU64,
}

impl FaultSwitch {
    /// A switch with every fault disarmed.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            panic_in: AtomicU64::new(DISARMED),
            stall_micros: AtomicU64::new(0),
        })
    }

    /// Arms an injected panic after `n` more inserted items (across all
    /// summaries sharing this switch).
    pub fn arm_panic_after(&self, n: u64) {
        self.panic_in.store(n, Ordering::SeqCst);
    }

    /// Disarms a pending injected panic.
    pub fn disarm_panic(&self) {
        self.panic_in.store(DISARMED, Ordering::SeqCst);
    }

    /// Makes every subsequent `insert_batch` sleep for `d` first — a
    /// deterministic stand-in for a slow or wedged consumer.
    pub fn stall_for(&self, d: Duration) {
        self.stall_micros.store(
            d.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::SeqCst,
        );
    }

    /// Clears the injected stall.
    pub fn clear_stall(&self) {
        self.stall_micros.store(0, Ordering::SeqCst);
    }

    /// Burns `n` items off the panic countdown; panics when it crosses
    /// zero. Called by the wrapper on every ingestion path.
    fn spend(&self, n: u64) {
        let before = self.panic_in.load(Ordering::SeqCst);
        if before == DISARMED {
            return;
        }
        if before <= n {
            self.panic_in.store(DISARMED, Ordering::SeqCst);
            panic!("injected fault: summary panicked mid-ingest");
        }
        self.panic_in.store(before - n, Ordering::SeqCst);
    }

    /// Applies the injected stall, if any.
    fn stall(&self) {
        let micros = self.stall_micros.load(Ordering::SeqCst);
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
    }
}

/// A summary wrapper that injects the faults armed on its
/// [`FaultSwitch`] into every ingestion call, and forwards everything
/// else to the wrapped summary.
#[derive(Debug, Clone)]
pub struct FaultySummary<S> {
    inner: S,
    switch: Arc<FaultSwitch>,
}

impl<S> FaultySummary<S> {
    /// Wraps `inner`, controlled by `switch`.
    pub fn new(inner: S, switch: Arc<FaultSwitch>) -> Self {
        Self { inner, switch }
    }

    /// The wrapped summary.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps back to the inner summary.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StreamSummary> StreamSummary for FaultySummary<S> {
    fn insert(&mut self, item: u64) {
        self.switch.spend(1);
        self.inner.insert(item);
    }

    fn insert_batch(&mut self, items: &[u64]) {
        self.switch.stall();
        self.switch.spend(items.len() as u64);
        self.inner.insert_batch(items);
    }
}

impl<S: HeavyHitters> HeavyHitters for FaultySummary<S> {
    fn report(&self) -> Report {
        self.inner.report()
    }
}

impl<S: FrequencyEstimator> FrequencyEstimator for FaultySummary<S> {
    fn estimate(&self, item: u64) -> f64 {
        self.inner.estimate(item)
    }
}

impl<S: MergeableSummary> MergeableSummary for FaultySummary<S> {
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.inner.merge_from(&other.inner)
    }

    /// The inner summary's bytes, verbatim — a faulty wrapper
    /// checkpoints (and restores) as its clean payload.
    fn to_bytes(&self) -> bytes::Bytes {
        self.inner.to_bytes()
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        let (inner, report) = S::from_bytes_report(bytes)?;
        Ok((Self::new(inner, FaultSwitch::new()), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::MisraGries;

    #[test]
    fn panic_countdown_fires_exactly_once() {
        let switch = FaultSwitch::new();
        switch.arm_panic_after(5);
        let mut s = FaultySummary::new(MisraGries::new(4, 16), Arc::clone(&switch));
        for i in 0..4 {
            s.insert(i);
        }
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.insert(9)));
        assert!(boom.is_err(), "fifth item crosses the countdown");
        // The switch disarms itself when it fires.
        s.insert(1);
        assert_eq!(s.inner().processed(), 5);
    }

    #[test]
    fn disarmed_switch_is_transparent() {
        let switch = FaultSwitch::new();
        let mut s = FaultySummary::new(MisraGries::new(4, 16), switch);
        s.insert_batch(&[1, 2, 3, 1]);
        assert_eq!(s.inner().processed(), 4);
    }

    #[test]
    fn snapshots_carry_the_clean_inner_summary() {
        let switch = FaultSwitch::new();
        let mut s = FaultySummary::new(MisraGries::new(4, 16), switch);
        s.insert_batch(&[1, 1, 2]);
        let bytes = s.to_bytes();
        let (back, report) = FaultySummary::<MisraGries>::from_bytes_report(&bytes).unwrap();
        assert!(report.checksum_verified);
        assert_eq!(back.inner().processed(), 3);
        // And the bytes are interchangeable with the bare summary's.
        let bare = MisraGries::from_bytes(&bytes).unwrap();
        assert_eq!(bare.processed(), 3);
    }
}
