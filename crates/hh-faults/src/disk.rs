//! Disk fault injection: a file wrapper that loses power on a
//! deterministic schedule.
//!
//! [`FaultyFile`] wraps a [`std::fs::File`] opened for append and
//! injects the storage-level faults a durable log must survive, each
//! keyed to a **cumulative byte offset** (mirroring
//! [`crate::net::FaultyConn`]) so a test names the exact failure point
//! and replays it forever:
//!
//! * **partial writes** — [`FaultyFile::chunk`] caps every write call
//!   at `n` bytes, exposing short-write handling;
//! * **kill mid-write** — [`FaultyFile::kill_after`] fails every write
//!   once the offset is reached, leaving a torn tail exactly there;
//! * **bit rot** — [`FaultyFile::flip_at`] XORs the byte at an offset
//!   as it lands, so checksummed records must catch it;
//! * **lying fsync** — [`FaultyFile::drop_syncs`] makes
//!   [`FaultyFile::sync`] report success without making anything
//!   durable, the classic misbehaving-disk scenario.
//!
//! The wrapper tracks two watermarks: [`FaultyFile::written`] (bytes
//! the process handed to the OS) and [`FaultyFile::durable`] (bytes an
//! honored sync has committed). [`FaultyFile::power_cut`] is the
//! oracle's guillotine: it truncates the file back to the durable
//! watermark, producing exactly the byte prefix a real power loss
//! guarantees — everything fsynced, nothing after. Tests append, cut,
//! and then assert replay equals the durable prefix.
//!
//! Like everything in this crate the schedule is pure state, no
//! randomness: the same plan over the same appends produces the same
//! file bytes.

use std::fs::File;
use std::io::Write;

/// The deterministic fault schedule; see the module docs.
#[derive(Debug, Clone, Default)]
struct Plan {
    /// Max bytes per write call.
    chunk: Option<usize>,
    /// Fail every write once this many bytes have been written.
    kill_after: Option<usize>,
    /// `(write offset, xor mask)` pairs applied as bytes land.
    flips: Vec<(usize, u8)>,
    /// Report sync success without committing anything.
    drop_syncs: bool,
}

/// An append-mode file wrapped in a power-loss fault schedule.
#[derive(Debug)]
pub struct FaultyFile {
    inner: File,
    plan: Plan,
    /// File length when wrapped; faults key on offsets past this.
    base_len: u64,
    /// Cumulative bytes written through the wrapper.
    written: usize,
    /// Bytes of `written` covered by an honored sync.
    durable: usize,
    killed: bool,
}

impl FaultyFile {
    /// Wraps `inner` (opened for append) with an empty schedule.
    /// Everything already in the file counts as durable.
    ///
    /// # Errors
    /// If the file's current length cannot be read.
    pub fn new(inner: File) -> std::io::Result<Self> {
        let base_len = inner.metadata()?.len();
        Ok(Self {
            inner,
            plan: Plan::default(),
            base_len,
            written: 0,
            durable: 0,
            killed: false,
        })
    }

    /// Caps every write call at `n` bytes.
    #[must_use]
    pub fn chunk(mut self, n: usize) -> Self {
        assert!(n >= 1, "a zero-byte chunk would stall forever");
        self.plan.chunk = Some(n);
        self
    }

    /// Fails every write once `offset` bytes have been written — the
    /// process dies mid-append with a torn tail exactly there.
    #[must_use]
    pub fn kill_after(mut self, offset: usize) -> Self {
        self.plan.kill_after = Some(offset);
        self
    }

    /// XORs the byte at write-offset `offset` with `mask` as it lands
    /// on disk.
    #[must_use]
    pub fn flip_at(mut self, offset: usize, mask: u8) -> Self {
        self.plan.flips.push((offset, mask));
        self
    }

    /// Makes [`FaultyFile::sync`] report success without committing —
    /// the durable watermark stops advancing.
    #[must_use]
    pub fn drop_syncs(mut self) -> Self {
        self.plan.drop_syncs = true;
        self
    }

    /// Bytes written through the wrapper so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Bytes of [`FaultyFile::written`] an honored sync has committed —
    /// what survives [`FaultyFile::power_cut`].
    pub fn durable(&self) -> usize {
        self.durable
    }

    /// The wrapped file.
    pub fn get_ref(&self) -> &File {
        &self.inner
    }

    /// Fsyncs the file and advances the durable watermark — unless the
    /// schedule says the disk lies ([`FaultyFile::drop_syncs`]), in
    /// which case this succeeds and commits nothing.
    ///
    /// # Errors
    /// If the honored fsync fails.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.plan.drop_syncs {
            return Ok(());
        }
        self.inner.sync_data()?;
        self.durable = self.written;
        Ok(())
    }

    /// Simulates power loss: truncates the file to the durable
    /// watermark (base content plus every honored-synced byte) and
    /// returns the surviving length. What a scan of the file finds
    /// afterwards is exactly what a real crash would leave.
    ///
    /// # Errors
    /// If the truncation fails.
    pub fn power_cut(self) -> std::io::Result<u64> {
        let survives = self.base_len + self.durable as u64;
        self.inner.set_len(survives)?;
        self.inner.sync_data()?;
        Ok(survives)
    }
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.killed {
            return Err(std::io::ErrorKind::Other.into());
        }
        if let Some(at) = self.plan.kill_after {
            if self.written >= at {
                self.killed = true;
                return Err(std::io::ErrorKind::Other.into());
            }
        }
        // Bound this call so the kill lands exactly on a call boundary
        // (a partial write up to the kill offset, then the failure).
        let mut n = buf.len().min(self.plan.chunk.unwrap_or(buf.len()));
        if let Some(at) = self.plan.kill_after {
            n = n.min(at - self.written);
        }
        let mut chunk = buf[..n].to_vec();
        for &(at, mask) in &self.plan.flips {
            if (self.written..self.written + n).contains(&at) {
                chunk[at - self.written] ^= mask;
            }
        }
        let sent = self.inner.write(&chunk)?;
        self.written += sent;
        Ok(sent)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> (File, PathBuf) {
        let path =
            std::env::temp_dir().join(format!("hh-faults-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let f = std::fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .unwrap();
        (f, path)
    }

    #[test]
    fn unsynced_bytes_vanish_at_the_power_cut() {
        let (f, path) = scratch("unsynced");
        let mut file = FaultyFile::new(f).unwrap();
        file.write_all(b"durable").unwrap();
        file.sync().unwrap();
        file.write_all(b" and lost").unwrap();
        assert_eq!(file.written(), 16);
        assert_eq!(file.durable(), 7);
        let survives = file.power_cut().unwrap();
        assert_eq!(survives, 7);
        assert_eq!(std::fs::read(&path).unwrap(), b"durable");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_tears_exactly_at_the_offset() {
        let (f, path) = scratch("kill");
        let mut file = FaultyFile::new(f).unwrap().kill_after(5);
        let err = file.write_all(&[7u8; 64]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Other);
        assert_eq!(file.written(), 5);
        assert_eq!(std::fs::read(&path).unwrap(), vec![7u8; 5]);
        // The kill latches: later writes keep failing.
        assert!(file.write_all(b"again").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flips_land_on_exactly_the_scheduled_byte() {
        let (f, path) = scratch("flip");
        let mut file = FaultyFile::new(f).unwrap().chunk(3).flip_at(4, 0xFF);
        file.write_all(&[0u8; 8]).unwrap();
        file.sync().unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            vec![0, 0, 0, 0, 0xFF, 0, 0, 0]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_lying_disk_commits_nothing() {
        let (f, path) = scratch("liar");
        let mut file = FaultyFile::new(f).unwrap().drop_syncs();
        file.write_all(b"acked but gone").unwrap();
        file.sync().unwrap();
        assert_eq!(file.durable(), 0);
        let survives = file.power_cut().unwrap();
        assert_eq!(survives, 0);
        assert!(std::fs::read(&path).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn preexisting_content_is_always_durable() {
        let (f, path) = scratch("base");
        drop(f);
        std::fs::write(&path, b"seeded").unwrap();
        let f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        let mut file = FaultyFile::new(f).unwrap();
        file.write_all(b" + tail").unwrap();
        let survives = file.power_cut().unwrap();
        assert_eq!(survives, 6);
        assert_eq!(std::fs::read(&path).unwrap(), b"seeded");
        let _ = std::fs::remove_file(&path);
    }
}
