//! Deterministic fault injection for the workspace's robustness suites.
//!
//! Three failure surfaces, three modules:
//!
//! * [`corrupt`] — byte-level snapshot corruptors (truncation at every
//!   offset, single-bit flips, length-prefix inflation, tag swaps) for
//!   driving every `from_bytes` implementation through adversarial
//!   input. Everything is deterministic — the same call always produces
//!   the same corrupted buffers — so a failing case replays from its
//!   test name alone, with no seed archaeology.
//! * [`runtime`] — fault hooks for the shard runtime: a summary wrapper
//!   that panics mid-ingest after an armed countdown, stalls to
//!   simulate a slow worker, and hands out its switch so tests flip
//!   faults on and off while the runtime is live.
//! * [`net`] — transport faults for the serving daemon: a `Read+Write`
//!   wrapper that trickles partial I/O, stalls past deadlines, severs
//!   the connection mid-frame, and corrupts bytes in flight, all keyed
//!   to exact byte offsets so every failure point replays.
//! * [`disk`] — power-loss faults for the write-ahead log: an
//!   append-file wrapper that tracks a durable (fsynced) watermark,
//!   tears writes at exact offsets, rots committed bytes, lies about
//!   fsync, and can cut power — truncating to exactly what a real
//!   crash would leave.
//!
//! The crate is a *testkit*: it lives below `tests/` and `benches/` in
//! the dependency graph on purpose, so integration suites and benches
//! share one vocabulary of faults instead of re-rolling ad-hoc
//! corruption loops.

pub mod corrupt;
pub mod disk;
pub mod net;
pub mod runtime;

pub use corrupt::{bit_flips, flip_bit, inflate_length_prefixes, swap_tag, truncations};
pub use disk::FaultyFile;
pub use net::{FaultyConn, Sever};
pub use runtime::{FaultSwitch, FaultySummary};
