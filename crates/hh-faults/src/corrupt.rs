//! Byte-level snapshot corruptors.
//!
//! Every generator is pure and deterministic: corrupted buffers are a
//! function of the input bytes (and, for the sampled flips, an explicit
//! seed), so a failing property-test case reproduces exactly. The
//! corruptions mirror the decoder's threat model one-for-one:
//!
//! | generator                    | what it attacks                      |
//! |------------------------------|--------------------------------------|
//! | [`truncations`]              | every "ran out of bytes" code path   |
//! | [`flip_bit`] / [`bit_flips`] | checksum coverage, field validation  |
//! | [`inflate_length_prefixes`]  | pre-allocation from untrusted lengths|
//! | [`swap_tag`]                 | type confusion between summaries     |

/// Every strict prefix of `buf`, shortest first — one buffer per
/// possible truncation point, including the empty buffer.
///
/// Feeding each to `from_bytes` exercises every early-EOF branch a
/// decoder has; the contract is a structured `Err` at every length.
pub fn truncations(buf: &[u8]) -> impl Iterator<Item = &[u8]> + '_ {
    (0..buf.len()).map(move |end| &buf[..end])
}

/// `buf` with bit `bit` (counting from the LSB of byte 0) inverted.
///
/// # Panics
/// If `bit >= 8 * buf.len()`.
pub fn flip_bit(buf: &[u8], bit: usize) -> Vec<u8> {
    assert!(bit < buf.len() * 8, "bit index out of range");
    let mut out = buf.to_vec();
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

/// `n` single-bit-flip corruptions of `buf` at deterministic
/// pseudo-random positions derived from `seed` (splitmix64, so the
/// positions are stable across platforms and runs). Duplicates are
/// possible by design — the point is coverage volume, not a perfect
/// design; pair with an exhaustive [`flip_bit`] sweep on small buffers.
pub fn bit_flips(buf: &[u8], seed: u64, n: usize) -> Vec<Vec<u8>> {
    let bits = buf.len() * 8;
    if bits == 0 {
        return Vec::new();
    }
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            flip_bit(buf, (z % bits as u64) as usize)
        })
        .collect()
}

/// Values stamped over candidate length prefixes by
/// [`inflate_length_prefixes`]: just past the buffer, a mid-range lie,
/// and the absolute worst case.
const INFLATIONS: [u64; 3] = [0, u64::MAX / 2, u64::MAX];

/// Corruptions that inflate plausible length prefixes.
///
/// The wire format writes lengths as little-endian `u64`s, so any
/// 8-byte window whose value is at most the buffer length *could* be a
/// length prefix. For each such window this stamps in adversarial
/// values — `buf.len() + 1` (off-by-just-one), `u64::MAX / 2`, and
/// `u64::MAX` — producing buffers that claim far more payload than
/// they carry. A hardened decoder must reject each one *before*
/// allocating; an unhardened one aborts the process trying to reserve
/// exabytes, which is exactly the regression this generator pins.
pub fn inflate_length_prefixes(buf: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for offset in 0..buf.len().saturating_sub(7) {
        let window: [u8; 8] = buf[offset..offset + 8].try_into().expect("8-byte window");
        if u64::from_le_bytes(window) > buf.len() as u64 {
            continue; // not a plausible length prefix
        }
        for &v in &INFLATIONS {
            let lie = if v == 0 { buf.len() as u64 + 1 } else { v };
            let mut bad = buf.to_vec();
            bad[offset..offset + 8].copy_from_slice(&lie.to_le_bytes());
            out.push(bad);
        }
    }
    out
}

/// Replaces the leading length-prefixed `old_tag` with `new_tag`
/// (keeping the payload bytes), or `None` if `buf` does not start with
/// `old_tag`'s encoding. The result impersonates another summary type
/// or format version; decoders must answer `WrongTag` (or a checksum
/// failure), never misinterpret the payload.
pub fn swap_tag(buf: &[u8], old_tag: &str, new_tag: &str) -> Option<Vec<u8>> {
    let prefix = buf.get(..8)?;
    let len = u64::from_le_bytes(prefix.try_into().expect("8-byte slice"));
    if len != old_tag.len() as u64 || !buf[8..].starts_with(old_tag.as_bytes()) {
        return None;
    }
    let mut out = Vec::with_capacity(buf.len() - old_tag.len() + new_tag.len());
    out.extend_from_slice(&(new_tag.len() as u64).to_le_bytes());
    out.extend_from_slice(new_tag.as_bytes());
    out.extend_from_slice(&buf[8 + old_tag.len()..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncations_cover_every_prefix() {
        let buf = [1u8, 2, 3, 4];
        let all: Vec<&[u8]> = truncations(&buf).collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], &[] as &[u8]);
        assert_eq!(all[3], &[1, 2, 3]);
    }

    #[test]
    fn flip_bit_inverts_exactly_one_bit() {
        let buf = [0u8; 3];
        for bit in 0..24 {
            let bad = flip_bit(&buf, bit);
            let ones: u32 = bad.iter().map(|b| b.count_ones()).sum();
            assert_eq!(ones, 1, "bit {bit}");
        }
    }

    #[test]
    fn bit_flips_are_deterministic() {
        let buf = [0xABu8; 16];
        assert_eq!(bit_flips(&buf, 7, 10), bit_flips(&buf, 7, 10));
        assert_eq!(bit_flips(&buf, 7, 10).len(), 10);
        // Every output differs from the input in exactly one bit.
        for bad in bit_flips(&buf, 7, 10) {
            let diff: u32 = bad
                .iter()
                .zip(&buf)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn inflation_targets_only_plausible_prefixes() {
        // A buffer starting with a tiny length prefix, then big values.
        let mut buf = 3u64.to_le_bytes().to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let bad = inflate_length_prefixes(&buf);
        assert!(!bad.is_empty());
        // Every corruption stamps a value that exceeds the buffer.
        for b in &bad {
            assert_eq!(b.len(), buf.len());
            assert_ne!(b, &buf);
        }
    }

    #[test]
    fn tag_swap_round_trips_shape() {
        let mut buf = 7u64.to_le_bytes().to_vec();
        buf.extend_from_slice(b"hh.a.v1");
        buf.extend_from_slice(b"PAYLOAD");
        let swapped = swap_tag(&buf, "hh.a.v1", "hh.b.v2").unwrap();
        assert!(swapped[8..].starts_with(b"hh.b.v2"));
        assert!(swapped.ends_with(b"PAYLOAD"));
        assert!(swap_tag(&buf, "hh.c.v1", "hh.b.v2").is_none());
    }
}
