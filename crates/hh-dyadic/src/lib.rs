//! Dyadic hierarchical heavy hitters: range and prefix queries.
//!
//! The paper's (ε, φ)-guarantee is point-wise, but the classic
//! network-telemetry question is hierarchical: *which IP prefixes are
//! elephants?* The standard route (Cormode–Muthukrishnan, and the
//! practical counterpart of Li–Nakos's sublinear-query goal — see
//! DESIGN.md §13) is a bank of L = ⌈log₂ n⌉ point summaries, one per
//! **dyadic level**: level k summarizes the stream projected onto its
//! k-bit prefixes, so level-k item `i` *is* the dyadic interval
//! `[i·2^(L−k), (i+1)·2^(L−k))`. Every stream item updates its one
//! ancestor per level; every query decomposes into level nodes:
//!
//! * [`DyadicHh::heavy_ranges`] walks the tree top-down, visiting only
//!   children of heavy parents (interval mass is monotone under
//!   containment, so a heavy node's ancestors are all heavy — the
//!   descent prunes to `O(φ⁻¹ log n)` nodes instead of scanning `n`).
//! * [`DyadicHh::range_estimate`] writes any interval `[lo, hi]` as at
//!   most 2 **canonical** dyadic nodes per level (the classic
//!   decomposition), summing ≤ 2L point estimates.
//!
//! The bank is generic over any [`MergeableSummary`] point sketch and
//! inherits the full workspace contract: level-wise [`merge_from`]
//! (seed-aligned banks merge repetition-wise, exactly like a single
//! summary), a tagged `hh.dyadic.v1` snapshot with the v3 checksum
//! trailer and fail-closed bounded decoding, [`SpaceUsage`], and cached
//! queries — each level summary keeps its own [`QueryCache`]d report,
//! and the bank caches the descent at the configured φ, so repeated
//! queries over a warm bank cost a clone.
//!
//! [`merge_from`]: MergeableSummary::merge_from
//!
//! # Example
//!
//! ```
//! use hh_core::StreamSummary;
//! use hh_dyadic::DyadicHh;
//!
//! // 16-bit key space; report prefixes above 20% of the stream.
//! let mut bank = DyadicHh::count_min(0.05, 0.2, 0.01, 1 << 16, 42).unwrap();
//! for i in 0..100_000u64 {
//!     // Half the stream lands in the 256-wide block [0xAB00, 0xABFF].
//!     bank.insert(if i % 2 == 0 { 0xAB00 + (i % 256) } else { i % (1 << 16) });
//! }
//! // The /8 block is heavy at its level ...
//! assert!(bank
//!     .heavy_ranges(0.2)
//!     .iter()
//!     .any(|r| r.lo == 0xAB00 && r.hi == 0xABFF));
//! // ... and range queries see its mass without enumerating points.
//! let est = bank.range_estimate(0xAB00, 0xABFF);
//! assert!((est - 50_000.0).abs() < 5_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::Bytes;
use hh_baselines::CountMin;
use hh_core::mergeable::snapshot;
use hh_core::{
    FrequencyEstimator, HeavyHitters, HhParams, ItemEstimate, MergeError, MergeableSummary,
    OptimalListHh, ParamError, QueryCache, Report, RestoreReport, SnapshotError, StreamSummary,
};
use hh_space::{gamma_bits, SpaceUsage};

/// Snapshot tag for [`DyadicHh`] banks (any level-summary type: the
/// level buffers carry their own tags, so a bank of Count-Mins and a
/// bank of Algorithm-2 summaries cannot be confused).
pub const TAG: &str = "hh.dyadic.v1";

/// SplitMix64 finalizer: decorrelates the per-level seeds derived from
/// one bank seed (same convention as the hh-pipeline presets).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn check_compatible<T: PartialEq>(a: &T, b: &T, what: &'static str) -> Result<(), MergeError> {
    if a == b {
        Ok(())
    } else {
        Err(MergeError::Incompatible(what))
    }
}

/// One heavy dyadic interval, as reported by [`DyadicHh::heavy_ranges`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyRange {
    /// Dyadic level (1 ..= key_bits); level k nodes are k-bit prefixes.
    pub level: u32,
    /// The node's index at its level (the prefix value).
    pub index: u64,
    /// First point of the interval (inclusive).
    pub lo: u64,
    /// Last point of the interval (inclusive).
    pub hi: u64,
    /// Estimated interval mass, in stream counts.
    pub count: f64,
}

impl HeavyRange {
    /// Number of points the interval covers (saturating at `u64::MAX`
    /// for the 2⁶⁴-wide root-level nodes).
    pub fn span(&self) -> u64 {
        (self.hi - self.lo).saturating_add(1)
    }
}

/// A bank of L = key_bits mergeable level summaries answering heavy
/// dyadic range and prefix queries; see the crate docs for the scheme.
///
/// `S` is the point sketch used at every level. The
/// [`DyadicHh::count_min`] and [`DyadicHh::optimal`] presets cover the
/// two workspace families; [`DyadicHh::with_level_builder`] accepts any
/// other [`MergeableSummary`].
#[derive(Debug, Clone)]
pub struct DyadicHh<S> {
    /// `levels[k-1]` summarizes level k: the stream's k-bit prefixes.
    levels: Vec<S>,
    /// L: number of levels, `hh_space::id_bits(universe)`.
    key_bits: u32,
    /// Size of the point universe (items are `0 .. universe`).
    universe: u64,
    /// Additive-error fraction the bank was built for.
    eps: f64,
    /// Heaviness threshold the bank was built for.
    phi: f64,
    /// Stream items processed (the mass of the virtual root).
    processed: u64,
    /// Reused shift buffer for batch ingestion (not part of the state:
    /// never serialized, never compared).
    scratch: Vec<u64>,
    /// Cached descent at the configured φ; invalidated on every
    /// mutation, like the per-summary report caches.
    cache: QueryCache<Vec<HeavyRange>>,
}

impl<S> DyadicHh<S> {
    /// Builds a bank from a per-level constructor: `build(k, u_k)` must
    /// return the level-k summary, where `u_k = min(2^k, 2^64 − 1)` is
    /// that level's universe. The builder is called for k = 1 ..= L
    /// with L = `hh_space::id_bits(universe)`.
    ///
    /// # Errors
    /// [`ParamError`] if `(eps, phi)` is not a valid heavy-hitter
    /// configuration, the universe is empty, or `build` rejects a level.
    pub fn with_level_builder(
        eps: f64,
        phi: f64,
        universe: u64,
        mut build: impl FnMut(u32, u64) -> Result<S, ParamError>,
    ) -> Result<Self, ParamError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(ParamError::EpsOutOfRange(eps));
        }
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(ParamError::PhiOutOfRange(phi));
        }
        if eps >= phi {
            return Err(ParamError::EpsNotBelowPhi { eps, phi });
        }
        if universe == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        let key_bits = hh_space::id_bits(universe) as u32;
        let levels = (1..=key_bits)
            .map(|k| build(k, Self::level_universe(k)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            levels,
            key_bits,
            universe,
            eps,
            phi,
            processed: 0,
            scratch: Vec::new(),
            cache: QueryCache::new(),
        })
    }

    /// The universe of level k: `2^k`, saturated for k = 64.
    fn level_universe(k: u32) -> u64 {
        if k >= 64 {
            u64::MAX
        } else {
            1u64 << k
        }
    }

    /// Number of dyadic levels L (= bits per key).
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// The point universe the bank was built for.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The configured additive-error fraction ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The configured heaviness threshold φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Stream items processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The level summaries, coarsest (1-bit prefixes) first.
    pub fn levels(&self) -> &[S] {
        &self.levels
    }
}

impl DyadicHh<CountMin> {
    /// The Count-Min preset: one sketch per level, calibrated so the
    /// **bank-level** guarantees come out at the requested `(eps, phi,
    /// delta)` — per-level error is `eps / (2L)` (a range decomposition
    /// sums ≤ 2L one-sided node errors) and per-level failure is
    /// `delta / L` (union bound over the descent).
    ///
    /// All structure lives in the seed: banks built with the same
    /// `(eps, phi, delta, universe, seed)` are merge-compatible.
    ///
    /// # Errors
    /// [`ParamError`] on an invalid configuration.
    pub fn count_min(
        eps: f64,
        phi: f64,
        delta: f64,
        universe: u64,
        seed: u64,
    ) -> Result<Self, ParamError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ParamError::DeltaOutOfRange(delta));
        }
        let levels = hh_space::id_bits(universe.max(1)) as f64;
        let eps_level = eps / (2.0 * levels);
        let delta_level = delta / levels;
        Self::with_level_builder(eps, phi, universe, |k, u_k| {
            Ok(CountMin::new(
                eps_level,
                phi,
                delta_level,
                u_k,
                mix64(seed ^ k as u64),
            ))
        })
    }
}

impl DyadicHh<OptimalListHh> {
    /// The Algorithm-2 preset: one `OptimalListHh` per level, with the
    /// bank's structure seed split per level (so same-`structure_seed`
    /// banks merge repetition-wise at every level) and the stream seed
    /// split per level on top of the caller's per-shard value.
    ///
    /// `m` is the advertised total stream length, as for the point
    /// summary. The per-query failure bound is `L·delta` by union over
    /// the levels a descent touches.
    ///
    /// # Errors
    /// [`ParamError`] on an invalid configuration.
    pub fn optimal(
        params: HhParams,
        universe: u64,
        m: u64,
        structure_seed: u64,
        stream_seed: u64,
    ) -> Result<Self, ParamError> {
        Self::with_level_builder(params.eps(), params.phi(), universe, |k, u_k| {
            OptimalListHh::with_seeds(
                params,
                u_k,
                m,
                mix64(structure_seed ^ k as u64),
                mix64(stream_seed ^ k as u64),
            )
        })
    }
}

/// `parts` merge-compatible Count-Min banks: identical structure (the
/// sketch is deterministic given the seed), ready for
/// [`hh_pipeline::partition_and_merge`].
///
/// # Errors
/// [`ParamError`] on an invalid configuration.
pub fn seed_aligned_count_min(
    eps: f64,
    phi: f64,
    delta: f64,
    universe: u64,
    parts: usize,
    seed: u64,
) -> Result<Vec<DyadicHh<CountMin>>, ParamError> {
    (0..parts)
        .map(|_| DyadicHh::count_min(eps, phi, delta, universe, seed))
        .collect()
}

/// `parts` merge-compatible Algorithm-2 banks: shared structure seed,
/// per-part stream seeds (the hh-pipeline seeding convention).
///
/// # Errors
/// [`ParamError`] on an invalid configuration.
pub fn seed_aligned_optimal(
    params: HhParams,
    universe: u64,
    m: u64,
    parts: usize,
    seed: u64,
) -> Result<Vec<DyadicHh<OptimalListHh>>, ParamError> {
    (0..parts)
        .map(|j| {
            DyadicHh::optimal(
                params,
                universe,
                m,
                mix64(seed),
                mix64(mix64(seed ^ 0x5EED).wrapping_add(j as u64)),
            )
        })
        .collect()
}

impl<S: StreamSummary> StreamSummary for DyadicHh<S> {
    fn insert(&mut self, item: u64) {
        let l = self.key_bits;
        for k in 1..=l {
            self.levels[(k - 1) as usize].insert(item >> (l - k));
        }
        self.processed += 1;
        self.cache.invalidate();
    }

    fn insert_batch(&mut self, items: &[u64]) {
        if items.is_empty() {
            return;
        }
        let l = self.key_bits;
        // Shift the whole batch once per level and hand it to that
        // level's batch kernel. Each level sees its projection in
        // stream order, so batch ingestion stays bit-identical to the
        // scalar loop (each level's RNG sees the same draw sequence).
        let mut scratch = std::mem::take(&mut self.scratch);
        for k in 1..l {
            let shift = l - k;
            scratch.clear();
            scratch.extend(items.iter().map(|&x| x >> shift));
            self.levels[(k - 1) as usize].insert_batch(&scratch);
        }
        self.levels[(l - 1) as usize].insert_batch(items);
        self.scratch = scratch;
        self.processed += items.len() as u64;
        self.cache.invalidate();
    }
}

impl<S: HeavyHitters> DyadicHh<S> {
    /// Every dyadic interval whose estimated mass is at least
    /// `phi · processed`, found by top-down descent: level k is read
    /// only under nodes whose level-(k−1) parent qualified, so a warm
    /// query touches `O(φ⁻¹ log n)` cached report entries.
    ///
    /// `phi` at or below the configured threshold returns each level's
    /// native (ε, φ)-report (every ≥ φ-heavy node present, nothing
    /// below φ − ε); a stricter `phi` additionally filters by the
    /// estimates. Results are level-major, then by index. Ancestors of
    /// a heavy node are heavy by containment, so the output is a
    /// downward-closed forest — callers wanting only the *maximal*
    /// intervals keep the entries whose parent `index >> 1` at
    /// `level − 1` is absent.
    pub fn heavy_ranges(&self, phi: f64) -> Vec<HeavyRange> {
        if phi.to_bits() == self.phi.to_bits() {
            return self.cache.get_or_build(|| self.descend(self.phi)).clone();
        }
        self.descend(phi)
    }

    fn descend(&self, phi: f64) -> Vec<HeavyRange> {
        let l = self.key_bits;
        let mass = self.processed as f64;
        // At the configured φ each level's report *is* the guarantee
        // set; only a stricter threshold needs an estimate filter
        // (re-thresholding at a laxer φ than configured cannot recover
        // items the summaries never tracked).
        let stricter = phi > self.phi;
        let mut out = Vec::new();
        // The virtual root (level 0, the whole universe) always holds
        // the full stream; its index 0 seeds the frontier.
        let mut frontier: Vec<u64> = vec![0];
        for k in 1..=l {
            let report = self.levels[(k - 1) as usize].report();
            let mut hits: Vec<(u64, f64)> = report
                .entries()
                .iter()
                .filter(|e| frontier.binary_search(&(e.item >> 1)).is_ok())
                .filter(|e| !stricter || e.count >= phi * mass)
                .map(|e| (e.item, e.count))
                .collect();
            hits.sort_unstable_by_key(|&(i, _)| i);
            let span_shift = l - k;
            for &(index, count) in &hits {
                let lo = (index as u128) << span_shift;
                let hi = lo + ((1u128 << span_shift) - 1);
                out.push(HeavyRange {
                    level: k,
                    index,
                    lo: lo as u64,
                    hi: hi as u64,
                    count,
                });
            }
            frontier = hits.into_iter().map(|(i, _)| i).collect();
            if frontier.is_empty() {
                break;
            }
        }
        out
    }
}

impl<S: FrequencyEstimator> DyadicHh<S> {
    /// Estimated mass of the inclusive interval `[lo, hi]`, via the
    /// canonical dyadic decomposition: at most 2 whole nodes per level,
    /// so ≤ 2L point estimates regardless of the interval width. With
    /// the [`DyadicHh::count_min`] calibration the total error is
    /// `ε · m` with probability 1 − δ.
    pub fn range_estimate(&self, lo: u64, hi: u64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let l = self.key_bits;
        let (lo, hi) = (lo as u128, hi as u128);
        let mut total = 0.0;
        // (level, index) nodes still straddling a query endpoint.
        let mut stack: Vec<(u32, u64)> = vec![(0, 0)];
        while let Some((k, i)) = stack.pop() {
            let span_shift = l - k;
            let node_lo = (i as u128) << span_shift;
            let node_hi = node_lo + ((1u128 << span_shift) - 1);
            if node_lo > hi || node_hi < lo {
                continue;
            }
            if lo <= node_lo && node_hi <= hi {
                total += if k == 0 {
                    self.processed as f64
                } else {
                    self.levels[(k - 1) as usize].estimate(i)
                };
                continue;
            }
            // A straddling node is never a leaf (a single point is
            // either contained or disjoint), so recursing is safe.
            stack.push((k + 1, 2 * i + 1));
            stack.push((k + 1, 2 * i));
        }
        total
    }
}

impl<S: HeavyHitters> HeavyHitters for DyadicHh<S> {
    /// The point heavy hitters: the leaf level of
    /// [`DyadicHh::heavy_ranges`] at the configured φ, i.e. the heavy
    /// items themselves with the descent's pruning applied.
    fn report(&self) -> Report {
        self.heavy_ranges(self.phi)
            .into_iter()
            .filter(|r| r.level == self.key_bits)
            .map(|r| ItemEstimate {
                item: r.index,
                count: r.count,
            })
            .collect()
    }
}

impl<S: FrequencyEstimator> FrequencyEstimator for DyadicHh<S> {
    fn estimate(&self, item: u64) -> f64 {
        self.levels[(self.key_bits - 1) as usize].estimate(item)
    }
}

impl<S: MergeableSummary + Clone> MergeableSummary for DyadicHh<S> {
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        check_compatible(&self.key_bits, &other.key_bits, "dyadic level counts")?;
        check_compatible(&self.universe, &other.universe, "universes")?;
        check_compatible(&self.eps.to_bits(), &other.eps.to_bits(), "eps parameters")?;
        check_compatible(&self.phi.to_bits(), &other.phi.to_bits(), "phi parameters")?;
        // Merge into a scratch copy first: a seed mismatch surfacing at
        // level k must not leave levels < k merged (the trait requires
        // `self` unchanged on error).
        let mut merged = self.levels.clone();
        for (mine, theirs) in merged.iter_mut().zip(&other.levels) {
            mine.merge_from(theirs)?;
        }
        self.levels = merged;
        self.processed = self.processed.saturating_add(other.processed);
        self.cache.invalidate();
        Ok(())
    }

    fn to_bytes(&self) -> Bytes {
        snapshot::encode(TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(TAG, &[], bytes)
    }
}

impl<S: MergeableSummary> serde::Serialize for DyadicHh<S> {
    fn serialize<W: serde::Serializer>(&self, mut serializer: W) -> Result<W::Ok, W::Error> {
        serializer.write_u64(self.key_bits as u64)?;
        serializer.write_u64(self.universe)?;
        serializer.write_f64(self.eps)?;
        serializer.write_f64(self.phi)?;
        serializer.write_u64(self.processed)?;
        serializer.write_seq_len(self.levels.len())?;
        for level in &self.levels {
            // Each level keeps its own tagged, checksummed buffer: the
            // outer tag names the bank, the inner tags pin the level
            // type, and the outer trailer covers everything.
            serializer.write_byte_seq(&level.to_bytes())?;
        }
        serializer.done()
    }
}

impl<'de, S: MergeableSummary> serde::Deserialize<'de> for DyadicHh<S> {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let key_bits = deserializer.read_u64()?;
        if key_bits == 0 || key_bits > 64 {
            return Err(D::Error::invariant("dyadic level count out of range"));
        }
        let universe = deserializer.read_u64()?;
        if universe == 0 || hh_space::id_bits(universe) != key_bits {
            return Err(D::Error::invariant(
                "dyadic universe inconsistent with level count",
            ));
        }
        let eps = deserializer.read_f64()?;
        let phi = deserializer.read_f64()?;
        if !(eps > 0.0 && eps < phi && phi <= 1.0) {
            return Err(D::Error::invariant("invalid (eps, phi) in dyadic snapshot"));
        }
        let processed = deserializer.read_u64()?;
        let n = deserializer.read_seq_len()?;
        if n as u64 != key_bits {
            return Err(D::Error::invariant("dyadic level count mismatch"));
        }
        // n ≤ 64 at this point: the allocation is bounded regardless of
        // what the (already checksummed) buffer claims.
        let mut levels = Vec::with_capacity(n);
        for k in 0..n {
            let buf = deserializer.read_byte_seq()?;
            let level = S::from_bytes(&buf)
                .map_err(|e| D::Error::invariant(format!("dyadic level {}: {e}", k + 1)))?;
            levels.push(level);
        }
        Ok(Self {
            levels,
            key_bits: key_bits as u32,
            universe,
            eps,
            phi,
            processed,
            scratch: Vec::new(),
            cache: QueryCache::new(),
        })
    }
}

impl<S: SpaceUsage> SpaceUsage for DyadicHh<S> {
    fn model_bits(&self) -> u64 {
        self.levels.iter().map(SpaceUsage::model_bits).sum::<u64>() + gamma_bits(self.processed)
    }

    fn heap_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(SpaceUsage::heap_bytes)
            .sum::<usize>()
            + self.levels.capacity() * core::mem::size_of::<S>()
            + self.scratch.capacity() * core::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const U: u64 = 1 << 16;

    /// ~50% of the stream in the 256-wide block at 0xAB00, ~20% on the
    /// single point 0x1234, the rest uniform noise.
    fn planted_stream(m: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                let r: f64 = rng.gen();
                if r < 0.5 {
                    0xAB00 + rng.gen_range(0..256u64)
                } else if r < 0.7 {
                    0x1234
                } else {
                    rng.gen_range(0..U)
                }
            })
            .collect()
    }

    fn exact_range(stream: &[u64], lo: u64, hi: u64) -> u64 {
        stream.iter().filter(|&&x| lo <= x && x <= hi).count() as u64
    }

    #[test]
    fn level_geometry() {
        let bank = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        assert_eq!(bank.key_bits(), 16);
        assert_eq!(bank.levels().len(), 16);
        assert_eq!(DyadicHh::<CountMin>::level_universe(64), u64::MAX);
        assert_eq!(DyadicHh::<CountMin>::level_universe(3), 8);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(DyadicHh::count_min(0.0, 0.2, 0.01, U, 7).is_err());
        assert!(DyadicHh::count_min(0.3, 0.2, 0.01, U, 7).is_err());
        assert!(DyadicHh::count_min(0.05, 0.2, 1.5, U, 7).is_err());
        assert!(DyadicHh::count_min(0.05, 0.2, 0.01, 0, 7).is_err());
    }

    #[test]
    fn heavy_ranges_find_planted_prefix_and_point() {
        let stream = planted_stream(60_000, 1);
        let mut bank = DyadicHh::count_min(0.05, 0.15, 0.01, U, 7).unwrap();
        bank.insert_batch(&stream);
        let ranges = bank.heavy_ranges(0.15);
        // The /8 block (level 8, index 0xAB) carries ~50%.
        assert!(
            ranges
                .iter()
                .any(|r| r.level == 8 && r.index == 0xAB && r.lo == 0xAB00 && r.hi == 0xABFF),
            "missing planted block in {ranges:?}"
        );
        // The planted point (~20%) survives to the leaf level.
        assert!(ranges.iter().any(|r| r.level == 16 && r.index == 0x1234));
        // Every ancestor of a reported node is reported (downward-closed).
        for r in &ranges {
            if r.level > 1 {
                assert!(
                    ranges
                        .iter()
                        .any(|p| p.level == r.level - 1 && p.index == r.index >> 1),
                    "orphan node {r:?}"
                );
            }
        }
        // Nothing under φ − ε is reported.
        let m = bank.processed() as f64;
        for r in &ranges {
            let exact = exact_range(&stream, r.lo, r.hi) as f64;
            assert!(
                exact >= (0.15 - 0.05) * m,
                "light range reported: {r:?} exact {exact}"
            );
        }
    }

    #[test]
    fn stricter_phi_filters_and_report_is_leaf_level() {
        let stream = planted_stream(60_000, 2);
        let mut bank = DyadicHh::count_min(0.05, 0.15, 0.01, U, 7).unwrap();
        bank.insert_batch(&stream);
        // At 60% nothing qualifies (the heaviest block is ~50%).
        assert!(bank.heavy_ranges(0.7).is_empty());
        let report = bank.report();
        assert!(report.contains(0x1234));
        // Point reports only hold leaf nodes, never coarse intervals.
        for e in report.entries() {
            assert!(e.item < U);
        }
    }

    #[test]
    fn range_estimate_tracks_exact_oracle() {
        let stream = planted_stream(60_000, 3);
        let mut bank = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        bank.insert_batch(&stream);
        let m = bank.processed() as f64;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let a = rng.gen_range(0..U);
            let b = rng.gen_range(0..U);
            let (lo, hi) = (a.min(b), a.max(b));
            let exact = exact_range(&stream, lo, hi) as f64;
            let est = bank.range_estimate(lo, hi);
            assert!(
                (est - exact).abs() <= 0.05 * m,
                "range [{lo}, {hi}]: est {est} exact {exact}"
            );
        }
        // Degenerate and full ranges.
        assert_eq!(bank.range_estimate(5, 4), 0.0);
        assert_eq!(bank.range_estimate(0, U - 1), m);
        assert_eq!(bank.range_estimate(0, u64::MAX), m);
    }

    #[test]
    fn batch_equals_scalar_bit_identity() {
        let stream = planted_stream(20_000, 4);
        let mut batched = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        for chunk in stream.chunks(777) {
            batched.insert_batch(chunk);
        }
        let mut scalar = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        for &x in &stream {
            scalar.insert(x);
        }
        assert_eq!(batched.to_bytes(), scalar.to_bytes());
    }

    #[test]
    fn optimal_preset_batch_identity_and_recall() {
        let stream = planted_stream(60_000, 5);
        let params = HhParams::new(0.05, 0.15).unwrap();
        let mut bank = DyadicHh::optimal(params, U, stream.len() as u64, 11, 12).unwrap();
        bank.insert_batch(&stream);
        let ranges = bank.heavy_ranges(0.15);
        assert!(ranges.iter().any(|r| r.level == 8 && r.index == 0xAB));
        assert!(ranges.iter().any(|r| r.level == 16 && r.index == 0x1234));

        let mut scalar = DyadicHh::optimal(params, U, stream.len() as u64, 11, 12).unwrap();
        for &x in &stream {
            scalar.insert(x);
        }
        assert_eq!(bank.to_bytes(), scalar.to_bytes());
    }

    #[test]
    fn merge_of_partitions_matches_single_stream() {
        let stream = planted_stream(40_000, 6);
        let mut banks = seed_aligned_count_min(0.05, 0.2, 0.01, U, 3, 7).unwrap();
        for (j, chunk) in stream.chunks(stream.len() / 3 + 1).enumerate() {
            banks[j].insert_batch(chunk);
        }
        let mut merged = banks.remove(0);
        for b in &banks {
            merged.merge_from(b).unwrap();
        }
        let mut single = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        single.insert_batch(&stream);
        // Count-Min merge is cell-wise addition, so the merged bank's
        // tables equal the single-stream bank's exactly: every point
        // and range estimate is bit-identical. (Snapshot bytes can
        // differ in the candidate shortlists, which are interleaving-
        // dependent by design — same standard as prop_merge's CM case.)
        assert_eq!(merged.processed(), single.processed());
        for probe in [0x1234u64, 0xAB07, 0, U - 1] {
            assert_eq!(
                merged.estimate(probe).to_bits(),
                single.estimate(probe).to_bits()
            );
        }
        for (lo, hi) in [(0xAB00u64, 0xABFFu64), (0, U / 2), (0x1000, 0x2000)] {
            assert_eq!(
                merged.range_estimate(lo, hi).to_bits(),
                single.range_estimate(lo, hi).to_bits()
            );
        }
        assert_eq!(merged.heavy_ranges(0.2), single.heavy_ranges(0.2));
    }

    #[test]
    fn merge_rejects_mismatched_banks() {
        let mut a = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        let b = DyadicHh::count_min(0.05, 0.2, 0.01, U << 1, 7).unwrap();
        assert!(a.merge_from(&b).is_err());
        let c = DyadicHh::count_min(0.04, 0.2, 0.01, U, 7).unwrap();
        assert!(a.merge_from(&c).is_err());
        // A seed mismatch is caught by the level sketches — and must
        // leave the receiver untouched.
        let before = a.to_bytes();
        let d = DyadicHh::count_min(0.05, 0.2, 0.01, U, 8).unwrap();
        assert!(a.merge_from(&d).is_err());
        assert_eq!(a.to_bytes(), before);
    }

    #[test]
    fn snapshot_roundtrip_restore_continue() {
        let stream = planted_stream(30_000, 8);
        let (head, tail) = stream.split_at(17_000);
        let mut bank = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        bank.insert_batch(head);
        let wire = bank.to_bytes();
        let mut restored = DyadicHh::<CountMin>::from_bytes(&wire).unwrap();
        assert_eq!(restored.to_bytes(), wire);
        bank.insert_batch(tail);
        restored.insert_batch(tail);
        assert_eq!(bank.to_bytes(), restored.to_bytes());
    }

    #[test]
    fn snapshot_rejects_foreign_and_corrupt() {
        let mut bank = DyadicHh::count_min(0.05, 0.2, 0.01, 1 << 8, 7).unwrap();
        bank.insert_batch(&[1, 2, 3, 200, 200, 200]);
        let wire = bank.to_bytes();
        // Wrong outer tag.
        let cm = CountMin::new(0.05, 0.2, 0.01, 1 << 8, 7);
        assert!(matches!(
            DyadicHh::<CountMin>::from_bytes(&cm.to_bytes()),
            Err(SnapshotError::WrongTag { .. })
        ));
        // The outer tag is shared across level types, so decoding a
        // Count-Min bank as a CountSketch bank passes the envelope but
        // must fail closed at the inner level tags.
        assert!(matches!(
            DyadicHh::<hh_baselines::CountSketch>::from_bytes(&wire),
            Err(SnapshotError::InvariantViolated(_))
        ));
        // Truncation anywhere fails with a structured error.
        for cut in [0, 1, wire.len() / 2, wire.len() - 1] {
            assert!(DyadicHh::<CountMin>::from_bytes(&wire[..cut]).is_err());
        }
        // Any bit flip is caught by the outer checksum (or tag check).
        let mut flipped = wire.to_vec();
        flipped[wire.len() / 2] ^= 0x10;
        assert!(DyadicHh::<CountMin>::from_bytes(&flipped).is_err());
    }

    #[test]
    fn query_cache_cold_warm_agree() {
        let stream = planted_stream(20_000, 9);
        let mut bank = DyadicHh::count_min(0.04, 0.12, 0.01, U, 7).unwrap();
        bank.insert_batch(&stream);
        let warm1 = bank.heavy_ranges(0.12);
        let warm2 = bank.heavy_ranges(0.12);
        assert_eq!(warm1, warm2);
        // Mutation invalidates: the planted point's estimate grows.
        let before = bank.report().estimate(0x1234).unwrap();
        for _ in 0..5_000 {
            bank.insert(0x1234);
        }
        let after = bank.report().estimate(0x1234).unwrap();
        assert!(after > before);
        // A cloned bank rebuilds its cache cold and agrees.
        let cold = bank.clone();
        assert_eq!(cold.heavy_ranges(0.12), bank.heavy_ranges(0.12));
    }

    #[test]
    fn space_usage_accounts_all_levels() {
        let bank = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        let per_level: u64 = bank.levels().iter().map(SpaceUsage::model_bits).sum();
        assert!(bank.model_bits() >= per_level);
        assert!(bank.heap_bytes() > 0);
        assert!(bank.total_bytes() > bank.heap_bytes());
    }

    #[test]
    fn frozen_view_serves_reports() {
        let stream = planted_stream(20_000, 10);
        let mut bank = DyadicHh::count_min(0.05, 0.2, 0.01, U, 7).unwrap();
        bank.insert_batch(&stream);
        let expect = bank.report();
        let frozen = hh_pipeline::Frozen::new(bank);
        assert_eq!(frozen.report(), &expect);
    }
}
