//! Space-Saving \[MAE05\] with the Stream-Summary data structure.
//!
//! Space-Saving keeps exactly `k` monitored items. A monitored item's
//! counter is incremented in place; an unmonitored arrival *evicts* the
//! current minimum, inheriting its counter plus one and recording the
//! inherited value as its overestimation error. Guarantees after `m`
//! items:
//!
//! * `f_x ≤ count(x)` for monitored `x` (never undercounts),
//! * `count(x) − err(x) ≤ f_x` (the error field bounds the overshoot),
//! * `count(min) ≤ m/k`, so any item with `f > m/k` is monitored.
//!
//! The *Stream-Summary* structure (Figure 1 of \[MAE05\]) makes every
//! operation `O(1)`: items hang off *buckets* that hold their exact count;
//! buckets form a doubly-linked list in increasing count order, so "the
//! minimum item" and "move to count+1" are pointer operations. We
//! implement it slab-style (index-linked, no unsafe).

use hh_core::mergeable::snapshot;
use hh_core::{
    FrequencyEstimator, HeavyHitters, ItemEstimate, MergeError, MergeableSummary, QueryCache,
    Report, RestoreReport, SnapshotError, StreamSummary,
};
use hh_hash::FastMap;
use hh_space::space::{gamma_bits, SpaceUsage};
use serde::{Deserialize, Serialize};

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    item: u64,
    /// Overestimation error inherited at eviction time.
    err: u64,
    /// Bucket this node belongs to (bucket holds the count).
    bucket: u32,
    prev: u32,
    next: u32,
}

#[derive(Debug, Clone)]
struct Bucket {
    count: u64,
    /// First node in this bucket's item list.
    head: u32,
    prev: u32,
    next: u32,
}

/// The Space-Saving summary with `k` monitored items.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    key_bits: u64,
    map: FastMap<u64, u32>,
    nodes: Vec<Node>,
    buckets: Vec<Bucket>,
    free_buckets: Vec<u32>,
    /// Bucket with the smallest count (list head), NONE when empty.
    min_bucket: u32,
    processed: u64,
    phi: f64,
    /// Materialized report; every mutation invalidates (see DESIGN.md §8).
    cache: QueryCache<Report>,
}

impl SpaceSaving {
    /// Summary with `⌈1/ε⌉` monitored items reporting at threshold `φ`.
    pub fn new(eps: f64, phi: f64, universe: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(phi > eps && phi <= 1.0, "need eps < phi <= 1");
        Self::with_capacity((1.0 / eps).ceil() as usize, phi, universe)
    }

    /// Summary with an explicit number of monitored items.
    pub fn with_capacity(capacity: usize, phi: f64, universe: u64) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        Self {
            capacity,
            key_bits: hh_space::id_bits(universe),
            map: hh_hash::fast_map_with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            min_bucket: NONE,
            processed: 0,
            phi,
            cache: QueryCache::new(),
        }
    }

    /// Number of monitored items.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is monitored yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Monitored capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// `(item, count, err)` for every monitored item, by decreasing count.
    pub fn entries(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = self
            .map
            .values()
            .map(|&ni| {
                let n = &self.nodes[ni as usize];
                (n.item, self.buckets[n.bucket as usize].count, n.err)
            })
            .collect();
        v.sort_unstable_by_key(|&(i, c, _)| (std::cmp::Reverse(c), i));
        v
    }

    /// The current minimum monitored count (`≤ m/k`), 0 when not full.
    pub fn min_count(&self) -> u64 {
        if self.map.len() < self.capacity {
            0
        } else {
            self.buckets[self.min_bucket as usize].count
        }
    }

    fn alloc_bucket(&mut self, count: u64) -> u32 {
        let b = Bucket {
            count,
            head: NONE,
            prev: NONE,
            next: NONE,
        };
        if let Some(i) = self.free_buckets.pop() {
            self.buckets[i as usize] = b;
            i
        } else {
            self.buckets.push(b);
            (self.buckets.len() - 1) as u32
        }
    }

    /// Unlinks `ni` from its bucket's item list; frees the bucket if it
    /// becomes empty. Returns the bucket index it was in.
    fn detach_node(&mut self, ni: u32) -> u32 {
        let (bi, prev, next) = {
            let n = &self.nodes[ni as usize];
            (n.bucket, n.prev, n.next)
        };
        if prev != NONE {
            self.nodes[prev as usize].next = next;
        } else {
            self.buckets[bi as usize].head = next;
        }
        if next != NONE {
            self.nodes[next as usize].prev = prev;
        }
        if self.buckets[bi as usize].head == NONE {
            // Unlink the now-empty bucket from the bucket list.
            let (bprev, bnext) = {
                let b = &self.buckets[bi as usize];
                (b.prev, b.next)
            };
            if bprev != NONE {
                self.buckets[bprev as usize].next = bnext;
            } else {
                self.min_bucket = bnext;
            }
            if bnext != NONE {
                self.buckets[bnext as usize].prev = bprev;
            }
            self.free_buckets.push(bi);
        }
        bi
    }

    /// Attaches node `ni` to the bucket with exact count `count`, which
    /// must sit at or right after position `after` in the bucket list
    /// (`after == NONE` means list head).
    fn attach_node(&mut self, ni: u32, count: u64, after: u32) {
        // Find or create the bucket.
        let next_of_after = if after == NONE {
            self.min_bucket
        } else {
            self.buckets[after as usize].next
        };
        let bi = if next_of_after != NONE && self.buckets[next_of_after as usize].count == count {
            next_of_after
        } else {
            let nb = self.alloc_bucket(count);
            // Splice between `after` and `next_of_after`.
            self.buckets[nb as usize].prev = after;
            self.buckets[nb as usize].next = next_of_after;
            if after == NONE {
                self.min_bucket = nb;
            } else {
                self.buckets[after as usize].next = nb;
            }
            if next_of_after != NONE {
                self.buckets[next_of_after as usize].prev = nb;
            }
            nb
        };
        // Push node at the head of the bucket's item list.
        let head = self.buckets[bi as usize].head;
        {
            let n = &mut self.nodes[ni as usize];
            n.bucket = bi;
            n.prev = NONE;
            n.next = head;
        }
        if head != NONE {
            self.nodes[head as usize].prev = ni;
        }
        self.buckets[bi as usize].head = ni;
    }

    /// An empty structure with the same parameters (for merge rebuilds).
    pub fn clone_empty(&self) -> Self {
        Self {
            capacity: self.capacity,
            key_bits: self.key_bits,
            map: hh_hash::fast_map_with_capacity(self.capacity),
            nodes: Vec::with_capacity(self.capacity),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            min_bucket: NONE,
            processed: 0,
            phi: self.phi,
            cache: QueryCache::new(),
        }
    }

    /// Restores `(item, count, err)` triples into an empty structure
    /// (merge rebuild). Triples may arrive in any order; they are sorted
    /// ascending so each bucket is appended at the tail.
    ///
    /// # Panics
    /// If the structure is non-empty or the triples exceed capacity.
    pub fn restore_entries(&mut self, mut triples: Vec<(u64, u64, u64)>, processed: u64) {
        assert!(self.map.is_empty(), "restore requires an empty structure");
        assert!(triples.len() <= self.capacity, "too many entries");
        // An empty *table* can still carry a warm (empty) report.
        self.cache.invalidate();
        // One bucket per distinct count at most: size the slab once so
        // the build loop never reallocates it.
        self.buckets.reserve(triples.len());
        triples.sort_unstable_by_key(|&(_, c, _)| c);
        // Ascending order lets the bucket list be built linearly — each
        // distinct count appends one bucket at the tail, repeats push
        // onto the tail bucket's item list — with none of the general
        // `attach_node` splicing (this path backs snapshot restore and
        // the merge rebuild, both on the read side's serving cadence).
        let mut tail = NONE; // current maximum bucket
        let mut tail_count = 0u64;
        for (item, count, err) in triples {
            assert!(count > 0, "restored counts must be positive");
            let ni = self.nodes.len() as u32;
            if tail == NONE || count != tail_count {
                let bi = self.buckets.len() as u32;
                self.buckets.push(Bucket {
                    count,
                    head: ni,
                    prev: tail,
                    next: NONE,
                });
                if tail == NONE {
                    self.min_bucket = bi;
                } else {
                    self.buckets[tail as usize].next = bi;
                }
                self.nodes.push(Node {
                    item,
                    err,
                    bucket: bi,
                    prev: NONE,
                    next: NONE,
                });
                tail = bi;
                tail_count = count;
            } else {
                let head = self.buckets[tail as usize].head;
                self.nodes[head as usize].prev = ni;
                self.nodes.push(Node {
                    item,
                    err,
                    bucket: tail,
                    prev: NONE,
                    next: head,
                });
                self.buckets[tail as usize].head = ni;
            }
            self.map.insert(item, ni);
        }
        self.processed = processed;
    }

    /// Increment with the singleton-bucket fast path: when `ni` is alone
    /// in its bucket and the successor bucket (if any) does not hold
    /// `count + 1`, the bucket's count can be bumped in place — the list
    /// order invariant is untouched and no detach/attach or bucket
    /// alloc/free runs. Distinct-count-heavy workloads (every skewed
    /// stream once the heavy items separate) take this path almost
    /// always. Falls back to the general relink otherwise; resulting
    /// structure is identical either way (buckets are per-distinct-count,
    /// so "bump in place" and "detach, attach to a fresh bucket" build
    /// the same bucket multiset).
    fn increment_fast(&mut self, ni: u32) {
        let n = &self.nodes[ni as usize];
        let bi = n.bucket;
        if n.prev == NONE && n.next == NONE {
            let (count, next) = {
                let b = &self.buckets[bi as usize];
                (b.count, b.next)
            };
            if next == NONE || self.buckets[next as usize].count > count + 1 {
                self.buckets[bi as usize].count = count + 1;
                return;
            }
        }
        self.increment(ni);
    }

    /// Increments a monitored node: detach, then attach at count+1. The
    /// destination bucket is adjacent in the bucket list, so this is O(1).
    fn increment(&mut self, ni: u32) {
        let old_bucket = self.nodes[ni as usize].bucket;
        let count = self.buckets[old_bucket as usize].count;
        let bucket_survives = {
            // Does the old bucket still hold other items after detach?
            let n = &self.nodes[ni as usize];
            n.prev != NONE || n.next != NONE
        };
        self.detach_node(ni);
        // The attach anchor: if the old bucket survived it precedes the
        // count+1 bucket; otherwise its predecessor does.
        let after = if bucket_survives {
            old_bucket
        } else {
            // detach freed the bucket; anchor at the bucket before the
            // free slot's old position. We saved nothing, so re-find from
            // min_bucket — but the freed bucket's prev pointer is intact
            // in its slab slot until reused, and detach pushed it to the
            // free list without clearing links.
            self.buckets[old_bucket as usize].prev
        };
        self.attach_node(ni, count + 1, after);
    }
}

impl StreamSummary for SpaceSaving {
    fn insert(&mut self, item: u64) {
        self.cache.invalidate();
        self.processed += 1;
        if let Some(&ni) = self.map.get(&item) {
            self.increment_fast(ni);
            return;
        }
        if self.map.len() < self.capacity {
            let ni = self.nodes.len() as u32;
            self.nodes.push(Node {
                item,
                err: 0,
                bucket: NONE,
                prev: NONE,
                next: NONE,
            });
            self.attach_node(ni, 1, NONE);
            // A count-1 bucket is always the minimum: verify the anchor.
            debug_assert_eq!(
                self.buckets[self.nodes[ni as usize].bucket as usize].count,
                1
            );
            self.map.insert(item, ni);
            return;
        }
        // Evict the minimum: reuse its node for the new item.
        let min_b = self.min_bucket;
        let ni = self.buckets[min_b as usize].head;
        let min_count = self.buckets[min_b as usize].count;
        let old_item = self.nodes[ni as usize].item;
        self.map.remove(&old_item);
        self.nodes[ni as usize].item = item;
        self.nodes[ni as usize].err = min_count;
        self.map.insert(item, ni);
        self.increment_fast(ni); // moves it to min_count + 1
    }

    /// Batch ingestion: the scalar body with the stream-position
    /// accounting hoisted out of the loop. Monitored entries, counts,
    /// and errors after the batch are identical to element-wise
    /// insertion (the physical slab layout may differ, which no query
    /// observes).
    fn insert_batch(&mut self, items: &[u64]) {
        self.cache.invalidate();
        self.processed += items.len() as u64;
        for &item in items {
            if let Some(&ni) = self.map.get(&item) {
                self.increment_fast(ni);
                continue;
            }
            if self.map.len() < self.capacity {
                let ni = self.nodes.len() as u32;
                self.nodes.push(Node {
                    item,
                    err: 0,
                    bucket: NONE,
                    prev: NONE,
                    next: NONE,
                });
                self.attach_node(ni, 1, NONE);
                self.map.insert(item, ni);
                continue;
            }
            let min_b = self.min_bucket;
            let ni = self.buckets[min_b as usize].head;
            let min_count = self.buckets[min_b as usize].count;
            let old_item = self.nodes[ni as usize].item;
            self.map.remove(&old_item);
            self.nodes[ni as usize].item = item;
            self.nodes[ni as usize].err = min_count;
            self.map.insert(item, ni);
            self.increment_fast(ni);
        }
    }
}

impl SpaceSaving {
    /// The cold report pass behind the cached [`HeavyHitters::report`].
    fn build_report(&self) -> Report {
        let threshold = self.phi * self.processed as f64;
        self.entries()
            .into_iter()
            .filter(|&(_, c, _)| c as f64 > threshold)
            .map(|(item, c, _)| ItemEstimate {
                item,
                count: c as f64,
            })
            .collect()
    }
}

impl HeavyHitters for SpaceSaving {
    /// The report — a cache hit after a quiescent period, a
    /// Stream-Summary scan on the first query after a mutation.
    fn report(&self) -> Report {
        self.cache.get_or_build(|| self.build_report()).clone()
    }
}

impl FrequencyEstimator for SpaceSaving {
    fn estimate(&self, item: u64) -> f64 {
        self.map
            .get(&item)
            .map(|&ni| self.buckets[self.nodes[ni as usize].bucket as usize].count as f64)
            .unwrap_or(0.0)
    }
}

/// Snapshot format version tag. v2 carries the monitored triples as
/// one interleaved varint block through the codec's bulk byte channel
/// instead of one codec call per field; v3 appends the trailing
/// integrity checksum.
const TAG: &str = "hh.baseline.space-saving.v3";
/// Previous (checksum-less) tag, still accepted on restore.
const TAG_V2: &str = "hh.baseline.space-saving.v2";

/// Content snapshot: parameters, stream position, and the monitored
/// `(item, count, err)` triples as one interleaved varint block in
/// decreasing-count order — a single buffer built and written in one
/// pass. The slab/bucket pointer graph is a word-RAM artifact and is
/// rebuilt on restore; every query observes identical state.
impl Serialize for SpaceSaving {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.reserve(self.map.len() * 10 + 96);
        serializer.write_u64(self.capacity as u64)?;
        serializer.write_u64(self.key_bits)?;
        serializer.write_f64(self.phi)?;
        serializer.write_u64(self.processed)?;
        let triples = self.entries();
        serializer.write_seq_len(triples.len())?;
        let mut block = Vec::with_capacity(triples.len() * 10 + 8);
        for &(i, c, e) in &triples {
            hh_space::varint::push_uvarint(&mut block, i);
            hh_space::varint::push_uvarint(&mut block, c);
            hh_space::varint::push_uvarint(&mut block, e);
        }
        serializer.write_byte_seq(&block)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for SpaceSaving {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        // Capacity drives eager map/slab allocation; keep the accepted
        // range tight (2^20 monitored items covers eps down to ~10^-6)
        // so a crafted buffer cannot provoke a huge allocation.
        let capacity = deserializer.read_u64()? as usize;
        if capacity == 0 || capacity > (1 << 20) {
            return Err(serde::de::Error::invariant(
                "SpaceSaving capacity out of range",
            ));
        }
        let key_bits = deserializer.read_u64()?;
        if key_bits > 64 {
            return Err(serde::de::Error::invariant("key width exceeds 64 bits"));
        }
        let phi = deserializer.read_f64()?;
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(serde::de::Error::invariant("invalid phi in snapshot"));
        }
        let processed = deserializer.read_u64()?;
        let n = deserializer.read_seq_len()?;
        if n > capacity {
            return Err(serde::de::Error::invariant(
                "SpaceSaving entries exceed capacity",
            ));
        }
        let block = deserializer.read_byte_seq()?;
        let mut triples: Vec<(u64, u64, u64)> = Vec::with_capacity(n);
        let mut pos = 0usize;
        for _ in 0..n {
            let bad = || serde::de::Error::truncated();
            let i = hh_space::varint::read_uvarint(&block, &mut pos).ok_or_else(bad)?;
            let c = hh_space::varint::read_uvarint(&block, &mut pos).ok_or_else(bad)?;
            let e = hh_space::varint::read_uvarint(&block, &mut pos).ok_or_else(bad)?;
            if c == 0 || e > c || c > processed {
                return Err(serde::de::Error::invariant("SpaceSaving malformed triple"));
            }
            triples.push((i, c, e));
        }
        if pos != block.len() {
            return Err(serde::de::Error::invariant("SpaceSaving trailing bytes"));
        }
        let mut keys: Vec<u64> = triples.iter().map(|&(i, _, _)| i).collect();
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(serde::de::Error::invariant("SpaceSaving duplicate items"));
        }
        let mut ss = SpaceSaving {
            capacity,
            key_bits,
            map: hh_hash::fast_map_with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            min_bucket: NONE,
            processed: 0,
            phi,
            cache: QueryCache::new(),
        };
        ss.restore_entries(triples, processed);
        Ok(ss)
    }
}

impl MergeableSummary for SpaceSaving {
    /// The \[ACH+12\] Space-Saving merge. For each item, each summary
    /// contributes its monitored `(count, err)`, or `(min_count,
    /// min_count)` if the item is unmonitored — sound because an
    /// unmonitored item's true count is at most `min_count`, so charging
    /// exactly that keeps both the overestimate (`f ≤ count`) and the
    /// error (`count − err ≤ f`) invariants. The top `k` combined
    /// triples are kept. Deterministic, so any two instances with the
    /// same capacity and pricing are compatible.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.capacity != other.capacity {
            return Err(MergeError::Incompatible("capacities"));
        }
        if self.key_bits != other.key_bits {
            return Err(MergeError::Incompatible("key widths"));
        }
        let self_min = self.min_count();
        let other_min = other.min_count();
        // Union by a two-pointer walk of the two item-sorted entry
        // lists — no hash maps, no hashing per item; merges sit on the
        // read side's combiner/rotation cadence, so their constant
        // matters.
        let mut a = self.entries();
        a.sort_unstable_by_key(|&(i, _, _)| i);
        let mut b = other.entries();
        b.sort_unstable_by_key(|&(i, _, _)| i);
        let mut combined: Vec<(u64, u64, u64)> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    let (it, c, e) = a[i];
                    combined.push((it, c.saturating_add(other_min), e.saturating_add(other_min)));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    let (it, c, e) = b[j];
                    combined.push((it, c.saturating_add(self_min), e.saturating_add(self_min)));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    combined.push((
                        a[i].0,
                        a[i].1.saturating_add(b[j].1),
                        a[i].2.saturating_add(b[j].2),
                    ));
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(it, c, e) in &a[i..] {
            combined.push((it, c.saturating_add(other_min), e.saturating_add(other_min)));
        }
        for &(it, c, e) in &b[j..] {
            combined.push((it, c.saturating_add(self_min), e.saturating_add(self_min)));
        }
        combined.sort_unstable_by_key(|&(i, c, _)| (std::cmp::Reverse(c), i));
        combined.truncate(self.capacity);
        let total = self.processed.saturating_add(other.processed);
        let mut fresh = self.clone_empty();
        fresh.restore_entries(combined, total);
        *self = fresh;
        Ok(())
    }

    fn to_bytes(&self) -> bytes::Bytes {
        snapshot::encode(TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(TAG, &[TAG_V2], bytes)
    }
}

impl SpaceUsage for SpaceSaving {
    fn model_bits(&self) -> u64 {
        // Per monitored item: id + count + err. Pointers are a word-RAM
        // artifact of the O(1) structure; the information content is the
        // (id, count, err) triples plus the stream position.
        let items: u64 = self
            .map
            .values()
            .map(|&ni| {
                let n = &self.nodes[ni as usize];
                self.key_bits
                    + gamma_bits(self.buckets[n.bucket as usize].count)
                    + gamma_bits(n.err)
            })
            .sum();
        items + (self.capacity - self.map.len()) as u64 + gamma_bits(self.processed)
    }

    fn heap_bytes(&self) -> usize {
        self.map.capacity() * 24
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + self.free_buckets.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn truth(stream: &[u64], item: u64) -> u64 {
        stream.iter().filter(|&&x| x == item).count() as u64
    }

    /// Validates the structural invariants of the bucket list.
    fn check_invariants(ss: &SpaceSaving) {
        let mut bi = ss.min_bucket;
        let mut last_count = 0u64;
        let mut items = 0usize;
        let mut seen_buckets = 0usize;
        while bi != NONE {
            let b = &ss.buckets[bi as usize];
            assert!(b.count > last_count, "bucket counts must increase");
            last_count = b.count;
            assert_ne!(b.head, NONE, "live bucket must be non-empty");
            let mut ni = b.head;
            let mut prev = NONE;
            while ni != NONE {
                let n = &ss.nodes[ni as usize];
                assert_eq!(n.bucket, bi, "node bucket pointer");
                assert_eq!(n.prev, prev, "node prev pointer");
                items += 1;
                prev = ni;
                ni = n.next;
            }
            seen_buckets += 1;
            assert!(seen_buckets <= ss.buckets.len(), "bucket list cycle");
            bi = b.next;
        }
        assert_eq!(items, ss.map.len(), "every mapped node is linked");
    }

    #[test]
    fn exact_below_capacity() {
        let mut ss = SpaceSaving::with_capacity(10, 0.3, 100);
        for x in [1u64, 2, 2, 3, 3, 3] {
            ss.insert(x);
            check_invariants(&ss);
        }
        assert_eq!(ss.estimate(3), 3.0);
        assert_eq!(ss.estimate(2), 2.0);
        assert_eq!(ss.estimate(1), 1.0);
        assert_eq!(ss.estimate(9), 0.0);
    }

    #[test]
    fn never_undercounts_and_error_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream: Vec<u64> = (0..20_000)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    7
                } else {
                    rng.gen_range(0..200)
                }
            })
            .collect();
        let k = 20usize;
        let mut ss = SpaceSaving::with_capacity(k, 0.2, 1 << 20);
        ss.insert_all(&stream);
        check_invariants(&ss);
        for (item, count, err) in ss.entries() {
            let f = truth(&stream, item);
            assert!(count >= f, "item {item}: count {count} < truth {f}");
            assert!(count - err <= f, "item {item}: count-err exceeds truth");
        }
        // min count ≤ m/k.
        assert!(ss.min_count() <= 20_000 / k as u64);
        // The heavy item must be monitored and nearly exact.
        let f7 = truth(&stream, 7);
        let e7 = ss.estimate(7);
        assert!(e7 >= f7 as f64 && e7 <= f7 as f64 + 20_000.0 / k as f64);
    }

    #[test]
    fn report_obeys_both_sides_of_definition_one() {
        // Planted frequencies around the φ threshold.
        let mut stream = Vec::new();
        stream.extend(std::iter::repeat_n(1u64, 15_000)); // 30%
        stream.extend(std::iter::repeat_n(2u64, 4_000)); // 8% ≤ (φ−ε)m with φ=0.2,ε=0.1
        for i in 0..31_000u64 {
            stream.push(1000 + (i % 8000));
        }
        let mut rng = StdRng::seed_from_u64(6);
        use rand::seq::SliceRandom;
        stream.shuffle(&mut rng);
        let mut ss = SpaceSaving::new(0.1, 0.2, 1 << 20);
        ss.insert_all(&stream);
        let r = ss.report();
        assert!(r.contains(1));
        assert!(!r.contains(2), "8% item must not be reported at phi=20%");
    }

    #[test]
    fn eviction_cycles_preserve_structure() {
        // Tiny capacity, many distinct items: constant evictions.
        let mut ss = SpaceSaving::with_capacity(3, 0.5, 1 << 20);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5000 {
            ss.insert(rng.gen_range(0..50));
            check_invariants(&ss);
            assert!(ss.len() <= 3);
        }
    }

    #[test]
    fn adversarial_min_rotation() {
        // Round-robin over k+1 items forces an eviction every arrival once
        // the table is full — the worst case for the bucket list.
        let mut ss = SpaceSaving::with_capacity(4, 0.5, 64);
        for i in 0..10_000u64 {
            ss.insert(i % 5);
        }
        check_invariants(&ss);
        // Counts stay within [m/(k+1), m/(k+1) + m/k]-ish; the real check
        // is the overestimate bound:
        for (item, count, _) in ss.entries() {
            let f = 10_000 / 5;
            assert!(count >= f, "item {item} undercounted");
            assert!(count <= f + 10_000 / 4, "item {item} overshoots bound");
        }
    }

    #[test]
    fn batch_insert_matches_element_wise() {
        // Mixed workload: heavy hits (bump path), churn (evictions), and
        // a sub-capacity warmup — compare full monitored content.
        let mut rng = StdRng::seed_from_u64(12);
        let stream: Vec<u64> = (0..30_000)
            .map(|_| {
                if rng.gen_bool(0.35) {
                    rng.gen_range(0..8)
                } else {
                    rng.gen_range(0..4000)
                }
            })
            .collect();
        let mut scalar = SpaceSaving::with_capacity(24, 0.2, 1 << 20);
        for &x in &stream {
            scalar.insert(x);
        }
        let mut batch = SpaceSaving::with_capacity(24, 0.2, 1 << 20);
        for chunk in stream.chunks(501) {
            batch.insert_batch(chunk);
        }
        check_invariants(&batch);
        assert_eq!(scalar.entries(), batch.entries());
        assert_eq!(scalar.processed(), batch.processed());
        assert_eq!(scalar.min_count(), batch.min_count());
        assert_eq!(scalar.model_bits(), batch.model_bits());
    }

    #[test]
    fn bump_path_preserves_invariants_under_min_rotation() {
        // Round-robin over k+1 items: every arrival is an eviction into
        // the minimum bucket — the stress case for the in-place bump.
        let stream: Vec<u64> = (0..10_000u64).map(|i| i % 5).collect();
        let mut batch = SpaceSaving::with_capacity(4, 0.5, 64);
        for chunk in stream.chunks(97) {
            batch.insert_batch(chunk);
            check_invariants(&batch);
        }
        let mut scalar = SpaceSaving::with_capacity(4, 0.5, 64);
        for &x in &stream {
            scalar.insert(x);
        }
        assert_eq!(scalar.entries(), batch.entries());
    }

    #[test]
    fn space_accounting_counts_triples() {
        let mut ss = SpaceSaving::with_capacity(4, 0.5, 1 << 16);
        ss.insert(1);
        ss.insert(1);
        ss.insert(2);
        // Two items: (16-bit id + gamma(count) + gamma(0)) each, 2 empty
        // slots, gamma(3) position.
        let expect = (16 + gamma_bits(2) + 1) + (16 + gamma_bits(1) + 1) + 2 + gamma_bits(3);
        assert_eq!(ss.model_bits(), expect);
    }
}
