//! The Misra–Gries baseline as the paper's point of comparison:
//! `O(ε⁻¹(log n + log m))` bits, deterministic.

use hh_core::mergeable::snapshot;
use hh_core::{
    HeavyHitters, ItemEstimate, MergeError, MergeableSummary, MisraGries, QueryCache, Report,
    RestoreReport, SnapshotError, StreamSummary,
};
use hh_space::SpaceUsage;
use serde::{Deserialize, Serialize};

/// Misra–Gries run over raw ids with `⌈1/ε⌉` counters, reporting at the
/// `(φ − ε/2)m` threshold.
///
/// Wraps the same table Algorithms 1 and 2 embed (`hh_core::mg`), but
/// keyed by raw ids over the full (unsampled) stream — exactly the
/// algorithm of \[MG82\] the paper cites as the state of the art it
/// improves: *"prior to our work the best known algorithms for the (ε,
/// φ)-Heavy Hitters Problem used O(ε⁻¹(log n + log m)) bits of space."*
#[derive(Debug, Clone)]
pub struct MisraGriesBaseline {
    table: MisraGries,
    eps: f64,
    phi: f64,
    /// Materialized report; every mutation invalidates (see DESIGN.md §8).
    cache: QueryCache<Report>,
}

impl MisraGriesBaseline {
    /// Baseline with `⌈2/ε⌉` counters (error `εm/2`, leaving slack for
    /// the report threshold) over universe `[0, universe)`.
    pub fn new(eps: f64, phi: f64, universe: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(phi > eps && phi <= 1.0, "need eps < phi <= 1");
        let k = (2.0 / eps).ceil() as usize;
        Self {
            table: MisraGries::for_universe(k, universe),
            eps,
            phi,
            cache: QueryCache::new(),
        }
    }

    /// Number of counters.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Access to the underlying table (for merging).
    pub fn table(&self) -> &MisraGries {
        &self.table
    }

    /// Mutable access to the underlying table (for merging). Mutating
    /// through it can change query answers, so the report cache drops.
    pub fn table_mut(&mut self) -> &mut MisraGries {
        self.cache.invalidate();
        &mut self.table
    }

    /// The cold report pass behind the cached [`HeavyHitters::report`].
    fn build_report(&self) -> Report {
        let m = self.table.processed() as f64;
        // MG undercounts by at most m/(k+1) <= eps*m/2; compensate half
        // the bias in the threshold so both sides of Definition 1 hold.
        let threshold = (self.phi - self.eps / 2.0) * m;
        self.table
            .entries()
            .into_iter()
            .filter(|&(_, c)| c as f64 >= threshold)
            .map(|(item, c)| ItemEstimate {
                item,
                count: c as f64,
            })
            .collect()
    }
}

impl StreamSummary for MisraGriesBaseline {
    fn insert(&mut self, item: u64) {
        self.cache.invalidate();
        self.table.insert(item);
    }

    fn insert_batch(&mut self, items: &[u64]) {
        self.cache.invalidate();
        self.table.insert_batch(items);
    }
}

impl HeavyHitters for MisraGriesBaseline {
    /// The report — a cache hit after a quiescent period, a table scan
    /// on the first query after a mutation.
    fn report(&self) -> Report {
        self.cache.get_or_build(|| self.build_report()).clone()
    }
}

impl hh_core::FrequencyEstimator for MisraGriesBaseline {
    fn estimate(&self, item: u64) -> f64 {
        self.table.estimate(item) as f64
    }
}

impl SpaceUsage for MisraGriesBaseline {
    fn model_bits(&self) -> u64 {
        self.table.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        self.table.heap_bytes()
    }
}

/// Snapshot format version tag (v2: the wrapped table switched to the
/// varint-slice wire format; v3: trailing integrity checksum).
const TAG: &str = "hh.baseline.misra-gries.v3";
/// Previous (checksum-less) tag, still accepted on restore.
const TAG_V2: &str = "hh.baseline.misra-gries.v2";

impl Serialize for MisraGriesBaseline {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_f64(self.eps)?;
        serializer.write_f64(self.phi)?;
        self.table.serialize(&mut serializer)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for MisraGriesBaseline {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let eps = deserializer.read_f64()?;
        let phi = deserializer.read_f64()?;
        if !(eps > 0.0 && eps < phi && phi <= 1.0) {
            return Err(serde::de::Error::invariant(
                "invalid (eps, phi) in snapshot",
            ));
        }
        let table = MisraGries::deserialize(&mut deserializer)?;
        Ok(Self {
            table,
            eps,
            phi,
            cache: QueryCache::new(),
        })
    }
}

impl MergeableSummary for MisraGriesBaseline {
    /// Counter merge of the underlying tables ([`MisraGries::merge`]);
    /// deterministic, so any two instances with the same `(ε, φ)` are
    /// compatible.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.eps != other.eps || self.phi != other.phi {
            return Err(MergeError::Incompatible("(eps, phi) parameters"));
        }
        self.cache.invalidate();
        self.table.merge_from(other.table())
    }

    fn to_bytes(&self) -> bytes::Bytes {
        snapshot::encode(TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(TAG, &[TAG_V2], bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_streams::{arrange, OrderPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn guarantee_on_planted_stream() {
        let m = 100_000u64;
        let mut counts = vec![(1u64, 30_000u64), (2, 12_000), (3, 7_900)];
        for j in 0..500u64 {
            counts.push((100 + j, 100));
        }
        let used: u64 = counts.iter().map(|&(_, c)| c).sum();
        counts[0].1 += m - used;
        let mut rng = StdRng::seed_from_u64(1);
        let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
        let mut b = MisraGriesBaseline::new(0.02, 0.1, 1 << 20);
        b.insert_all(&stream);
        let r = b.report();
        // f1 > 30%, f2 = 12% are heavy at φ = 10%; f3 = 7.9% ≤ (φ−ε)m = 8%.
        assert!(r.contains(1) && r.contains(2));
        assert!(!r.contains(3));
    }

    #[test]
    fn estimates_never_exceed_truth() {
        let mut b = MisraGriesBaseline::new(0.1, 0.3, 100);
        for i in 0..10_000u64 {
            b.insert(i % 37);
        }
        use hh_core::FrequencyEstimator;
        for i in 0..37u64 {
            let truth = 10_000 / 37 + u64::from(i < 10_000 % 37);
            assert!(b.estimate(i) <= truth as f64);
        }
    }

    #[test]
    fn space_scales_with_log_universe() {
        let mut small = MisraGriesBaseline::new(0.1, 0.3, 1 << 10);
        let mut large = MisraGriesBaseline::new(0.1, 0.3, 1 << 60);
        for i in 0..1000u64 {
            small.insert(i % 30);
            large.insert(i % 30);
        }
        // 50 extra bits per stored key.
        let diff = large.model_bits() - small.model_bits();
        assert_eq!(diff, 50 * large.table.len() as u64);
    }

    #[test]
    #[should_panic(expected = "need eps < phi")]
    fn bad_params_rejected() {
        MisraGriesBaseline::new(0.3, 0.2, 10);
    }
}
