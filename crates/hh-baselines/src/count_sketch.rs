//! CountSketch \[CCFC04\]: the signed median sketch.
//!
//! Each of `d` rows carries a bucket hash `h_j` and a sign hash `s_j`;
//! an arrival adds `s_j(x)` to `C[j][h_j(x)]`, and the point estimate is
//! the median over rows of `s_j(x)·C[j][h_j(x)]`. Unlike Count-Min the
//! error is two-sided but scales with `√F₂` instead of `F₁ = m`, so
//! CountSketch wins on skewed streams — the trade-off experiment E7
//! exhibits against both Count-Min and the paper's algorithms.

use hh_core::mergeable::snapshot;
use hh_core::{
    FrequencyEstimator, HeavyHitters, ItemEstimate, MergeError, MergeableSummary, QueryCache,
    Report, RestoreReport, SnapshotError, StreamSummary,
};
use hh_hash::FastMap;
use hh_hash::{HashFamily, HashFunction, PolynomialFamily, PolynomialHash};
use hh_space::space::{gamma_bits, SpaceUsage};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The CountSketch summary with heavy-hitter candidate tracking.
#[derive(Debug, Clone)]
pub struct CountSketch {
    /// Per row: (bucket-and-sign hash, signed counters).
    rows: Vec<(PolynomialHash, Vec<i64>)>,
    width: u64,
    candidates: FastMap<u64, ()>,
    candidate_cap: usize,
    key_bits: u64,
    processed: u64,
    phi: f64,
    /// Materialized report; every mutation invalidates (see DESIGN.md §8).
    cache: QueryCache<Report>,
}

impl CountSketch {
    /// Sketch with width `⌈4/ε²⌉` clamped to `[16, 2²⁰]` and odd depth
    /// `⌈ln(1/δ)⌉`, reporting at `φ`.
    ///
    /// The `1/ε²` width targets the ℓ2 guarantee `±ε√F₂ ≤ εm`; for large
    /// widths prefer [`CountSketch::with_dimensions`].
    pub fn new(eps: f64, phi: f64, delta: f64, universe: u64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(phi > eps && phi <= 1.0, "need eps < phi <= 1");
        let width = ((4.0 / (eps * eps)).ceil() as u64).clamp(16, 1 << 20);
        let mut depth = ((1.0 / delta).ln().ceil() as usize).max(3);
        if depth % 2 == 0 {
            depth += 1;
        }
        Self::with_dimensions(width, depth, phi, universe, seed)
    }

    /// Fully parameterized constructor (odd `depth` enforced).
    pub fn with_dimensions(width: u64, depth: usize, phi: f64, universe: u64, seed: u64) -> Self {
        assert!(width >= 2 && depth >= 1);
        let depth = if depth % 2 == 0 { depth + 1 } else { depth };
        let mut rng = StdRng::seed_from_u64(seed);
        let family = PolynomialFamily::new(width, 2);
        let rows = (0..depth)
            .map(|_| (family.sample(&mut rng), vec![0i64; width as usize]))
            .collect();
        Self {
            rows,
            width,
            candidates: FastMap::default(),
            candidate_cap: ((8.0 / phi).ceil() as usize).max(8),
            key_bits: hh_space::id_bits(universe),
            processed: 0,
            phi,
            cache: QueryCache::new(),
        }
    }

    /// Width of each row.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Items processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Median of a mutable estimate buffer (the upper median, matching
    /// the sort-then-index convention for the forced-odd depth).
    ///
    /// Depth 3 — every `δ ≥ e⁻³` configuration, including the default
    /// `⌈ln δ⁻¹⌉` for δ = 0.1 — takes a branch-free min/max lattice:
    /// `med(a,b,c) = min(max(a,b), max(min(a,b), c))`, three `cmov`
    /// pairs where `select_nth_unstable` runs its general partition
    /// machinery. Identical value by uniqueness of the odd-length
    /// median, so estimates are unchanged bit for bit.
    #[inline]
    fn median(ests: &mut [i64]) -> i64 {
        if let &mut [a, b, c] = ests {
            return a.max(b).min(a.min(b).max(c));
        }
        let mid = ests.len() / 2;
        *ests.select_nth_unstable(mid).1
    }

    fn query(&self, item: u64) -> f64 {
        // One hash evaluation per row (bucket and sign from the same
        // field value) into a stack buffer; depth is ⌈ln δ⁻¹⌉, so 16
        // covers every reachable configuration (δ = 10⁻⁶ needs 15) and
        // the heap fallback is for hand-built sketches only. The buffer
        // is deliberately small: it is zeroed per call, and this runs
        // per stream item.
        let d = self.rows.len();
        let mut stack = [0i64; 16];
        let mut heap: Vec<i64>;
        let ests: &mut [i64] = if d <= 16 {
            &mut stack[..d]
        } else {
            heap = vec![0; d];
            &mut heap
        };
        for ((h, row), e) in self.rows.iter().zip(ests.iter_mut()) {
            let (idx, sign) = h.hash_and_sign(item);
            *e = sign * row[idx as usize];
        }
        Self::median(ests) as f64
    }

    fn prune_candidates(&mut self) {
        let bar = self.phi * self.processed as f64;
        let ests: Vec<(u64, f64)> = self
            .candidates
            .keys()
            .map(|&i| (i, self.query(i)))
            .collect();
        for (i, est) in ests {
            if est < bar {
                self.candidates.remove(&i);
            }
        }
    }
}

impl CountSketch {
    /// Candidate tracking after an arrival of `item` whose post-update
    /// median estimate is `est` (shared by the scalar and batch paths).
    #[inline]
    fn track_candidate(&mut self, item: u64, est: i64) {
        if est as f64 >= self.phi * self.processed as f64 {
            self.candidates.insert(item, ());
            if self.candidates.len() > self.candidate_cap {
                self.prune_candidates();
            }
        }
    }
}

impl CountSketch {
    /// The fused per-arrival body: update every row and read the
    /// post-update per-row estimates back in the same pass — each row's
    /// bucket and sign come from **one** polynomial evaluation
    /// ([`PolynomialHash::hash_and_sign`]), where the seed implementation
    /// paid two for the update and two more for the tracking query.
    #[inline]
    fn insert_fused(&mut self, item: u64) {
        self.cache.invalidate();
        self.processed += 1;
        let d = self.rows.len();
        let mut stack = [0i64; 16];
        let mut heap: Vec<i64>;
        let ests: &mut [i64] = if d <= 16 {
            &mut stack[..d]
        } else {
            heap = vec![0; d];
            &mut heap
        };
        for ((h, row), e) in self.rows.iter_mut().zip(ests.iter_mut()) {
            let (idx, sign) = h.hash_and_sign(item);
            let c = row[idx as usize] + sign;
            row[idx as usize] = c;
            *e = sign * c;
        }
        let est = Self::median(ests);
        self.track_candidate(item, est);
    }
}

impl StreamSummary for CountSketch {
    fn insert(&mut self, item: u64) {
        self.insert_fused(item);
    }

    /// Batch ingestion through the tiled row kernel: a row-major hash
    /// pass evaluates each row's degree-2 Mersenne polynomial over the
    /// whole tile — the coefficient loads hoist out and the per-item
    /// evaluation chains, serial in the fused body, run independently
    /// across tile lanes — then an element-order apply pass replays the
    /// packed `(bucket, sign)` words against the counters.
    ///
    /// Two decisions keep this bit-identical to element-wise insertion:
    /// the hash pass reads no counter state (hashes depend only on the
    /// item), and the apply pass — counter update, post-update median,
    /// candidate tracking against `φ·processed` — runs in stream order,
    /// exactly the fused body minus its hash work. An earlier tile split
    /// that pushed tracking out of the apply pass measured ~8% slower;
    /// the version here instead moves *only* the hash evaluation, packs
    /// sign into the scratch word's low bit, and reuses one estimate
    /// buffer instead of zeroing a 16-lane stack frame per arrival.
    fn insert_batch(&mut self, items: &[u64]) {
        if items.is_empty() {
            return;
        }
        self.cache.invalidate();
        const TILE: usize = 256;
        let d = self.rows.len();
        let mut scratch: Vec<u64> = vec![0; d * TILE];
        let mut ests: Vec<i64> = vec![0; d];
        for tile in items.chunks(TILE) {
            for (r, (h, _)) in self.rows.iter().enumerate() {
                for (s, &x) in scratch[r * TILE..].iter_mut().zip(tile) {
                    let (idx, sign) = h.hash_and_sign(x);
                    *s = (idx << 1) | (sign > 0) as u64;
                }
            }
            for (t, &x) in tile.iter().enumerate() {
                self.processed += 1;
                for (r, ((_, row), e)) in self.rows.iter_mut().zip(ests.iter_mut()).enumerate() {
                    let s = scratch[r * TILE + t];
                    let sign = if s & 1 == 1 { 1 } else { -1 };
                    let c = row[(s >> 1) as usize] + sign;
                    row[(s >> 1) as usize] = c;
                    *e = sign * c;
                }
                let est = Self::median(&mut ests);
                self.track_candidate(x, est);
            }
        }
    }
}

impl CountSketch {
    /// The cold report pass behind the cached [`HeavyHitters::report`].
    fn build_report(&self) -> Report {
        let threshold = self.phi * self.processed as f64;
        self.candidates
            .keys()
            .filter_map(|&item| {
                let est = self.query(item);
                (est >= threshold).then_some(ItemEstimate { item, count: est })
            })
            .collect()
    }
}

impl HeavyHitters for CountSketch {
    /// The report — a cache hit after a quiescent period, a candidate
    /// re-query on the first query after a mutation.
    fn report(&self) -> Report {
        self.cache.get_or_build(|| self.build_report()).clone()
    }
}

impl FrequencyEstimator for CountSketch {
    fn estimate(&self, item: u64) -> f64 {
        self.query(item)
    }
}

/// Snapshot format version tag (v2: trailing FNV-1a/64 integrity
/// checksum).
const TAG: &str = "hh.baseline.count-sketch.v2";
/// Previous (checksum-less) format, still accepted for restore.
const TAG_V1: &str = "hh.baseline.count-sketch.v1";
/// Largest candidate capacity a snapshot may claim (real capacities
/// are `Θ(1/φ)`); bounds a restored instance's future growth.
const CANDIDATE_CAP_LIMIT: usize = 1 << 24;

impl Serialize for CountSketch {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        self.rows.serialize(&mut serializer)?;
        serializer.write_u64(self.width)?;
        self.sorted_candidates().serialize(&mut serializer)?;
        serializer.write_u64(self.candidate_cap as u64)?;
        serializer.write_u64(self.key_bits)?;
        serializer.write_u64(self.processed)?;
        serializer.write_f64(self.phi)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for CountSketch {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let rows: Vec<(PolynomialHash, Vec<i64>)> = Vec::deserialize(&mut deserializer)?;
        let width = deserializer.read_u64()?;
        if rows.is_empty() || rows.len() % 2 == 0 {
            return Err(serde::de::Error::invariant("CountSketch depth must be odd"));
        }
        if rows
            .iter()
            .any(|(h, row)| h.range() != width || row.len() as u64 != width)
        {
            return Err(serde::de::Error::invariant(
                "CountSketch row shapes inconsistent",
            ));
        }
        let cand: Vec<u64> = Vec::deserialize(&mut deserializer)?;
        let candidate_cap = deserializer.read_u64()?;
        if candidate_cap == 0 || candidate_cap > CANDIDATE_CAP_LIMIT as u64 {
            return Err(serde::de::Error::invariant(
                "CountSketch candidate capacity out of range",
            ));
        }
        let candidate_cap = candidate_cap as usize;
        if cand.len() > candidate_cap {
            return Err(serde::de::Error::invariant(
                "CountSketch candidates overflow",
            ));
        }
        if cand.windows(2).any(|w| w[0] >= w[1]) {
            return Err(serde::de::Error::invariant(
                "CountSketch candidates unsorted or duplicated",
            ));
        }
        let key_bits = deserializer.read_u64()?;
        if key_bits > 64 {
            return Err(serde::de::Error::invariant(
                "CountSketch key width above 64 bits",
            ));
        }
        let processed = deserializer.read_u64()?;
        // Every arrival adds ±1 to one cell per row, so |cell| ≤
        // processed (and processed itself must fit the signed counter
        // domain for that bound to mean anything).
        if processed > i64::MAX as u64 {
            return Err(serde::de::Error::invariant(
                "CountSketch stream position overflows counters",
            ));
        }
        if rows
            .iter()
            .any(|(_, row)| row.iter().any(|&c| c.unsigned_abs() > processed))
        {
            return Err(serde::de::Error::invariant(
                "CountSketch cell exceeds stream position",
            ));
        }
        let phi = deserializer.read_f64()?;
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(serde::de::Error::invariant("invalid phi in snapshot"));
        }
        let mut candidates = FastMap::default();
        for item in cand {
            candidates.insert(item, ());
        }
        Ok(Self {
            rows,
            width,
            candidates,
            candidate_cap,
            key_bits,
            processed,
            phi,
            cache: QueryCache::new(),
        })
    }
}

impl CountSketch {
    /// Candidate ids in sorted order (deterministic wire format and
    /// merge ordering).
    fn sorted_candidates(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.candidates.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl MergeableSummary for CountSketch {
    /// Seed-aligned merge: with shared row hashes (bucket *and* sign
    /// come from the same polynomial draw), the signed counters add
    /// cell-wise and each row's estimate remains
    /// `s_j(x)·C[j][h_j(x)] = f₁(x) + f₂(x) + noise`, unbiased with the
    /// combined stream's `√F₂` error — the median over rows is the
    /// sketch guarantee at the merged length.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.width != other.width || self.rows.len() != other.rows.len() {
            return Err(MergeError::Incompatible("sketch dimensions"));
        }
        if self
            .rows
            .iter()
            .zip(&other.rows)
            .any(|((ha, _), (hb, _))| ha != hb)
        {
            return Err(MergeError::Incompatible("row hash seeds"));
        }
        if self.phi != other.phi {
            return Err(MergeError::Incompatible("phi thresholds"));
        }
        if self.key_bits != other.key_bits {
            return Err(MergeError::Incompatible("key widths"));
        }
        if self.candidate_cap != other.candidate_cap {
            return Err(MergeError::Incompatible("candidate capacities"));
        }
        self.cache.invalidate();
        // Saturating: stays total for adversarial counts restored from
        // a snapshot (honest counts are bounded by the stream length).
        for ((_, row), (_, orow)) in self.rows.iter_mut().zip(&other.rows) {
            for (c, &o) in row.iter_mut().zip(orow) {
                *c = c.saturating_add(o);
            }
        }
        self.processed = self.processed.saturating_add(other.processed);
        for item in other.sorted_candidates() {
            self.candidates.insert(item, ());
        }
        if self.candidates.len() > self.candidate_cap {
            self.prune_candidates();
        }
        Ok(())
    }

    fn to_bytes(&self) -> bytes::Bytes {
        snapshot::encode(TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(TAG, &[TAG_V1], bytes)
    }
}

impl SpaceUsage for CountSketch {
    fn model_bits(&self) -> u64 {
        let matrix: u64 = self
            .rows
            .iter()
            .map(|(h, row)| {
                h.model_bits()
                    + row
                        .iter()
                        .map(|&c| 1 + gamma_bits(c.unsigned_abs()))
                        .sum::<u64>()
            })
            .sum();
        matrix + self.candidates.len() as u64 * self.key_bits + gamma_bits(self.processed)
    }
    fn heap_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|(_, r)| r.capacity() * 8)
            .sum::<usize>()
            + self.candidates.capacity() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::Rng;

    fn skewed_stream(m: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream = Vec::with_capacity(m);
        stream.extend(std::iter::repeat_n(1u64, m * 3 / 10));
        stream.extend(std::iter::repeat_n(2u64, m / 10));
        for _ in 0..(m - m * 3 / 10 - m / 10) {
            stream.push(rng.gen_range(1000..500_000));
        }
        stream.shuffle(&mut rng);
        stream
    }

    #[test]
    fn estimates_heavy_items_accurately() {
        let m = 50_000;
        let stream = skewed_stream(m, 1);
        let mut cs = CountSketch::with_dimensions(1024, 5, 0.2, 1 << 40, 2);
        cs.insert_all(&stream);
        let truth = (m * 3 / 10) as f64;
        let est = cs.estimate(1);
        assert!(
            (est - truth).abs() <= 0.05 * m as f64,
            "est {est} truth {truth}"
        );
    }

    #[test]
    fn unbiased_for_absent_items() {
        let m = 50_000;
        let stream = skewed_stream(m, 3);
        let mut cs = CountSketch::with_dimensions(1024, 5, 0.2, 1 << 40, 4);
        cs.insert_all(&stream);
        // Absent items: median estimate should hover near zero, far below
        // the heavy item's count (two-sided error is the point vs CM).
        let mut worst: f64 = 0.0;
        for probe in 0..50u64 {
            worst = worst.max(cs.estimate(900_000 + probe).abs());
        }
        assert!(worst <= 0.02 * m as f64, "absent-item error {worst}");
    }

    #[test]
    fn reports_heavy_hitters() {
        let m = 60_000;
        let stream = skewed_stream(m, 5);
        let mut cs = CountSketch::new(0.1, 0.2, 0.1, 1 << 40, 6);
        cs.insert_all(&stream);
        let r = cs.report();
        assert!(r.contains(1), "30% item missing at phi=20%");
        assert!(!r.contains(2), "10% item must not be reported at 20%");
    }

    #[test]
    fn depth_is_forced_odd() {
        let cs = CountSketch::with_dimensions(64, 4, 0.2, 1 << 20, 1);
        assert_eq!(cs.depth() % 2, 1);
    }

    #[test]
    fn batch_insert_matches_element_wise() {
        let m = 30_000;
        let stream = skewed_stream(m, 9);
        let mut scalar = CountSketch::new(0.1, 0.2, 0.1, 1 << 40, 10);
        for &x in &stream {
            scalar.insert(x);
        }
        let mut batch = CountSketch::new(0.1, 0.2, 0.1, 1 << 40, 10);
        for chunk in stream.chunks(1023) {
            batch.insert_batch(chunk);
        }
        assert_eq!(scalar.report().entries(), batch.report().entries());
        for probe in [1u64, 2, 1234, 900_001] {
            assert_eq!(scalar.estimate(probe), batch.estimate(probe));
        }
    }
}
