//! Sticky Sampling \[MM02\]: probabilistic counting with rate doubling.
//!
//! The first `2t` items are counted exactly; thereafter the sampling rate
//! halves every time the window doubles (`t = ε'⁻¹·ln(1/(φδ))`). When the
//! rate halves, each existing counter is atrophied by a sequence of coin
//! flips (geometric shrink), keeping the invariant that every counter is
//! distributed as if its item had been sampled at the *current* rate from
//! the start. Tracked counts undercount by `ε'm` with probability `1 − δ`.

use hh_core::{FrequencyEstimator, HeavyHitters, ItemEstimate, QueryCache, Report, StreamSummary};
use hh_hash::FastMap;
use hh_space::space::{gamma_bits, SpaceUsage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Sticky Sampling summary.
#[derive(Debug, Clone)]
pub struct StickySampling {
    entries: FastMap<u64, u64>,
    /// Current sampling rate is `1/2^rate_exp`.
    rate_exp: u32,
    /// End position (exclusive) of the current rate window.
    window_end: u64,
    /// Base window parameter `t`.
    t: u64,
    key_bits: u64,
    processed: u64,
    eps: f64,
    phi: f64,
    rng: StdRng,
    /// Materialized report; every mutation invalidates (see DESIGN.md §8).
    cache: QueryCache<Report>,
}

impl StickySampling {
    /// Sticky sampling with internal error `ε/2`, failure probability
    /// `delta`, reporting at `φ`.
    pub fn new(eps: f64, phi: f64, delta: f64, universe: u64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(phi > eps && phi <= 1.0, "need eps < phi <= 1");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let eps_int = eps / 2.0;
        let t = ((1.0 / eps_int) * (1.0 / (phi * delta)).ln()).ceil() as u64;
        Self {
            entries: FastMap::default(),
            rate_exp: 0,
            window_end: 2 * t.max(1),
            t: t.max(1),
            key_bits: hh_space::id_bits(universe),
            processed: 0,
            eps,
            phi,
            rng: StdRng::seed_from_u64(seed),
            cache: QueryCache::new(),
        }
    }

    /// Number of tracked items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Items processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The base window parameter `t = ε'⁻¹·ln(1/(φδ))`: the first `2t`
    /// items are counted exactly, and the expected tracked-set size stays
    /// `O(t)` thereafter.
    pub fn window_base(&self) -> u64 {
        self.t
    }

    /// Current sampling rate `2^{-rate_exp}`.
    pub fn rate(&self) -> f64 {
        (0.5f64).powi(self.rate_exp as i32)
    }

    /// Halves the rate and atrophies existing counters: for each entry,
    /// repeatedly flip a fair coin while it comes up tails, decrementing;
    /// drop entries that reach zero (\[MM02\] §4.2).
    fn halve_rate(&mut self) {
        self.rate_exp += 1;
        let rng = &mut self.rng;
        self.entries.retain(|_, c| {
            while *c > 0 && rng.gen_bool(0.5) {
                *c -= 1;
            }
            *c > 0
        });
    }
}

impl StreamSummary for StickySampling {
    fn insert(&mut self, item: u64) {
        self.cache.invalidate();
        self.processed += 1;
        if self.processed > self.window_end {
            self.halve_rate();
            self.window_end *= 2;
        }
        if let Some(c) = self.entries.get_mut(&item) {
            *c += 1;
            return;
        }
        // New items enter with probability = current rate.
        let accept = if self.rate_exp == 0 {
            true
        } else {
            let mask = (1u64 << self.rate_exp.min(63)) - 1;
            self.rng.gen::<u64>() & mask == 0
        };
        if accept {
            self.entries.insert(item, 1);
        }
    }

    /// Batch ingestion: the batch is cut at rate-halving boundaries, so
    /// the inner loop is map work plus (for new items) one admission
    /// coin — the boundary test, the admission mask, and the
    /// stream-position accounting are hoisted to once per chunk. RNG
    /// draw order matches the element-wise path exactly, so same-seed
    /// batch runs are bit-identical.
    fn insert_batch(&mut self, items: &[u64]) {
        if !items.is_empty() {
            self.cache.invalidate();
        }
        let mut rest = items;
        while !rest.is_empty() {
            // Items that cannot trigger a halving: the scalar path halves
            // when the post-increment position exceeds window_end, i.e.
            // at position window_end (pre-increment).
            let safe = (self.window_end - self.processed) as usize;
            if safe == 0 {
                let (&first, later) = rest.split_first().unwrap();
                self.insert(first);
                rest = later;
                continue;
            }
            let (now, later) = rest.split_at(safe.min(rest.len()));
            let mask = (1u64 << self.rate_exp.min(63)) - 1;
            for &x in now {
                if let Some(c) = self.entries.get_mut(&x) {
                    *c += 1;
                    continue;
                }
                // Same draw discipline as the scalar path: no RNG word is
                // consumed while the exact-counting initial rate is live.
                let accept = self.rate_exp == 0 || self.rng.gen::<u64>() & mask == 0;
                if accept {
                    self.entries.insert(x, 1);
                }
            }
            self.processed += now.len() as u64;
            rest = later;
        }
    }
}

impl StickySampling {
    /// The cold report pass behind the cached [`HeavyHitters::report`].
    fn build_report(&self) -> Report {
        let m = self.processed as f64;
        let threshold = (self.phi - self.eps) * m;
        self.entries
            .iter()
            .filter(|&(_, &c)| c as f64 >= threshold)
            .map(|(&item, &c)| ItemEstimate {
                item,
                count: c as f64,
            })
            .collect()
    }
}

impl HeavyHitters for StickySampling {
    /// The report — a cache hit after a quiescent period, an entry scan
    /// on the first query after a mutation.
    fn report(&self) -> Report {
        self.cache.get_or_build(|| self.build_report()).clone()
    }
}

impl FrequencyEstimator for StickySampling {
    fn estimate(&self, item: u64) -> f64 {
        self.entries.get(&item).copied().unwrap_or(0) as f64
    }
}

impl SpaceUsage for StickySampling {
    fn model_bits(&self) -> u64 {
        let entries: u64 = self
            .entries
            .values()
            .map(|&c| self.key_bits + gamma_bits(c))
            .sum();
        entries + gamma_bits(self.processed) + gamma_bits(self.rate_exp as u64)
    }
    fn heap_bytes(&self) -> usize {
        self.entries.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;

    #[test]
    fn heavy_item_survives_rate_halving() {
        let m = 100_000usize;
        let mut stream: Vec<u64> = Vec::with_capacity(m);
        stream.extend(std::iter::repeat_n(9u64, m * 3 / 10));
        stream.extend((0..m as u64 * 7 / 10).map(|i| 1000 + (i % 20_000)));
        let mut rng = StdRng::seed_from_u64(3);
        stream.shuffle(&mut rng);
        let mut ss = StickySampling::new(0.1, 0.2, 0.1, 1 << 20, 7);
        ss.insert_all(&stream);
        let r = ss.report();
        assert!(r.contains(9), "30% item must be reported at phi=20%");
        let est = ss.estimate(9);
        let truth = (m * 3 / 10) as f64;
        assert!(est <= truth + 1.0);
        assert!(est >= truth - 0.1 * m as f64, "est {est} truth {truth}");
    }

    #[test]
    fn table_stays_bounded_on_distinct_stream() {
        // All-distinct stream: expected tracked entries stay O(t), not
        // O(m), because the admission rate keeps halving.
        let mut ss = StickySampling::new(0.05, 0.2, 0.1, 1 << 40, 11);
        for i in 0..200_000u64 {
            ss.insert(i);
        }
        let bound = 6 * ss.window_base() as usize;
        assert!(ss.len() <= bound, "len {} vs bound {bound}", ss.len());
        assert!(ss.rate() < 1.0, "rate should have halved at least once");
    }

    #[test]
    fn exact_during_initial_window() {
        let mut ss = StickySampling::new(0.1, 0.3, 0.1, 1 << 10, 1);
        for x in [1u64, 1, 2, 1, 3] {
            ss.insert(x);
        }
        assert_eq!(ss.estimate(1), 3.0);
        assert_eq!(ss.estimate(2), 1.0);
        assert_eq!(ss.rate(), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let stream: Vec<u64> = (0..30_000).map(|i| i % 500).collect();
        let mut a = StickySampling::new(0.05, 0.2, 0.1, 1 << 20, 42);
        let mut b = StickySampling::new(0.05, 0.2, 0.1, 1 << 20, 42);
        a.insert_all(&stream);
        b.insert_all(&stream);
        assert_eq!(a.report().entries(), b.report().entries());
    }

    #[test]
    fn batch_insert_is_bit_identical_to_element_wise() {
        // Distinct-heavy stream forces several rate halvings, exercising
        // the chunk-boundary path and the coin-draw ordering.
        let stream: Vec<u64> = (0..80_000).map(|i| i % 40_000).collect();
        let mut scalar = StickySampling::new(0.05, 0.2, 0.1, 1 << 20, 77);
        for &x in &stream {
            scalar.insert(x);
        }
        let mut batch = StickySampling::new(0.05, 0.2, 0.1, 1 << 20, 77);
        for chunk in stream.chunks(1789) {
            batch.insert_batch(chunk);
        }
        assert_eq!(scalar.len(), batch.len());
        assert_eq!(scalar.rate(), batch.rate());
        for probe in (0..40_000u64).step_by(97) {
            assert_eq!(scalar.estimate(probe), batch.estimate(probe), "{probe}");
        }
    }
}
