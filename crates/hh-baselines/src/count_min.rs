//! The Count-Min sketch \[CM05\].
//!
//! A `d × w` matrix of counters with one pairwise-independent hash
//! function per row; a point query takes the minimum over rows, giving a
//! one-sided overestimate: `f_x ≤ est(x) ≤ f_x + (e/w)·m` with probability
//! `1 − e^{−d}` per query. For the (ε, φ) problem, a candidate set tracks
//! every item whose estimate ever clears `φ·(position)`; an item that is
//! heavy at the end of the stream clears that bar at its last arrival, so
//! recall is guaranteed without a second pass.
//!
//! Space: `d·w = Θ(ε⁻¹ log δ⁻¹)` counters of `log m` bits plus the
//! candidate ids — the `Θ(ε⁻¹ log m)` shape that Table 1's optimal bound
//! beats.

use hh_core::mergeable::snapshot;
use hh_core::{
    FrequencyEstimator, HeavyHitters, ItemEstimate, MergeError, MergeableSummary, QueryCache,
    Report, RestoreReport, SnapshotError, StreamSummary,
};
use hh_hash::FastMap;
use hh_hash::{CarterWegmanFamily, CarterWegmanHash, HashFamily, HashFunction};
use hh_space::space::{gamma_bits, SpaceUsage};
use hh_space::VarCounterArray;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The Count-Min sketch with heavy-hitter candidate tracking.
#[derive(Debug, Clone)]
pub struct CountMin {
    rows: Vec<(CarterWegmanHash, VarCounterArray)>,
    width: u64,
    /// Conservative update: only raise the minimal counters. Halves the
    /// overestimate in practice at no space cost (an ablation knob).
    conservative: bool,
    candidates: FastMap<u64, ()>,
    candidate_cap: usize,
    key_bits: u64,
    processed: u64,
    eps: f64,
    phi: f64,
    /// Materialized report; every mutation invalidates (see DESIGN.md §8).
    cache: QueryCache<Report>,
}

impl CountMin {
    /// Sketch with width `⌈2e/ε⌉` and depth `⌈ln(1/δ)⌉`, reporting at `φ`.
    pub fn new(eps: f64, phi: f64, delta: f64, universe: u64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(phi > eps && phi <= 1.0, "need eps < phi <= 1");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = ((2.0 * std::f64::consts::E / eps).ceil() as u64).max(2);
        let depth = ((1.0 / delta).ln().ceil() as usize).max(1);
        Self::with_dimensions(width, depth, eps, phi, universe, seed, false)
    }

    /// Fully parameterized constructor.
    pub fn with_dimensions(
        width: u64,
        depth: usize,
        eps: f64,
        phi: f64,
        universe: u64,
        seed: u64,
        conservative: bool,
    ) -> Self {
        assert!(width >= 2 && depth >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let family = CarterWegmanFamily::new(width);
        let rows = (0..depth)
            .map(|_| {
                (
                    family.sample(&mut rng),
                    VarCounterArray::new(width as usize),
                )
            })
            .collect();
        Self {
            rows,
            width,
            conservative,
            candidates: FastMap::default(),
            candidate_cap: ((8.0 / phi).ceil() as usize).max(8),
            key_bits: hh_space::id_bits(universe),
            processed: 0,
            eps,
            phi,
            cache: QueryCache::new(),
        }
    }

    /// Width `w` of each row.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Depth `d` (number of rows).
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Items processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of live heavy-hitter candidates.
    pub fn candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The configured additive-error fraction ε (the width is `⌈2e/ε⌉`).
    pub fn eps(&self) -> f64 {
        self.eps
    }

    fn query(&self, item: u64) -> u64 {
        self.rows
            .iter()
            .map(|(h, row)| row.get(h.hash(item) as usize))
            .min()
            .unwrap_or(0)
    }

    fn prune_candidates(&mut self) {
        let bar = self.phi * self.processed as f64;
        let estimates: Vec<(u64, f64)> = self
            .candidates
            .keys()
            .map(|&i| (i, self.query(i) as f64))
            .collect();
        for (i, est) in estimates {
            if est < bar {
                self.candidates.remove(&i);
            }
        }
    }

    /// Candidate tracking after an arrival of `item` whose post-update
    /// point estimate is `est` (shared by the scalar and batch paths).
    #[inline]
    fn track_candidate(&mut self, item: u64, est: u64) {
        if est as f64 >= self.phi * self.processed as f64 {
            self.candidates.insert(item, ());
            if self.candidates.len() > self.candidate_cap {
                self.prune_candidates();
            }
        }
    }
}

impl StreamSummary for CountMin {
    fn insert(&mut self, item: u64) {
        self.cache.invalidate();
        self.processed += 1;
        if self.conservative {
            let current = self.query(item);
            for (h, row) in &mut self.rows {
                let idx = h.hash(item) as usize;
                if row.get(idx) < current + 1 {
                    row.set(idx, current + 1);
                }
            }
        } else {
            for (h, row) in &mut self.rows {
                row.increment(h.hash(item) as usize);
            }
        }
        // Candidate tracking: an item heavy at stream end clears this bar
        // at its final arrival (est ≥ f_final > φm ≥ φ·processed).
        let est = self.query(item);
        self.track_candidate(item, est);
    }

    /// Batch ingestion, split into a hash pass and an update pass per
    /// tile: the hash pass evaluates each row's Carter–Wegman function
    /// over the whole tile in a tight loop (independent iterations, so
    /// the field-arithmetic chains of consecutive items overlap), and
    /// the update pass replays the precomputed buckets in element order,
    /// folding the point query into the increment returns — one hash
    /// evaluation per row per item instead of the scalar path's two.
    /// Final state and candidate decisions are bit-identical to
    /// element-wise insertion.
    fn insert_batch(&mut self, items: &[u64]) {
        if !items.is_empty() {
            self.cache.invalidate();
        }
        if self.conservative {
            // The conservative-update ablation interleaves queries and
            // raises in a way the two-pass split cannot reproduce.
            for &x in items {
                self.insert(x);
            }
            return;
        }
        const TILE: usize = 256;
        let d = self.rows.len();
        let mut scratch: Vec<u64> = vec![0; d * TILE];
        for tile in items.chunks(TILE) {
            for (r, (h, _)) in self.rows.iter().enumerate() {
                for (s, &x) in scratch[r * TILE..].iter_mut().zip(tile) {
                    *s = h.hash(x);
                }
            }
            for (t, &x) in tile.iter().enumerate() {
                self.processed += 1;
                let mut est = u64::MAX;
                for r in 0..d {
                    let idx = scratch[r * TILE + t] as usize;
                    est = est.min(self.rows[r].1.increment_raw(idx));
                }
                self.track_candidate(x, est);
            }
        }
        // Deferred half of the raw increments: one O(width) resync per
        // batch restores the incremental gamma accounting exactly.
        for (_, row) in &mut self.rows {
            row.resync_model_bits();
        }
    }
}

impl CountMin {
    /// The cold report pass behind the cached [`HeavyHitters::report`].
    fn build_report(&self) -> Report {
        let m = self.processed as f64;
        let threshold = self.phi * m;
        self.candidates
            .keys()
            .filter_map(|&item| {
                let est = self.query(item) as f64;
                (est >= threshold).then_some(ItemEstimate { item, count: est })
            })
            .collect()
    }
}

impl HeavyHitters for CountMin {
    /// The report — a cache hit after a quiescent period, a candidate
    /// re-query on the first query after a mutation.
    fn report(&self) -> Report {
        self.cache.get_or_build(|| self.build_report()).clone()
    }
}

impl FrequencyEstimator for CountMin {
    fn estimate(&self, item: u64) -> f64 {
        self.query(item) as f64
    }
}

/// Snapshot format version tag.
const TAG: &str = "hh.baseline.count-min.v2";
/// Previous (checksum-less) tag, still accepted on restore.
const TAG_V1: &str = "hh.baseline.count-min.v1";
/// Decode-time ceiling on the candidate capacity a snapshot may claim.
const CANDIDATE_CAP_LIMIT: usize = 1 << 24;

impl Serialize for CountMin {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        self.rows.serialize(&mut serializer)?;
        serializer.write_u64(self.width)?;
        serializer.write_bool(self.conservative)?;
        self.sorted_candidates().serialize(&mut serializer)?;
        serializer.write_u64(self.candidate_cap as u64)?;
        serializer.write_u64(self.key_bits)?;
        serializer.write_u64(self.processed)?;
        serializer.write_f64(self.eps)?;
        serializer.write_f64(self.phi)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for CountMin {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let rows: Vec<(CarterWegmanHash, VarCounterArray)> = Vec::deserialize(&mut deserializer)?;
        let width = deserializer.read_u64()?;
        if rows.is_empty() || width == 0 {
            return Err(serde::de::Error::invariant(
                "CountMin needs at least one row",
            ));
        }
        if rows
            .iter()
            .any(|(h, row)| h.range() != width || row.len() as u64 != width)
        {
            return Err(serde::de::Error::invariant(
                "CountMin row shapes inconsistent",
            ));
        }
        let conservative = deserializer.read_bool()?;
        let cand: Vec<u64> = Vec::deserialize(&mut deserializer)?;
        let candidate_cap = deserializer.read_u64()?;
        if candidate_cap == 0 || candidate_cap > CANDIDATE_CAP_LIMIT as u64 {
            return Err(serde::de::Error::invariant(
                "CountMin candidate capacity out of range",
            ));
        }
        let candidate_cap = candidate_cap as usize;
        if cand.len() > candidate_cap {
            return Err(serde::de::Error::invariant("CountMin candidates overflow"));
        }
        if cand.windows(2).any(|w| w[0] >= w[1]) {
            return Err(serde::de::Error::invariant(
                "CountMin candidates not sorted",
            ));
        }
        let key_bits = deserializer.read_u64()?;
        if key_bits > 64 {
            return Err(serde::de::Error::invariant("key width exceeds 64 bits"));
        }
        let processed = deserializer.read_u64()?;
        let eps = deserializer.read_f64()?;
        let phi = deserializer.read_f64()?;
        if !(eps > 0.0 && eps < phi && phi <= 1.0) {
            return Err(serde::de::Error::invariant(
                "invalid (eps, phi) in snapshot",
            ));
        }
        let mut candidates = FastMap::default();
        for item in cand {
            candidates.insert(item, ());
        }
        Ok(Self {
            rows,
            width,
            conservative,
            candidates,
            candidate_cap,
            key_bits,
            processed,
            eps,
            phi,
            cache: QueryCache::new(),
        })
    }
}

impl CountMin {
    /// Candidate ids in sorted order (deterministic wire format and
    /// merge ordering; the map iteration order is hasher-dependent).
    fn sorted_candidates(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.candidates.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl MergeableSummary for CountMin {
    /// Seed-aligned merge: both sketches must share every row hash
    /// (same constructor seed), so each cell counts the same preimage
    /// class and the matrices add cell-wise. Per row,
    /// `c₁[i] + c₂[i] ≥ f₁(x) + f₂(x)` for every `x` in the cell, so
    /// the min-over-rows estimate still never undercounts, and the
    /// expected overshoot is `(e/w)·(m₁+m₂)` — the sketch guarantee at
    /// the combined length. Candidate sets union and re-prune against
    /// the combined threshold.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.width != other.width || self.rows.len() != other.rows.len() {
            return Err(MergeError::Incompatible("sketch dimensions"));
        }
        if self
            .rows
            .iter()
            .zip(&other.rows)
            .any(|((ha, _), (hb, _))| ha != hb)
        {
            return Err(MergeError::Incompatible("row hash seeds"));
        }
        if self.conservative != other.conservative {
            return Err(MergeError::Incompatible("update modes"));
        }
        if self.eps != other.eps || self.phi != other.phi {
            return Err(MergeError::Incompatible("(eps, phi) parameters"));
        }
        if self.key_bits != other.key_bits {
            return Err(MergeError::Incompatible("key widths"));
        }
        self.cache.invalidate();
        for ((_, row), (_, orow)) in self.rows.iter_mut().zip(&other.rows) {
            row.merge_add(orow);
        }
        self.processed = self.processed.saturating_add(other.processed);
        for item in other.sorted_candidates() {
            self.candidates.insert(item, ());
        }
        // The union can exceed the cap; one prune against the combined
        // stream restores it (and drops keys that were only heavy in
        // one shard's shorter substream).
        if self.candidates.len() > self.candidate_cap {
            self.prune_candidates();
        }
        Ok(())
    }

    fn to_bytes(&self) -> bytes::Bytes {
        snapshot::encode(TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(TAG, &[TAG_V1], bytes)
    }
}

impl SpaceUsage for CountMin {
    fn model_bits(&self) -> u64 {
        let matrix: u64 = self
            .rows
            .iter()
            .map(|(h, row)| h.model_bits() + row.model_bits())
            .sum();
        matrix + self.candidates.len() as u64 * self.key_bits + gamma_bits(self.processed)
    }
    fn heap_bytes(&self) -> usize {
        self.rows.iter().map(|(_, r)| r.heap_bytes()).sum::<usize>()
            + self.candidates.capacity() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::Rng;

    fn zipfish_stream(m: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream = Vec::with_capacity(m);
        stream.extend(std::iter::repeat_n(1u64, m * 3 / 10));
        stream.extend(std::iter::repeat_n(2u64, m * 15 / 100));
        for _ in 0..(m - m * 3 / 10 - m * 15 / 100) {
            stream.push(rng.gen_range(1000..200_000));
        }
        stream.shuffle(&mut rng);
        stream
    }

    #[test]
    fn never_undercounts() {
        let stream = zipfish_stream(40_000, 1);
        let mut cm = CountMin::new(0.02, 0.1, 0.05, 1 << 40, 2);
        cm.insert_all(&stream);
        for probe in [1u64, 2, 1234, 999_999] {
            let truth = stream.iter().filter(|&&x| x == probe).count() as f64;
            assert!(cm.estimate(probe) >= truth, "probe {probe}");
        }
    }

    #[test]
    fn overestimate_bounded() {
        let stream = zipfish_stream(40_000, 3);
        let mut cm = CountMin::new(0.02, 0.1, 0.05, 1 << 40, 4);
        cm.insert_all(&stream);
        let m = stream.len() as f64;
        // Check several absent items: estimate ≤ εm (the CM guarantee is
        // e/w per row; width chosen for ε/2·m average).
        for probe in 0..20u64 {
            let absent = 500_000 + probe;
            assert!(
                cm.estimate(absent) <= 0.02 * m,
                "absent item {absent} overestimated by {}",
                cm.estimate(absent)
            );
        }
    }

    #[test]
    fn finds_heavy_hitters_with_candidates() {
        let stream = zipfish_stream(60_000, 5);
        let mut cm = CountMin::new(0.05, 0.2, 0.05, 1 << 40, 6);
        cm.insert_all(&stream);
        let r = cm.report();
        assert!(r.contains(1), "30% item missing");
        assert!(!r.contains(2) || 0.15 >= 0.2 - 0.05, "15% item at phi=20%");
        assert!(cm.candidates() <= cm.candidate_cap);
    }

    #[test]
    fn conservative_update_tightens_estimates() {
        let stream = zipfish_stream(40_000, 7);
        let mut plain = CountMin::with_dimensions(64, 4, 0.05, 0.2, 1 << 40, 8, false);
        let mut cons = CountMin::with_dimensions(64, 4, 0.05, 0.2, 1 << 40, 8, true);
        plain.insert_all(&stream);
        cons.insert_all(&stream);
        // Conservative estimates are never larger, summed over probes.
        let probes: Vec<u64> = (0..200).map(|i| 1000 + i * 37).collect();
        let sum_plain: f64 = probes.iter().map(|&p| plain.estimate(p)).sum();
        let sum_cons: f64 = probes.iter().map(|&p| cons.estimate(p)).sum();
        assert!(sum_cons <= sum_plain, "{sum_cons} > {sum_plain}");
        // And still never undercounts.
        for &p in &probes {
            let truth = stream.iter().filter(|&&x| x == p).count() as f64;
            assert!(cons.estimate(p) >= truth);
        }
    }

    #[test]
    fn batch_insert_matches_element_wise() {
        for conservative in [false, true] {
            let stream = zipfish_stream(30_000, 9);
            let mut scalar = CountMin::with_dimensions(64, 4, 0.05, 0.2, 1 << 40, 8, conservative);
            for &x in &stream {
                scalar.insert(x);
            }
            let mut batch = CountMin::with_dimensions(64, 4, 0.05, 0.2, 1 << 40, 8, conservative);
            for chunk in stream.chunks(999) {
                batch.insert_batch(chunk);
            }
            assert_eq!(scalar.report().entries(), batch.report().entries());
            for probe in [1u64, 2, 1234, 500_001] {
                assert_eq!(scalar.estimate(probe), batch.estimate(probe));
            }
            assert_eq!(scalar.model_bits(), batch.model_bits());
        }
    }

    #[test]
    fn dimensions_accessors() {
        let cm = CountMin::new(0.1, 0.3, 0.1, 1 << 20, 1);
        assert!(cm.width() >= (2.0 * std::f64::consts::E / 0.1) as u64);
        assert!(cm.depth() >= 2);
    }
}
