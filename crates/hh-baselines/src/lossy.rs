//! Lossy Counting \[MM02\]: deterministic windowed pruning.
//!
//! The stream is cut into windows of width `w = ⌈1/ε'⌉`. Each tracked item
//! carries `(count, Δ)` where `Δ` is the maximum number of occurrences it
//! could have had before being tracked (the window index at insertion
//! minus one). At every window boundary, entries with
//! `count + Δ ≤ current_window` are pruned. Guarantees:
//!
//! * estimates undercount by at most `ε'm`,
//! * at most `(1/ε')·log(ε'm)` entries are live (the paper's bound), so
//!   space is `O(ε'⁻¹ log(ε'm) (log n + log m))` bits — *worse* than
//!   Misra–Gries by a log factor, which experiment E7 shows.

use hh_core::mergeable::snapshot;
use hh_core::{
    FrequencyEstimator, HeavyHitters, ItemEstimate, MergeError, MergeableSummary, QueryCache,
    Report, RestoreReport, SnapshotError, StreamSummary,
};
use hh_hash::FastMap;
use hh_space::space::{gamma_bits, SpaceUsage};
use serde::{Deserialize, Serialize};

/// The Lossy Counting summary.
#[derive(Debug, Clone)]
pub struct LossyCounting {
    /// item → (count since tracked, Δ).
    entries: FastMap<u64, (u64, u64)>,
    window: u64,
    current_window: u64,
    in_window: u64,
    key_bits: u64,
    processed: u64,
    eps: f64,
    phi: f64,
    /// Materialized report; every mutation invalidates (see DESIGN.md §8).
    cache: QueryCache<Report>,
}

impl LossyCounting {
    /// Lossy counting with internal error `ε/2` (leaving threshold slack)
    /// reporting at `φ`.
    pub fn new(eps: f64, phi: f64, universe: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(phi > eps && phi <= 1.0, "need eps < phi <= 1");
        Self {
            entries: FastMap::default(),
            window: (2.0 / eps).ceil() as u64,
            current_window: 1,
            in_window: 0,
            key_bits: hh_space::id_bits(universe),
            processed: 0,
            eps,
            phi,
            cache: QueryCache::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Items processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    fn prune(&mut self) {
        let b = self.current_window;
        self.entries.retain(|_, &mut (c, d)| c + d > b);
    }
}

impl StreamSummary for LossyCounting {
    fn insert(&mut self, item: u64) {
        self.cache.invalidate();
        self.processed += 1;
        self.in_window += 1;
        match self.entries.get_mut(&item) {
            Some((c, _)) => *c += 1,
            None => {
                self.entries.insert(item, (1, self.current_window - 1));
            }
        }
        if self.in_window == self.window {
            self.prune();
            self.current_window += 1;
            self.in_window = 0;
        }
    }

    /// Batch ingestion: the batch is cut at window boundaries, so the
    /// inner loop is pure map work — the boundary test, the Δ for newly
    /// tracked items, and the stream-position accounting are all hoisted
    /// to once per window-aligned chunk. State after the batch is
    /// bit-identical to element-wise insertion.
    fn insert_batch(&mut self, items: &[u64]) {
        if !items.is_empty() {
            self.cache.invalidate();
        }
        let mut rest = items;
        while !rest.is_empty() {
            let room = (self.window - self.in_window) as usize;
            let (now, later) = rest.split_at(room.min(rest.len()));
            let delta = self.current_window - 1;
            for &x in now {
                match self.entries.get_mut(&x) {
                    Some((c, _)) => *c += 1,
                    None => {
                        self.entries.insert(x, (1, delta));
                    }
                }
            }
            self.processed += now.len() as u64;
            self.in_window += now.len() as u64;
            if self.in_window == self.window {
                self.prune();
                self.current_window += 1;
                self.in_window = 0;
            }
            rest = later;
        }
    }
}

impl LossyCounting {
    /// The cold report pass behind the cached [`HeavyHitters::report`].
    fn build_report(&self) -> Report {
        // Standard rule: output items with count ≥ (φ − ε')m; estimates
        // compensated upward by Δ/2 would bias both ways, so report the
        // undercounting estimate and a threshold at (φ − ε/2 − ε'(=ε/2)).
        let m = self.processed as f64;
        let threshold = (self.phi - self.eps) * m;
        self.entries
            .iter()
            .filter(|&(_, &(c, _))| c as f64 >= threshold)
            .map(|(&item, &(c, _))| ItemEstimate {
                item,
                count: c as f64,
            })
            .collect()
    }
}

impl HeavyHitters for LossyCounting {
    /// The report — a cache hit after a quiescent period, an entry scan
    /// on the first query after a mutation.
    fn report(&self) -> Report {
        self.cache.get_or_build(|| self.build_report()).clone()
    }
}

impl FrequencyEstimator for LossyCounting {
    fn estimate(&self, item: u64) -> f64 {
        self.entries
            .get(&item)
            .map(|&(c, _)| c as f64)
            .unwrap_or(0.0)
    }
}

/// Snapshot format version tag (v2: trailing FNV-1a/64 integrity
/// checksum).
const TAG: &str = "hh.baseline.lossy-counting.v2";
/// Previous (checksum-less) format, still accepted for restore.
const TAG_V1: &str = "hh.baseline.lossy-counting.v1";

impl Serialize for LossyCounting {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_u64(self.window)?;
        serializer.write_u64(self.current_window)?;
        serializer.write_u64(self.in_window)?;
        serializer.write_u64(self.key_bits)?;
        serializer.write_u64(self.processed)?;
        serializer.write_f64(self.eps)?;
        serializer.write_f64(self.phi)?;
        self.sorted_entries().serialize(&mut serializer)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for LossyCounting {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let window = deserializer.read_u64()?;
        if window == 0 {
            return Err(serde::de::Error::invariant(
                "LossyCounting window must be positive",
            ));
        }
        let current_window = deserializer.read_u64()?;
        let in_window = deserializer.read_u64()?;
        if in_window >= window || current_window == 0 {
            return Err(serde::de::Error::invariant(
                "LossyCounting window state inconsistent",
            ));
        }
        let key_bits = deserializer.read_u64()?;
        if key_bits > 64 {
            return Err(serde::de::Error::invariant(
                "LossyCounting key width above 64 bits",
            ));
        }
        let processed = deserializer.read_u64()?;
        let eps = deserializer.read_f64()?;
        let phi = deserializer.read_f64()?;
        if !(eps > 0.0 && eps < phi && phi <= 1.0) {
            return Err(serde::de::Error::invariant(
                "invalid (eps, phi) in snapshot",
            ));
        }
        let pairs: Vec<(u64, (u64, u64))> = Vec::deserialize(&mut deserializer)?;
        let mut entries = FastMap::default();
        for (item, cd) in pairs {
            if cd.0 == 0 {
                return Err(serde::de::Error::invariant(
                    "LossyCounting zero-count entry",
                ));
            }
            if cd.0 > processed {
                return Err(serde::de::Error::invariant(
                    "LossyCounting count exceeds stream position",
                ));
            }
            if entries.insert(item, cd).is_some() {
                return Err(serde::de::Error::invariant("LossyCounting duplicate items"));
            }
        }
        Ok(Self {
            entries,
            window,
            current_window,
            in_window,
            key_bits,
            processed,
            eps,
            phi,
            cache: QueryCache::new(),
        })
    }
}

impl LossyCounting {
    /// Entries in sorted item order (deterministic wire format; the map
    /// iteration order is hasher-dependent).
    fn sorted_entries(&self) -> Vec<(u64, (u64, u64))> {
        let mut v: Vec<(u64, (u64, u64))> = self.entries.iter().map(|(&i, &cd)| (i, cd)).collect();
        v.sort_unstable_by_key(|&(i, _)| i);
        v
    }
}

impl MergeableSummary for LossyCounting {
    /// The mergeable-summaries Lossy Counting merge: counts add for
    /// items tracked on both sides (`Δ`s add too), while an item
    /// tracked on only one side inherits the *other* side's untracked
    /// bound — its current window index — as extra `Δ`. The merged
    /// window index is the sum, so the invariants survive: tracked
    /// items keep `c ≤ f ≤ c + Δ` with `Δ ≤ b₁ + b₂ ≈ ε'(m₁+m₂)`, and
    /// untracked items keep `f ≤ b₁ + b₂`. One prune against the
    /// combined index restores the live-entry bound.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.window != other.window {
            return Err(MergeError::Incompatible("window widths"));
        }
        if self.eps != other.eps || self.phi != other.phi {
            return Err(MergeError::Incompatible("(eps, phi) parameters"));
        }
        if self.key_bits != other.key_bits {
            return Err(MergeError::Incompatible("key widths"));
        }
        self.cache.invalidate();
        // Untracked-mass bounds: an item absent from a summary has at
        // most (current_window) occurrences in its substream (the prune
        // invariant, counting the partial window conservatively).
        let b_self = self.current_window;
        let b_other = other.current_window;
        // Items tracked only on our side could have had up to b_other
        // occurrences in the other substream. Charge it to *every* own
        // entry up front (a plain iteration, no hashing), then let the
        // pass over `other` cancel the charge for the items it tracks —
        // this replaces the seed implementation's second full pass with
        // one hash lookup per own entry.
        // All counter arithmetic below saturates: honestly built
        // summaries sit far from u64::MAX, but a restored snapshot may
        // not, and the merge must stay total (Δ is a conservative upper
        // bound, so saturation only loosens it — never unsound).
        for (_, entry) in self.entries.iter_mut() {
            entry.1 = entry.1.saturating_add(b_other);
        }
        for (item, &(c, d)) in other.entries.iter() {
            match self.entries.get_mut(item) {
                Some((sc, sd)) => {
                    *sc = sc.saturating_add(c);
                    // The blanket b_other charge does not apply to items
                    // other actually tracks; their own Δ adds instead.
                    *sd = sd.saturating_sub(b_other).saturating_add(d);
                }
                None => {
                    self.entries.insert(*item, (c, d.saturating_add(b_self)));
                }
            }
        }
        self.processed = self.processed.saturating_add(other.processed);
        // Combined window position: completed windows add; the partial
        // windows coalesce (their items are all accounted in c/Δ).
        self.in_window = self.in_window.saturating_add(other.in_window) % self.window;
        self.current_window = (self.processed / self.window).saturating_add(1);
        let b = self.current_window;
        self.entries
            .retain(|_, &mut (c, d)| c.saturating_add(d) > b);
        Ok(())
    }

    fn to_bytes(&self) -> bytes::Bytes {
        snapshot::encode(TAG, self)
    }

    fn from_bytes_report(bytes: &[u8]) -> Result<(Self, RestoreReport), SnapshotError> {
        snapshot::decode_compat(TAG, &[TAG_V1], bytes)
    }
}

impl SpaceUsage for LossyCounting {
    fn model_bits(&self) -> u64 {
        let entries: u64 = self
            .entries
            .iter()
            .map(|(_, &(c, d))| self.key_bits + gamma_bits(c) + gamma_bits(d))
            .sum();
        entries + gamma_bits(self.processed)
    }
    fn heap_bytes(&self) -> usize {
        self.entries.capacity() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn undercount_bounded_by_eps_m() {
        let mut rng = StdRng::seed_from_u64(2);
        let stream: Vec<u64> = (0..50_000)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    3
                } else {
                    rng.gen_range(0..5000)
                }
            })
            .collect();
        let eps = 0.02;
        let mut lc = LossyCounting::new(eps, 0.1, 1 << 20);
        lc.insert_all(&stream);
        let truth = stream.iter().filter(|&&x| x == 3).count() as f64;
        let est = lc.estimate(3);
        assert!(est <= truth);
        assert!(
            est >= truth - eps * 50_000.0,
            "undercount too large: {est} vs {truth}"
        );
    }

    #[test]
    fn prunes_infrequent_items() {
        let mut lc = LossyCounting::new(0.1, 0.3, 1 << 20);
        // 10000 distinct singletons: table must stay near 1/ε' after
        // pruning, not grow linearly.
        for i in 0..10_000u64 {
            lc.insert(i);
        }
        assert!(lc.len() <= 2 * lc.window as usize, "len {}", lc.len());
    }

    #[test]
    fn report_keeps_heavy_drops_light() {
        let mut lc = LossyCounting::new(0.1, 0.3, 1 << 20);
        let mut stream = Vec::new();
        stream.extend(std::iter::repeat_n(1u64, 4000)); // 40%
        stream.extend(std::iter::repeat_n(2u64, 1500)); // 15% ≤ (φ−ε)m = 20%
        stream.extend((0..4500).map(|i| 100 + i % 1000));
        let mut rng = StdRng::seed_from_u64(4);
        use rand::seq::SliceRandom;
        stream.shuffle(&mut rng);
        lc.insert_all(&stream);
        let r = lc.report();
        assert!(r.contains(1));
        assert!(!r.contains(2));
    }

    #[test]
    fn deterministic() {
        let stream: Vec<u64> = (0..5000).map(|i| i % 97).collect();
        let mut a = LossyCounting::new(0.05, 0.2, 128);
        let mut b = LossyCounting::new(0.05, 0.2, 128);
        a.insert_all(&stream);
        b.insert_all(&stream);
        assert_eq!(a.report().entries(), b.report().entries());
    }

    #[test]
    fn batch_insert_matches_element_wise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let stream: Vec<u64> = (0..25_000).map(|_| rng.gen_range(0..3000)).collect();
        let mut scalar = LossyCounting::new(0.05, 0.2, 1 << 20);
        for &x in &stream {
            scalar.insert(x);
        }
        // Chunk sizes chosen to land both inside and across windows.
        let mut batch = LossyCounting::new(0.05, 0.2, 1 << 20);
        for chunk in stream.chunks(61) {
            batch.insert_batch(chunk);
        }
        assert_eq!(scalar.len(), batch.len());
        for probe in 0..3000u64 {
            assert_eq!(scalar.estimate(probe), batch.estimate(probe), "{probe}");
        }
        assert_eq!(scalar.model_bits(), batch.model_bits());
    }
}
