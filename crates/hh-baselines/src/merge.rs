//! Mergeable summaries and the shard-and-merge parallel runner (extension
//! S19 in DESIGN.md).
//!
//! Misra–Gries and Space-Saving summaries are *mergeable* (Agarwal,
//! Cormode, Huang, Phillips, Wei, Yi 2012): two summaries of capacity `k`
//! built on streams `A` and `B` combine into one capacity-`k` summary of
//! `A ⊎ B` with the same `(|A|+|B|)/(k+1)` error bound. That turns a
//! single-pass algorithm into a data-parallel one: shard the stream,
//! summarize shards on separate threads (std scoped threads), merge.
//! The property test in this module is the correctness story; the
//! `crossover` experiment uses the runner for throughput numbers.

use crate::misra_gries::MisraGriesBaseline;
use crate::space_saving::SpaceSaving;
use hh_core::StreamSummary;

/// Summaries of disjoint substreams that can be combined into a summary
/// of the concatenation, preserving their error guarantee.
pub trait Mergeable: Sized {
    /// Folds `other` (a summary of a disjoint substream) into `self`.
    fn merge_from(&mut self, other: Self);
}

impl Mergeable for MisraGriesBaseline {
    fn merge_from(&mut self, other: Self) {
        self.table_mut().merge(other.table());
    }
}

impl Mergeable for SpaceSaving {
    /// The \[ACH+12\] Space-Saving merge. For each item, each summary
    /// contributes its monitored `(count, err)`, or `(min_count,
    /// min_count)` if the item is unmonitored — sound because an
    /// unmonitored item's true count is at most `min_count`, so charging
    /// exactly that keeps both the overestimate (`f ≤ count`) and the
    /// error (`count − err ≤ f`) invariants. The top `k` combined triples
    /// are kept.
    fn merge_from(&mut self, other: Self) {
        use std::collections::HashMap;
        let self_min = self.min_count();
        let other_min = other.min_count();
        let a: HashMap<u64, (u64, u64)> = self
            .entries()
            .into_iter()
            .map(|(i, c, e)| (i, (c, e)))
            .collect();
        let b: HashMap<u64, (u64, u64)> = other
            .entries()
            .into_iter()
            .map(|(i, c, e)| (i, (c, e)))
            .collect();
        let mut combined: Vec<(u64, u64, u64)> = a
            .keys()
            .chain(b.keys())
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .map(|&item| {
                let (ca, ea) = a.get(&item).copied().unwrap_or((self_min, self_min));
                let (cb, eb) = b.get(&item).copied().unwrap_or((other_min, other_min));
                (item, ca + cb, ea + eb)
            })
            .collect();
        combined.sort_unstable_by_key(|&(i, c, _)| (std::cmp::Reverse(c), i));
        combined.truncate(self.capacity());
        let total = self.processed() + other.processed();
        let mut fresh = self.clone_empty();
        fresh.restore_entries(combined, total);
        *self = fresh;
    }
}

/// Summarizes `stream` with `shards` parallel workers, each building an
/// independent summary with `make()`, then merges left to right.
///
/// The merged summary has the union stream's guarantee (see
/// [`Mergeable`]); the test suite verifies estimates against a
/// single-summary run.
pub fn shard_and_merge<S, F>(stream: &[u64], shards: usize, make: F) -> S
where
    S: StreamSummary + Mergeable + Send,
    F: Fn() -> S + Send + Sync,
{
    assert!(shards >= 1, "need at least one shard");
    let chunk = stream.len().div_ceil(shards).max(1);
    let make = &make;
    let mut summaries: Vec<S> = std::thread::scope(|scope| {
        let handles: Vec<_> = stream
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut s = make();
                    s.insert_all(part);
                    s
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker"))
            .collect()
    });
    let mut acc = summaries.remove(0);
    for s in summaries {
        acc.merge_from(s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::FrequencyEstimator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_stream(m: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    7
                } else {
                    rng.gen_range(0..universe)
                }
            })
            .collect()
    }

    #[test]
    fn merged_misra_gries_keeps_error_bound() {
        let stream = random_stream(40_000, 500, 1);
        let merged = shard_and_merge(&stream, 4, || MisraGriesBaseline::new(0.05, 0.2, 1 << 20));
        let bound = stream.len() as f64 * 0.05 / 2.0 + 1.0; // k = 2/ε
        for probe in [7u64, 0, 100, 499] {
            let truth = stream.iter().filter(|&&x| x == probe).count() as f64;
            let est = merged.estimate(probe);
            assert!(est <= truth, "probe {probe} overestimated");
            assert!(est + bound >= truth, "probe {probe} undercount too big");
        }
    }

    #[test]
    fn merged_space_saving_keeps_bounds() {
        let stream = random_stream(40_000, 500, 2);
        let merged = shard_and_merge(&stream, 4, || SpaceSaving::with_capacity(64, 0.2, 1 << 20));
        let bound = 2.0 * stream.len() as f64 / 64.0;
        for (item, count, err) in merged.entries() {
            let truth = stream.iter().filter(|&&x| x == item).count() as f64;
            assert!(
                count as f64 + 1.0 >= truth,
                "item {item}: merged count {count} < truth {truth}"
            );
            assert!(
                (count - err) as f64 <= truth + bound,
                "item {item}: lower bound violated"
            );
        }
        // Heavy item must survive the merge.
        assert!(merged.entries().iter().any(|&(i, _, _)| i == 7));
    }

    #[test]
    fn single_shard_equals_sequential() {
        let stream = random_stream(10_000, 100, 3);
        let merged = shard_and_merge(&stream, 1, || MisraGriesBaseline::new(0.1, 0.3, 1 << 10));
        let mut seq = MisraGriesBaseline::new(0.1, 0.3, 1 << 10);
        seq.insert_all(&stream);
        for probe in 0..100u64 {
            assert_eq!(merged.estimate(probe), seq.estimate(probe), "probe {probe}");
        }
    }

    #[test]
    fn many_shards_still_find_heavy_item() {
        let stream = random_stream(60_000, 2000, 4);
        let merged = shard_and_merge(&stream, 8, || SpaceSaving::with_capacity(40, 0.2, 1 << 20));
        use hh_core::HeavyHitters;
        assert!(merged.report().contains(7));
    }
}
