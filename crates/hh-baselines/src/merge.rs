//! The shard-and-merge parallel runner over [`MergeableSummary`].
//!
//! Misra–Gries and Space-Saving summaries are *mergeable* (Agarwal,
//! Cormode, Huang, Phillips, Wei, Yi 2012): two summaries of capacity `k`
//! built on streams `A` and `B` combine into one capacity-`k` summary of
//! `A ⊎ B` with the same `(|A|+|B|)/(k+1)` error bound. That turns a
//! single-pass algorithm into a data-parallel one: shard the stream,
//! summarize shards on persistent worker threads, merge.
//!
//! The merge implementations themselves live with their summaries —
//! [`crate::SpaceSaving`], [`crate::MisraGriesBaseline`],
//! [`crate::CountMin`], [`crate::CountSketch`], and
//! [`crate::LossyCounting`] all implement
//! [`hh_core::MergeableSummary`], as do the paper algorithms in
//! `hh-core`. `hh-pipeline` builds the general partition-and-merge and
//! windowed runners on the same trait; this module keeps the
//! factory-closure convenience runner the `crossover` experiment and
//! the property suites drive. Since the `ShardRuntime` port it is a
//! thin shim over [`hh_pipeline::partition_and_merge`], so it inherits
//! the runtime's single-core sequential fallback instead of spawning
//! threads a 1-vCPU host cannot use.

use hh_core::{MergeableSummary, StreamSummary};

/// Re-export of the workspace-wide mergeability trait (the former
/// baseline-local `Mergeable` trait grew into it; see
/// [`hh_core::MergeableSummary`]).
pub use hh_core::MergeableSummary as Mergeable;

/// Summarizes `stream` with `shards` parallel workers, each building an
/// independent summary with `make()`, then merges left to right.
///
/// The merged summary has the union stream's guarantee (see
/// [`MergeableSummary`]); the test suite verifies estimates against a
/// single-summary run.
///
/// # Panics
/// If `shards` is zero, or if `make()` produces summaries that are not
/// merge-compatible (a factory closure that seeds randomized summaries
/// differently per call — build seed-aligned instances instead, e.g.
/// via `with_seeds`).
pub fn shard_and_merge<S, F>(stream: &[u64], shards: usize, make: F) -> S
where
    S: StreamSummary + MergeableSummary + Send + 'static,
    F: Fn() -> S,
{
    assert!(shards >= 1, "need at least one shard");
    // The factory runs on the caller's thread (it need not be `Sync`);
    // the runtime behind `partition_and_merge` owns the summaries from
    // there on, picking persistent workers or the sequential fallback
    // by core count.
    let summaries: Vec<S> = (0..shards).map(|_| make()).collect();
    hh_pipeline::partition_and_merge(summaries, stream)
        .expect("factory summaries must be merge-compatible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::misra_gries::MisraGriesBaseline;
    use crate::space_saving::SpaceSaving;
    use hh_core::FrequencyEstimator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_stream(m: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    7
                } else {
                    rng.gen_range(0..universe)
                }
            })
            .collect()
    }

    #[test]
    fn merged_misra_gries_keeps_error_bound() {
        let stream = random_stream(40_000, 500, 1);
        let merged = shard_and_merge(&stream, 4, || MisraGriesBaseline::new(0.05, 0.2, 1 << 20));
        let bound = stream.len() as f64 * 0.05 / 2.0 + 1.0; // k = 2/ε
        for probe in [7u64, 0, 100, 499] {
            let truth = stream.iter().filter(|&&x| x == probe).count() as f64;
            let est = merged.estimate(probe);
            assert!(est <= truth, "probe {probe} overestimated");
            assert!(est + bound >= truth, "probe {probe} undercount too big");
        }
    }

    #[test]
    fn merged_space_saving_keeps_bounds() {
        let stream = random_stream(40_000, 500, 2);
        let merged = shard_and_merge(&stream, 4, || SpaceSaving::with_capacity(64, 0.2, 1 << 20));
        let bound = 2.0 * stream.len() as f64 / 64.0;
        for (item, count, err) in merged.entries() {
            let truth = stream.iter().filter(|&&x| x == item).count() as f64;
            assert!(
                count as f64 + 1.0 >= truth,
                "item {item}: merged count {count} < truth {truth}"
            );
            assert!(
                (count - err) as f64 <= truth + bound,
                "item {item}: lower bound violated"
            );
        }
        // Heavy item must survive the merge.
        assert!(merged.entries().iter().any(|&(i, _, _)| i == 7));
    }

    #[test]
    fn single_shard_equals_sequential() {
        let stream = random_stream(10_000, 100, 3);
        let merged = shard_and_merge(&stream, 1, || MisraGriesBaseline::new(0.1, 0.3, 1 << 10));
        let mut seq = MisraGriesBaseline::new(0.1, 0.3, 1 << 10);
        seq.insert_all(&stream);
        for probe in 0..100u64 {
            assert_eq!(merged.estimate(probe), seq.estimate(probe), "probe {probe}");
        }
    }

    #[test]
    fn many_shards_still_find_heavy_item() {
        let stream = random_stream(60_000, 2000, 4);
        let merged = shard_and_merge(&stream, 8, || SpaceSaving::with_capacity(40, 0.2, 1 << 20));
        use hh_core::HeavyHitters;
        assert!(merged.report().contains(7));
    }

    #[test]
    fn merged_lossy_counting_keeps_undercount_bound() {
        use crate::lossy::LossyCounting;
        let stream = random_stream(50_000, 3000, 5);
        let eps = 0.02;
        let merged = shard_and_merge(&stream, 4, || LossyCounting::new(eps, 0.1, 1 << 20));
        let m = stream.len() as f64;
        let truth = stream.iter().filter(|&&x| x == 7).count() as f64;
        let est = merged.estimate(7);
        assert!(est <= truth, "lossy merge must never overcount");
        // ε'(= ε/2) per part plus the untracked-bound slack of the merge.
        assert!(
            est + eps * m + 8.0 >= truth,
            "undercount too large: {est} vs {truth}"
        );
        use hh_core::HeavyHitters;
        assert!(merged.report().contains(7));
    }

    #[test]
    fn merged_count_min_never_undercounts() {
        use crate::count_min::CountMin;
        let stream = random_stream(40_000, 2000, 6);
        // Seed-aligned: every shard summary draws the same row hashes.
        let merged = shard_and_merge(&stream, 4, || CountMin::new(0.02, 0.1, 0.05, 1 << 20, 77));
        let m = stream.len() as f64;
        for probe in [7u64, 0, 1000, 1999] {
            let truth = stream.iter().filter(|&&x| x == probe).count() as f64;
            let est = merged.estimate(probe);
            assert!(est >= truth, "probe {probe}: merged CM undercounts");
            assert!(est <= truth + 0.04 * m, "probe {probe}: overshoot {est}");
        }
        use hh_core::HeavyHitters;
        assert!(merged.report().contains(7));
    }

    #[test]
    fn merged_count_sketch_stays_accurate() {
        use crate::count_sketch::CountSketch;
        let stream = random_stream(40_000, 2000, 8);
        let merged = shard_and_merge(&stream, 4, || CountSketch::new(0.1, 0.2, 0.1, 1 << 20, 88));
        let truth = stream.iter().filter(|&&x| x == 7).count() as f64;
        let est = merged.estimate(7);
        assert!(
            (est - truth).abs() <= 0.05 * stream.len() as f64,
            "merged CS estimate {est} vs {truth}"
        );
        use hh_core::HeavyHitters;
        assert!(merged.report().contains(7));
    }

    #[test]
    #[should_panic(expected = "merge-compatible")]
    fn differently_seeded_sketches_refuse_to_merge() {
        use crate::count_min::CountMin;
        use std::sync::atomic::{AtomicU64, Ordering};
        let stream = random_stream(10_000, 200, 9);
        let seed = AtomicU64::new(0);
        // A factory that (incorrectly) reseeds per shard.
        let _ = shard_and_merge(&stream, 2, || {
            CountMin::new(0.05, 0.2, 0.1, 1 << 20, seed.fetch_add(1, Ordering::SeqCst))
        });
    }
}
