//! Baseline frequent-items algorithms — the prior art of §1 of the paper.
//!
//! The paper's headline claim is an improvement over algorithms that all
//! use `Ω(ε⁻¹(log n + log m))` bits: Misra–Gries \[MG82\] (rediscovered by
//! \[DLOM02, KSP03\]), CountSketch \[CCFC04\], Count-Min \[CM05\], sticky
//! sampling and lossy counting \[MM02\], and Space-Saving \[MAE05\]. This
//! crate implements them all behind the same
//! [`hh_core::StreamSummary`]/[`hh_core::HeavyHitters`] traits, with the
//! same honest [`hh_space::SpaceUsage`] accounting, so experiment E7 can
//! put them on one axis:
//!
//! * [`MisraGriesBaseline`] — deterministic, `k` counters over raw ids.
//! * [`SpaceSaving`] — the Stream-Summary linked-bucket structure of
//!   \[MAE05\] with true `O(1)` updates; overestimates, never misses.
//! * [`LossyCounting`] — deterministic windowed pruning \[MM02\].
//! * [`StickySampling`] — probabilistic counting with rate doubling
//!   \[MM02\].
//! * [`CountMin`] — `d×w` counter sketch with upward-biased point queries
//!   \[CM05\], plus a candidate set for heavy-hitter reporting.
//! * [`CountSketch`] — signed median sketch \[CCFC04\].
//! * [`SampleAndHold`] — sample once, count exactly thereafter \[EV03\].
//!
//! The mergeable baselines (Misra–Gries, Space-Saving, Lossy Counting,
//! Count-Min, CountSketch) implement [`hh_core::MergeableSummary`] —
//! merge plus binary snapshot/restore — next to their definitions;
//! [`merge`] keeps the [`shard_and_merge`] convenience runner built on
//! that trait, now a shim over the persistent shard runtime in
//! `hh-pipeline` (DESIGN.md §7, §10).
//!
//! # Example
//!
//! ```
//! use hh_baselines::SpaceSaving;
//! use hh_core::{StreamSummary, HeavyHitters, FrequencyEstimator};
//!
//! let mut ss = SpaceSaving::new(0.05, 0.2, 1 << 20);
//! for i in 0..10_000u64 {
//!     ss.insert(if i % 3 == 0 { 7 } else { i });
//! }
//! assert!(ss.report().contains(7));          // 33% item at phi = 20%
//! assert!(ss.estimate(7) >= 3_333.0);        // never undercounts
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count_min;
pub mod count_sketch;
pub mod lossy;
pub mod merge;
pub mod misra_gries;
pub mod sample_hold;
pub mod space_saving;
pub mod sticky;

pub use count_min::CountMin;
pub use count_sketch::CountSketch;
pub use lossy::LossyCounting;
pub use merge::{shard_and_merge, Mergeable};
pub use misra_gries::MisraGriesBaseline;
pub use sample_hold::SampleAndHold;
pub use space_saving::SpaceSaving;
pub use sticky::StickySampling;
