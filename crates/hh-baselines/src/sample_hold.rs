//! Sample-and-Hold \[EV03\] — the last of §1's cited prior art.
//!
//! Estan–Varghese's router algorithm: every *byte* (here: item) is
//! sampled with probability `p`; once an item is sampled it is **held** —
//! counted exactly from then on. Heavy flows are caught early and counted
//! almost exactly; mice rarely enter the table. Estimates add back the
//! expected pre-hold miss (`1/p − 1`), making them roughly unbiased for
//! held items. Guarantees are probabilistic: an item with `f ≥ φm` is
//! missed only if its first `φm·(fraction)` occurrences all fail the coin,
//! probability `(1−p)^{φm}` — driven below δ by `p = ln(1/δ)/(φm)`
//! oversampled by the usual factor.

use hh_core::{FrequencyEstimator, HeavyHitters, ItemEstimate, Report, StreamSummary};
use hh_hash::FastMap;
use hh_space::space::{gamma_bits, SpaceUsage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Sample-and-Hold summary.
#[derive(Debug, Clone)]
pub struct SampleAndHold {
    /// Held items with their exact counts since being held.
    held: FastMap<u64, u64>,
    /// Sampling exponent: admission probability `2^{-k}`.
    k: u32,
    key_bits: u64,
    processed: u64,
    eps: f64,
    phi: f64,
    rng: StdRng,
}

impl SampleAndHold {
    /// Summary for an advertised stream length `m`: admission probability
    /// `p ≈ 8·ln(1/δ)/(εm)` (so even `εm`-sized flows are held w.h.p.
    /// within their first quarter), reporting at `φ`.
    pub fn new(eps: f64, phi: f64, delta: f64, universe: u64, m: u64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(phi > eps && phi <= 1.0, "need eps < phi <= 1");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        assert!(m >= 1, "stream length must be positive");
        let p = (8.0 * (1.0 / delta).ln() / (eps * m as f64)).min(1.0);
        Self {
            held: FastMap::default(),
            k: hh_sampling::bernoulli::pow2_exponent(p),
            key_bits: hh_space::id_bits(universe),
            processed: 0,
            eps,
            phi,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of held items.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Items processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The admission probability `2^{-k}`.
    pub fn admission_probability(&self) -> f64 {
        (0.5f64).powi(self.k as i32)
    }

    /// Expected occurrences missed before an item was held: `1/p − 1`.
    fn hold_bias(&self) -> f64 {
        (1u64 << self.k.min(63)) as f64 - 1.0
    }
}

impl StreamSummary for SampleAndHold {
    fn insert(&mut self, item: u64) {
        self.processed += 1;
        if let Some(c) = self.held.get_mut(&item) {
            *c += 1; // held: exact counting
            return;
        }
        let accept = if self.k == 0 {
            true
        } else {
            self.rng.gen::<u64>() & ((1u64 << self.k.min(63)) - 1) == 0
        };
        if accept {
            self.held.insert(item, 1);
        }
    }
}

impl HeavyHitters for SampleAndHold {
    fn report(&self) -> Report {
        let m = self.processed as f64;
        let threshold = (self.phi - self.eps / 2.0) * m;
        self.held
            .iter()
            .filter_map(|(&item, &c)| {
                let est = c as f64 + self.hold_bias();
                (est >= threshold).then_some(ItemEstimate { item, count: est })
            })
            .collect()
    }
}

impl FrequencyEstimator for SampleAndHold {
    fn estimate(&self, item: u64) -> f64 {
        self.held
            .get(&item)
            .map(|&c| c as f64 + self.hold_bias())
            .unwrap_or(0.0)
    }
}

impl SpaceUsage for SampleAndHold {
    fn model_bits(&self) -> u64 {
        let held: u64 = self
            .held
            .values()
            .map(|&c| self.key_bits + gamma_bits(c))
            .sum();
        held + gamma_bits(self.processed) + gamma_bits(self.k as u64)
    }
    fn heap_bytes(&self) -> usize {
        self.held.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;

    fn planted(m: usize, seed: u64) -> Vec<u64> {
        let mut stream = Vec::with_capacity(m);
        stream.extend(std::iter::repeat_n(1u64, m * 3 / 10)); // 30%
        stream.extend(std::iter::repeat_n(2u64, m / 10)); // 10%
        stream.extend((0..m as u64 * 6 / 10).map(|i| 10_000 + (i % 50_000)));
        let mut rng = StdRng::seed_from_u64(seed);
        stream.shuffle(&mut rng);
        stream
    }

    #[test]
    fn holds_and_reports_heavy_flows() {
        let m = 200_000usize;
        let stream = planted(m, 1);
        let mut sh = SampleAndHold::new(0.05, 0.2, 0.1, 1 << 40, m as u64, 2);
        sh.insert_all(&stream);
        let r = sh.report();
        assert!(r.contains(1), "30% flow must be held and reported");
        assert!(!r.contains(2), "10% flow is below (phi-eps/2)");
        // Estimate accuracy for the held heavy flow.
        let est = r.estimate(1).unwrap();
        assert!((est - 0.3 * m as f64).abs() <= 0.05 * m as f64, "est {est}");
    }

    #[test]
    fn table_stays_near_expected_size() {
        // E[held] ≈ p · distinct-ish mass; must be far below distinct
        // count.
        let m = 200_000usize;
        let stream = planted(m, 3);
        let mut sh = SampleAndHold::new(0.05, 0.2, 0.1, 1 << 40, m as u64, 4);
        sh.insert_all(&stream);
        let p = sh.admission_probability();
        let bound = (p * m as f64 * 4.0) as usize + 16;
        assert!(sh.len() <= bound, "held {} > bound {bound}", sh.len());
        assert!(sh.len() < 50_000, "must be far below distinct count");
    }

    #[test]
    fn held_items_counted_exactly_after_admission() {
        // With k = 0 everything is held at first sight: exact counting.
        let mut sh = SampleAndHold::new(0.2, 0.5, 0.1, 1 << 10, 4, 5);
        assert_eq!(sh.k, 0, "tiny m forces p = 1");
        for x in [9u64, 9, 9, 8] {
            sh.insert(x);
        }
        assert_eq!(sh.estimate(9), 3.0);
        assert_eq!(sh.estimate(8), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = planted(50_000, 6);
        let mut a = SampleAndHold::new(0.05, 0.2, 0.1, 1 << 20, 50_000, 7);
        let mut b = SampleAndHold::new(0.05, 0.2, 0.1, 1 << 20, 50_000, 7);
        a.insert_all(&stream);
        b.insert_all(&stream);
        assert_eq!(a.report().entries(), b.report().entries());
    }
}
