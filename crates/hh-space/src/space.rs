//! The [`SpaceUsage`] trait and bit-cost helpers shared by the workspace.

/// Number of bits needed to store one identifier drawn from a range of the
/// given size, i.e. `⌈log₂ range⌉` (with a floor of 1 bit so that even a
/// unary range is addressable).
///
/// This is the cost the paper charges for storing an element of `[n]`
/// (`log n` bits) or a hashed identifier in `[⌈4ℓ²/δ⌉]`.
#[inline]
pub fn id_bits(range: u64) -> u64 {
    ceil_log2(range).max(1)
}

/// `⌈log₂ x⌉` for `x ≥ 1`; returns 0 for `x ∈ {0, 1}`.
#[inline]
pub fn ceil_log2(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros() as u64
    }
}

/// `⌊log₂ x⌋` for `x ≥ 1`; returns 0 for `x ∈ {0, 1}`.
#[inline]
pub fn floor_log2(x: u64) -> u64 {
    if x == 0 {
        0
    } else {
        63 - x.leading_zeros() as u64
    }
}

/// Cost in bits of storing a counter with current value `c` in the
/// variable-length representation of Blandford–Blelloch \[BB08\], which the
/// paper invokes in §2.3 ("We store an integer C ... in O(log C) bits").
///
/// We charge the Elias-gamma cost `2⌊log₂(c+1)⌋ + 1`: a concrete,
/// self-delimiting code with the right asymptotics that we also actually
/// implement in [`crate::gamma`]. A zero counter costs 1 bit.
#[inline]
pub fn gamma_bits(c: u64) -> u64 {
    2 * floor_log2(c + 1) + 1
}

/// Sum of [`gamma_bits`] over a slice of counters: the dense
/// variable-length accounting for a whole table, computed on demand.
///
/// This is the *deferred* form of the incremental `model_bit_sum` kept by
/// [`crate::VarCounterArray`]: hot paths that own raw `&[u64]` tables can
/// skip all per-update accounting and pay one linear scan at query time
/// instead (space queries are rare; updates are the hot path).
#[inline]
pub fn gamma_sum_bits(counts: &[u64]) -> u64 {
    counts.iter().map(|&c| gamma_bits(c)).sum()
}

/// Sparse accounting over a slice: gamma-coded gaps between nonzero
/// positions plus gamma-coded values, plus a terminator bit. The deferred
/// slice form of [`crate::VarCounterArray::sparse_model_bits`], for
/// mostly-empty tables held as raw `&[u64]`.
pub fn sparse_slice_bits(counts: &[u64]) -> u64 {
    let mut bits = 0u64;
    let mut last = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            bits += gamma_bits((i - last) as u64) + gamma_bits(c);
            last = i + 1;
        }
    }
    bits + 1
}

/// Dense gamma accounting of the **cell-wise sum** of two counter
/// tables, without materializing the merged table: the model cost a
/// merge of two seed-aligned summaries will charge for these rows.
///
/// Subadditivity makes merged summaries cheaper than the parts they
/// came from: `gamma_bits(a + b) ≤ gamma_bits(a) + gamma_bits(b)` for
/// all `a, b` (the gamma cost is `2⌊log₂(c+1)⌋ + 1` and
/// `log(a + b + 1) ≤ log(a+1) + log(b+1)`), so the result is at most
/// `gamma_sum_bits(a) + gamma_sum_bits(b)` — merging `K` shards costs
/// at most the bits of one shard plus `K − 1` dense tables' headroom,
/// never the sum of all `K`. The merge planners in `hh-pipeline` and
/// the DESIGN.md space-cost argument use exactly this bound.
///
/// # Panics
/// If the slices have different lengths (seed-aligned tables always
/// agree on shape).
#[inline]
pub fn merged_gamma_sum_bits(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "merged tables must share their shape");
    a.iter().zip(b).map(|(&x, &y)| gamma_bits(x + y)).sum()
}

/// Sparse accounting of the cell-wise sum of two mostly-empty tables
/// (the merged-size companion of [`sparse_slice_bits`], used for
/// Algorithm 2's T3 rows).
///
/// # Panics
/// If the slices have different lengths.
pub fn merged_sparse_slice_bits(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "merged tables must share their shape");
    let mut bits = 0u64;
    let mut last = 0usize;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let c = x + y;
        if c > 0 {
            bits += gamma_bits((i - last) as u64) + gamma_bits(c);
            last = i + 1;
        }
    }
    bits + 1
}

/// Cost in bits of storing `c` in the Elias-delta code,
/// `⌊log₂(c+1)⌋ + 2⌊log₂(⌊log₂(c+1)⌋+1)⌋ + 1`. Slightly cheaper than gamma
/// for large counters; used by the `log log` accounting of Lemma 1.
#[inline]
pub fn delta_bits(c: u64) -> u64 {
    let n = floor_log2(c + 1);
    n + 2 * floor_log2(n + 1) + 1
}

/// Space accounting implemented by every summary/data structure in the
/// workspace.
///
/// `model_bits` is the paper's accounting (see crate docs); `heap_bytes` is
/// the actual allocation of the Rust representation.
pub trait SpaceUsage {
    /// Bits under the paper's storage model (§2.3).
    fn model_bits(&self) -> u64;

    /// Bytes of heap memory actually allocated by this structure
    /// (excluding the inline `size_of::<Self>()` footprint).
    fn heap_bytes(&self) -> usize;

    /// Total bytes: inline size plus heap allocation.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        core::mem::size_of::<Self>() + self.heap_bytes()
    }
}

impl<T: SpaceUsage> SpaceUsage for &T {
    fn model_bits(&self) -> u64 {
        (**self).model_bits()
    }
    fn heap_bytes(&self) -> usize {
        (**self).heap_bytes()
    }
}

impl<T: SpaceUsage> SpaceUsage for Option<T> {
    fn model_bits(&self) -> u64 {
        // One presence bit plus the payload.
        1 + self.as_ref().map_or(0, SpaceUsage::model_bits)
    }
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, SpaceUsage::heap_bytes)
    }
}

impl<T: SpaceUsage> SpaceUsage for Vec<T> {
    fn model_bits(&self) -> u64 {
        self.iter().map(SpaceUsage::model_bits).sum()
    }
    fn heap_bytes(&self) -> usize {
        self.capacity() * core::mem::size_of::<T>()
            + self.iter().map(SpaceUsage::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    fn floor_log2_small_values() {
        assert_eq!(floor_log2(0), 0);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(u64::MAX), 63);
    }

    #[test]
    fn id_bits_floors_at_one() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(1024), 10);
    }

    #[test]
    fn gamma_bits_matches_code_length() {
        // gamma(c) encodes c+1 in 2*floor(log2(c+1)) + 1 bits.
        assert_eq!(gamma_bits(0), 1);
        assert_eq!(gamma_bits(1), 3);
        assert_eq!(gamma_bits(2), 3);
        assert_eq!(gamma_bits(3), 5);
        assert_eq!(gamma_bits(6), 5);
        assert_eq!(gamma_bits(7), 7);
    }

    #[test]
    fn gamma_sum_bits_matches_elementwise() {
        let counts = [0u64, 1, 2, 3, 100, 0, 7];
        let expected: u64 = counts.iter().map(|&c| gamma_bits(c)).sum();
        assert_eq!(gamma_sum_bits(&counts), expected);
        assert_eq!(gamma_sum_bits(&[]), 0);
    }

    #[test]
    fn sparse_slice_bits_matches_gap_formula() {
        let mut counts = vec![0u64; 100];
        counts[17] = 3;
        counts[90] = 1;
        let expected = gamma_bits(17) + gamma_bits(3) + gamma_bits(90 - 18) + gamma_bits(1) + 1;
        assert_eq!(sparse_slice_bits(&counts), expected);
        assert_eq!(sparse_slice_bits(&[0u64; 10]), 1);
        assert_eq!(sparse_slice_bits(&[]), 1);
    }

    #[test]
    fn merged_gamma_accounting_is_subadditive() {
        let a = [0u64, 1, 2, 7, 100, 0];
        let b = [3u64, 0, 2, 1, 100, 0];
        let merged = merged_gamma_sum_bits(&a, &b);
        let direct: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        assert_eq!(merged, gamma_sum_bits(&direct));
        assert!(merged <= gamma_sum_bits(&a) + gamma_sum_bits(&b));
        // Pointwise subadditivity of the gamma cost itself.
        for x in 0..50u64 {
            for y in 0..50u64 {
                assert!(
                    gamma_bits(x + y) <= gamma_bits(x) + gamma_bits(y),
                    "{x}+{y}"
                );
            }
        }
    }

    #[test]
    fn merged_sparse_accounting_matches_materialized_sum() {
        let mut a = vec![0u64; 64];
        let mut b = vec![0u64; 64];
        a[5] = 2;
        b[5] = 1;
        b[40] = 9;
        let direct: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        assert_eq!(merged_sparse_slice_bits(&a, &b), sparse_slice_bits(&direct));
        assert_eq!(merged_sparse_slice_bits(&[], &[]), 1);
    }

    #[test]
    fn delta_bits_beats_gamma_eventually() {
        // For large counters delta is shorter than gamma.
        assert!(delta_bits(1_000_000) < gamma_bits(1_000_000));
        // And both grow like log.
        assert!(delta_bits(1 << 40) < 60);
    }

    #[test]
    fn option_accounting_adds_presence_bit() {
        struct One;
        impl SpaceUsage for One {
            fn model_bits(&self) -> u64 {
                7
            }
            fn heap_bytes(&self) -> usize {
                0
            }
        }
        assert_eq!(Some(One).model_bits(), 8);
        assert_eq!(None::<One>.model_bits(), 1);
    }

    #[test]
    fn vec_accounting_sums_members() {
        struct K(u64);
        impl SpaceUsage for K {
            fn model_bits(&self) -> u64 {
                self.0
            }
            fn heap_bytes(&self) -> usize {
                0
            }
        }
        let v = vec![K(1), K(2), K(3)];
        assert_eq!(v.model_bits(), 6);
        assert!(v.heap_bytes() >= 3 * core::mem::size_of::<K>());
    }
}
