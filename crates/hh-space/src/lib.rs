//! Bit-level space accounting and compact integer storage.
//!
//! The paper measures algorithms in *bits* under the unit-cost RAM model of
//! §2.3: item identifiers cost `⌈log₂ range⌉` bits, counters are stored in
//! `O(log C)` bits using the variable-length arrays of Blandford–Blelloch
//! \[BB08\], the sampler of Lemma 1 costs `O(log log m)` bits, and a hash
//! function drawn from a universal family costs `O(log n)` bits of seed.
//!
//! Rust programs store words, so this crate provides **two space measures**
//! that every data structure in the workspace implements via [`SpaceUsage`]:
//!
//! * [`SpaceUsage::model_bits`] — the bit-exact cost of the paper's
//!   accounting. This is the number Table 1 talks about and is what the
//!   Table-1 reproduction experiments (E1–E5 in `DESIGN.md`) plot.
//! * [`SpaceUsage::heap_bytes`] — actual heap allocation, for honesty about
//!   the constant-factor gap between the model and a word-RAM
//!   implementation.
//!
//! The crate also provides real compact containers ([`BitVec`],
//! [`PackedIntVec`], [`GammaVec`], [`VarCounterArray`]) so that the model
//! accounting is backed by an executable encoding rather than a formula, and
//! the bound formulas of Table 1 ([`bounds`]) used by the experiment
//! harness.
//!
//! # Example
//!
//! ```
//! use hh_space::{SpaceUsage, VarCounterArray, gamma_bits};
//!
//! let mut counters = VarCounterArray::new(4);
//! counters.add(0, 1000);
//! counters.increment(3);
//! // The model cost is the exact gamma-code length, realizable on demand:
//! assert_eq!(counters.model_bits(), gamma_bits(1000) + gamma_bits(1) + 2);
//! assert_eq!(counters.model_bits(), counters.to_gamma().bit_len() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod bounds;
pub mod checksum;
pub mod delta;
pub mod gamma;
pub mod packed;
pub mod space;
pub mod swar;
pub mod varcount;
pub mod varint;

pub use bits::BitVec;
pub use checksum::{crc32, fnv1a64, fnv1a64x4};
pub use delta::DeltaVec;
pub use gamma::{GammaDecoder, GammaVec};
pub use packed::PackedIntVec;
pub use space::{
    ceil_log2, gamma_bits, gamma_sum_bits, id_bits, merged_gamma_sum_bits,
    merged_sparse_slice_bits, sparse_slice_bits, SpaceUsage,
};
pub use varcount::VarCounterArray;
pub use varint::{decode_deltas, decode_uvarints, encode_deltas, encode_uvarints};
