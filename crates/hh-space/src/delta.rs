//! Elias-delta coding — the asymptotically tighter companion to
//! [`crate::gamma`].
//!
//! Delta codes the bit-length of a value in gamma and then the value's
//! remaining bits plainly: `|δ(c)| = ⌊log₂(c+1)⌋ + 2⌊log₂(⌊log₂(c+1)⌋+1)⌋
//! + 1` bits — `log c + O(log log c)` versus gamma's `2 log c`. The
//! `log log` shape is exactly the storage class the paper's ε-Minimum
//! analysis charges for its truncated counters and that Lemma 1 charges
//! for the sampler exponent, so [`DeltaVec`] is the codec backing
//! [`crate::space::delta_bits`] the way [`crate::GammaVec`] backs
//! [`crate::space::gamma_bits`].

use crate::bits::BitVec;
use crate::space::SpaceUsage;
use serde::{Deserialize, Serialize};

/// Append-only sequence of delta-coded unsigned integers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaVec {
    bits: BitVec,
    len: usize,
}

impl DeltaVec {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total encoded length in bits.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// Appends `value`.
    pub fn push(&mut self, value: u64) {
        let v = value
            .checked_add(1)
            .expect("DeltaVec cannot encode u64::MAX");
        let n = 63 - v.leading_zeros(); // ⌊log₂ v⌋; v needs n+1 bits
                                        // Gamma-code (n+1), then the low n bits of v (MSB first).
        let l = n + 1;
        let ll = 31 - l.leading_zeros(); // ⌊log₂ l⌋
        for _ in 0..ll {
            self.bits.push(false);
        }
        for b in (0..=ll).rev() {
            self.bits.push((l >> b) & 1 == 1);
        }
        for b in (0..n).rev() {
            self.bits.push((v >> b) & 1 == 1);
        }
        self.len += 1;
    }

    /// Decodes all values.
    pub fn decode_all(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut pos = 0usize;
        while pos < self.bits.len() {
            // Gamma-decode the length l.
            let mut ll = 0u32;
            while !self.bits.get(pos) {
                ll += 1;
                pos += 1;
            }
            let mut l = 0u32;
            for _ in 0..=ll {
                l = (l << 1) | self.bits.get(pos) as u32;
                pos += 1;
            }
            // Read l−1 explicit bits under an implicit leading 1.
            let mut v = 1u64;
            for _ in 0..(l - 1) {
                v = (v << 1) | self.bits.get(pos) as u64;
                pos += 1;
            }
            out.push(v - 1);
        }
        out
    }

    /// Extends with values from an iterator.
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }
}

impl FromIterator<u64> for DeltaVec {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut dv = DeltaVec::new();
        dv.extend(iter);
        dv
    }
}

impl SpaceUsage for DeltaVec {
    fn model_bits(&self) -> u64 {
        self.bits.len() as u64
    }
    fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::GammaVec;
    use crate::space::delta_bits;

    #[test]
    fn roundtrip_small_values() {
        let vals: Vec<u64> = (0..200).collect();
        let dv: DeltaVec = vals.iter().copied().collect();
        assert_eq!(dv.decode_all(), vals);
    }

    #[test]
    fn roundtrip_large_values() {
        let vals = vec![0, 1, 2, 7, 8, u32::MAX as u64, 1 << 50, (1 << 62) + 999];
        let dv: DeltaVec = vals.iter().copied().collect();
        assert_eq!(dv.decode_all(), vals);
    }

    #[test]
    fn encoded_length_matches_delta_bits() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 12345, 1 << 33, 1 << 55] {
            let mut dv = DeltaVec::new();
            dv.push(v);
            assert_eq!(dv.bit_len() as u64, delta_bits(v), "value {v}");
        }
    }

    #[test]
    fn beats_gamma_on_large_counters() {
        let vals: Vec<u64> = (0..64).map(|i| 1_000_000 + i * 7919).collect();
        let dv: DeltaVec = vals.iter().copied().collect();
        let gv: GammaVec = vals.iter().copied().collect();
        assert!(
            dv.bit_len() < gv.bit_len(),
            "delta {} !< gamma {}",
            dv.bit_len(),
            gv.bit_len()
        );
    }

    #[test]
    fn zero_costs_one_bit() {
        let mut dv = DeltaVec::new();
        dv.push(0);
        assert_eq!(dv.bit_len(), 1);
    }
}
