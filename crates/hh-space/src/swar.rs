//! SWAR (SIMD-within-a-register) lane primitives over `u64` words.
//!
//! A 64-bit word holds `⌊64/k⌋` independent `k`-bit lanes; with the
//! right mask constants, one ALU operation answers a question about
//! every lane at once. The geometric bit-scan sampler
//! (`hh_sampling::BitSkipSampler`) resolves `⌊64/k⌋` Bernoulli(2⁻ᵏ)
//! trials per word this way — the primitive sits on the batch-ingest
//! hot path, where each skip gap costs about one word of randomness and
//! one zero-lane scan.
//!
//! The constants are parameterized by lane width rather than hard-coded
//! for bytes so the same helpers serve `k`-bit trial chunks (sampling)
//! and byte-lane counters (epoch tables) alike. Callers that scan many
//! words with one width should compute [`lane_lsbs`]/[`lane_msbs`] once
//! and keep them in registers, as the sampler does.

/// Ones at the **lowest** bit of each `k`-bit lane: the generalized
/// `0x0101…01` constant. Covers the `⌊64/k⌋` complete lanes; leftover
/// high bits (when `k ∤ 64`) stay zero and are excluded from every
/// lane-wise answer built on this mask.
///
/// `k = 0` and `k > 64` yield an empty mask (no lanes).
#[inline]
pub const fn lane_lsbs(k: u32) -> u64 {
    if k == 0 || k > 64 {
        return 0;
    }
    let mut m = 0u64;
    let mut c = 0;
    while c < 64 / k {
        m |= 1u64 << (c * k);
        c += 1;
    }
    m
}

/// Ones at the **highest** bit of each `k`-bit lane: the generalized
/// `0x8080…80` constant. Same lane coverage rules as [`lane_lsbs`].
#[inline]
pub const fn lane_msbs(k: u32) -> u64 {
    if k == 0 || k > 64 {
        return 0;
    }
    lane_lsbs(k) << (k - 1)
}

/// Flags the all-zero lanes of `w`: the classic zero-field SWAR test
/// `(w − lsbs) & !w & msbs`. The borrow of `lane − 1` sets a lane's
/// high bit iff the lane is zero.
///
/// **Exactness caveat**: a borrow propagating out of a zero lane can
/// corrupt flags *above* it, so only the **lowest** set flag is exact —
/// which is precisely what a first-match scan consumes. The result is
/// zero iff no covered lane is zero, so emptiness is always exact.
/// `lsbs`/`msbs` must come from [`lane_lsbs`]/[`lane_msbs`] for one
/// width `k`.
#[inline]
pub const fn zero_lane_flags(w: u64, lsbs: u64, msbs: u64) -> u64 {
    w.wrapping_sub(lsbs) & !w & msbs
}

/// Index of the lowest all-zero `k`-bit lane of `w` (lane 0 is the low
/// end), or `None` when every covered lane is nonzero. Built on
/// [`zero_lane_flags`], whose lowest flag is exact.
#[inline]
pub fn first_zero_lane(w: u64, k: u32, lsbs: u64, msbs: u64) -> Option<u32> {
    let t = zero_lane_flags(w, lsbs, msbs);
    (t != 0).then(|| t.trailing_zeros() / k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_constants_cover_whole_lanes_only() {
        for k in 1..=64u32 {
            let lsbs = lane_lsbs(k);
            let msbs = lane_msbs(k);
            let lanes = 64 / k;
            assert_eq!(lsbs.count_ones(), lanes, "k={k}");
            assert_eq!(msbs.count_ones(), lanes, "k={k}");
            for c in 0..lanes {
                assert_ne!(lsbs & (1 << (c * k)), 0, "k={k} lane {c} lsb");
                assert_ne!(msbs & (1 << (c * k + k - 1)), 0, "k={k} lane {c} msb");
            }
            // Nothing above the last complete lane.
            if lanes * k < 64 {
                assert_eq!(lsbs >> (lanes * k), 0);
                assert_eq!(msbs >> (lanes * k), 0);
            }
        }
        assert_eq!(lane_lsbs(0), 0);
        assert_eq!(lane_msbs(0), 0);
    }

    #[test]
    fn first_zero_lane_matches_naive_scan() {
        // Deterministic LCG keeps the test free of external RNG deps.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for k in [1u32, 2, 3, 4, 5, 6, 7, 8, 13, 21, 32, 63, 64] {
            let lsbs = lane_lsbs(k);
            let msbs = lane_msbs(k);
            let lanes = 64 / k;
            for _ in 0..500 {
                let w = next();
                let naive = (0..lanes).find(|&c| {
                    let lane = (w >> (c * k)) & (u64::MAX >> (64 - k));
                    lane == 0
                });
                assert_eq!(first_zero_lane(w, k, lsbs, msbs), naive, "k={k} w={w:#x}");
            }
        }
    }

    #[test]
    fn zero_lane_flags_emptiness_is_exact() {
        let (lsbs, msbs) = (lane_lsbs(8), lane_msbs(8));
        assert_eq!(zero_lane_flags(u64::MAX, lsbs, msbs), 0);
        assert_ne!(zero_lane_flags(0, lsbs, msbs), 0);
        // Every byte nonzero → no flags, regardless of values.
        assert_eq!(zero_lane_flags(0x0101_0101_0101_0101, lsbs, msbs), 0);
    }
}
