//! A plain bit vector.
//!
//! Used by Algorithm 3 (ε-Minimum) for the membership vector `B1` over the
//! universe, and as the backing store for [`crate::gamma::GammaVec`] and
//! [`crate::packed::PackedIntVec`]. The paper charges exactly `|U|` bits for
//! a bit vector over universe `U`, which is what [`SpaceUsage::model_bits`]
//! reports.

use crate::space::SpaceUsage;
use serde::{Deserialize, Serialize};

/// Growable bit vector with O(1) random access.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1u64 << b;
        }
        self.len += 1;
    }

    /// Reads bit `i`. Panics when out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `bit`. Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of the first zero bit, if any.
    pub fn first_zero(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let b = w.trailing_ones() as usize;
                let idx = wi * 64 + b;
                if idx < self.len {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Whether all bits are one.
    pub fn all_ones(&self) -> bool {
        self.first_zero().is_none()
    }

    /// Iterator over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Appends `bits` low-order bits of `value`, lowest bit first.
    pub fn push_bits(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        for b in 0..bits {
            self.push((value >> b) & 1 == 1);
        }
    }

    /// Reads `bits` bits starting at `pos`, lowest bit first.
    pub fn get_bits(&self, pos: usize, bits: u32) -> u64 {
        debug_assert!(bits <= 64);
        let mut v = 0u64;
        for b in 0..bits {
            if self.get(pos + b as usize) {
                v |= 1 << b;
            }
        }
        v
    }

    /// Overwrites `bits` bits starting at `pos` with the low bits of
    /// `value`, lowest bit first.
    pub fn set_bits(&mut self, pos: usize, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        for b in 0..bits {
            self.set(pos + b as usize, (value >> b) & 1 == 1);
        }
    }
}

impl SpaceUsage for BitVec {
    fn model_bits(&self) -> u64 {
        self.len as u64
    }
    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut bv = BitVec::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            bv.push(b);
        }
        assert_eq!(bv.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn zeros_then_set() {
        let mut bv = BitVec::zeros(130);
        assert_eq!(bv.count_ones(), 0);
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert_eq!(bv.count_ones(), 3);
        assert!(bv.get(64));
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn first_zero_and_all_ones() {
        let mut bv = BitVec::zeros(70);
        assert_eq!(bv.first_zero(), Some(0));
        for i in 0..70 {
            bv.set(i, true);
        }
        assert!(bv.all_ones());
        bv.set(65, false);
        assert_eq!(bv.first_zero(), Some(65));
    }

    #[test]
    fn first_zero_ignores_padding_bits() {
        // 64 ones exactly: the word is full, padding must not be reported.
        let mut bv = BitVec::zeros(64);
        for i in 0..64 {
            bv.set(i, true);
        }
        assert_eq!(bv.first_zero(), None);
        assert!(bv.all_ones());
    }

    #[test]
    fn bit_field_roundtrip() {
        let mut bv = BitVec::new();
        bv.push_bits(0b1011_0101, 8);
        bv.push_bits(0x3FFF, 14);
        bv.push_bits(u64::MAX, 64);
        assert_eq!(bv.get_bits(0, 8), 0b1011_0101);
        assert_eq!(bv.get_bits(8, 14), 0x3FFF);
        assert_eq!(bv.get_bits(22, 64), u64::MAX);
        bv.set_bits(8, 0x1234 & 0x3FFF, 14);
        assert_eq!(bv.get_bits(8, 14), 0x1234 & 0x3FFF);
    }

    #[test]
    fn model_bits_is_length() {
        let bv = BitVec::zeros(1000);
        assert_eq!(bv.model_bits(), 1000);
    }

    #[test]
    fn from_iterator_collects() {
        let bv: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(bv.len(), 3);
        assert!(bv.get(0) && !bv.get(1) && bv.get(2));
    }
}
