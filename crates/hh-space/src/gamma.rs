//! Elias-gamma coding of unsigned integers.
//!
//! The paper stores counters in `O(log C)` bits (§2.3, citing the
//! variable-length arrays of Blandford–Blelloch). Elias gamma is the
//! concrete self-delimiting code we use to *realize* that accounting: a
//! value `c ≥ 0` is encoded as the gamma code of `c + 1`, which occupies
//! exactly [`crate::space::gamma_bits`]`(c)` bits. [`GammaVec`] is an
//! append-only sequence of gamma-coded values; [`crate::varcount`] builds a
//! random-access *updatable* counter array on top of the same accounting.

use crate::bits::BitVec;
use crate::space::SpaceUsage;
use serde::{Deserialize, Serialize};

/// Append-only sequence of gamma-coded unsigned integers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GammaVec {
    bits: BitVec,
    len: usize,
}

impl GammaVec {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total encoded length in bits.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// Appends `value`.
    pub fn push(&mut self, value: u64) {
        // Encode value + 1 (gamma cannot encode 0).
        let v = value
            .checked_add(1)
            .expect("GammaVec cannot encode u64::MAX");
        let n = 63 - v.leading_zeros(); // floor(log2(v))
                                        // n zeros, then the n+1 significant bits of v from MSB to LSB.
        for _ in 0..n {
            self.bits.push(false);
        }
        for b in (0..=n).rev() {
            self.bits.push((v >> b) & 1 == 1);
        }
        self.len += 1;
    }

    /// Decodes all values.
    pub fn decode_all(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Iterator decoding values in order.
    pub fn iter(&self) -> GammaDecoder<'_> {
        GammaDecoder {
            bits: &self.bits,
            pos: 0,
        }
    }

    /// Extends with values from an iterator.
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }
}

impl FromIterator<u64> for GammaVec {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut gv = GammaVec::new();
        gv.extend(iter);
        gv
    }
}

impl SpaceUsage for GammaVec {
    fn model_bits(&self) -> u64 {
        self.bits.len() as u64
    }
    fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
    }
}

/// Streaming decoder over a gamma-coded bit sequence.
#[derive(Debug, Clone)]
pub struct GammaDecoder<'a> {
    bits: &'a BitVec,
    pos: usize,
}

impl Iterator for GammaDecoder<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.pos >= self.bits.len() {
            return None;
        }
        let mut n = 0u32;
        while !self.bits.get(self.pos) {
            n += 1;
            self.pos += 1;
            debug_assert!(self.pos < self.bits.len(), "truncated gamma code");
        }
        let mut v: u64 = 0;
        for _ in 0..=n {
            v = (v << 1) | self.bits.get(self.pos) as u64;
            self.pos += 1;
        }
        Some(v - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::gamma_bits;

    #[test]
    fn roundtrip_small_values() {
        let vals: Vec<u64> = (0..100).collect();
        let gv: GammaVec = vals.iter().copied().collect();
        assert_eq!(gv.decode_all(), vals);
    }

    #[test]
    fn roundtrip_large_values() {
        let vals = vec![0, 1, u32::MAX as u64, 1 << 40, (1 << 62) + 12345];
        let gv: GammaVec = vals.iter().copied().collect();
        assert_eq!(gv.decode_all(), vals);
    }

    #[test]
    fn encoded_length_matches_gamma_bits() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 12345, 1 << 33] {
            let mut gv = GammaVec::new();
            gv.push(v);
            assert_eq!(gv.bit_len() as u64, gamma_bits(v), "value {v}");
        }
    }

    #[test]
    fn zero_costs_one_bit() {
        let gv: GammaVec = std::iter::repeat_n(0u64, 64).collect();
        assert_eq!(gv.bit_len(), 64);
    }

    #[test]
    fn mixed_sequence_concatenates() {
        let vals = vec![5u64, 0, 9999, 1, 0, 42];
        let gv: GammaVec = vals.iter().copied().collect();
        let expected: u64 = vals.iter().map(|&v| gamma_bits(v)).sum();
        assert_eq!(gv.model_bits(), expected);
        assert_eq!(gv.decode_all(), vals);
    }

    #[test]
    #[should_panic(expected = "cannot encode")]
    fn max_value_rejected() {
        let mut gv = GammaVec::new();
        gv.push(u64::MAX);
    }
}
