//! Updatable counter arrays with Blandford–Blelloch-style accounting.
//!
//! §2.3 of the paper: "We store an integer C using a variable length array
//! of \[BB08\] which allows us to read and update C in O(1) time and O(log C)
//! bits of space." [`VarCounterArray`] reproduces that contract for an
//! array of counters: O(1) reads and increments, while
//! [`SpaceUsage::model_bits`] charges the Elias-gamma cost
//! `Σ_i (2⌊log₂(c_i+1)⌋+1)` maintained incrementally so that querying the
//! model cost is itself O(1). [`VarCounterArray::to_gamma`] materializes the
//! compact encoding to prove the accounting is realizable.

use crate::gamma::GammaVec;
use crate::space::{gamma_bits, SpaceUsage};
use serde::{Deserialize, Serialize};

/// An array of `u64` counters whose model space cost is the sum of the
/// gamma-code lengths of the current values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarCounterArray {
    counts: Vec<u64>,
    /// Running Σ gamma_bits(c_i), kept in sync by every mutation.
    model_bit_sum: u64,
}

/// Snapshot of the raw counter values, as one varint block through the
/// codec's bulk byte channel (element count, then the LEB128 bytes of
/// every counter): counters are `O(1)` expected bits each, so the block
/// is ~8× smaller than fixed-width words and is written/read with a
/// single bulk call instead of one codec call per counter. The
/// incremental gamma-bit sum is an invariant of the values and is
/// recomputed at restore time rather than trusted from the wire.
impl Serialize for VarCounterArray {
    fn serialize<S: serde::Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_seq_len(self.counts.len())?;
        serializer.write_byte_seq(&crate::varint::encode_uvarints(&self.counts))?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for VarCounterArray {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let n = deserializer.read_seq_len()?;
        let block = deserializer.read_byte_seq()?;
        let counts = crate::varint::decode_uvarints(&block, n)
            .ok_or_else(|| serde::de::Error::invariant("malformed counter varint block"))?;
        let model_bit_sum = counts.iter().map(|&c| gamma_bits(c)).sum();
        Ok(Self {
            counts,
            model_bit_sum,
        })
    }
}

impl VarCounterArray {
    /// Creates `len` zero counters.
    pub fn new(len: usize) -> Self {
        Self {
            counts: vec![0; len],
            // A zero counter costs one bit.
            model_bit_sum: len as u64,
        }
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether there are no counters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Reads counter `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Adds one to counter `i` and returns the new value.
    ///
    /// Fast path of [`VarCounterArray::add`]: a `+1` changes the gamma
    /// cost `2⌊log₂(c+1)⌋+1` only when `c+1` crosses a power-of-two
    /// boundary, i.e. when `old + 2` is a power of two — and then by
    /// exactly 2 bits. Checking that is one add and one popcount-style
    /// test instead of two `gamma_bits` evaluations, which matters to
    /// callers incrementing on every stream item.
    #[inline]
    pub fn increment(&mut self, i: usize) -> u64 {
        let old = self.counts[i];
        let new = old + 1;
        self.counts[i] = new;
        if (old + 2).is_power_of_two() {
            self.model_bit_sum += 2;
        }
        new
    }

    /// Adds one to counter `i` **without** touching the incremental
    /// model-bit sum, returning the new value. Batch update loops use it
    /// to keep gamma accounting out of their inner pass; the caller must
    /// restore the invariant with [`VarCounterArray::resync_model_bits`]
    /// before the next space query.
    #[inline]
    pub fn increment_raw(&mut self, i: usize) -> u64 {
        let new = self.counts[i] + 1;
        self.counts[i] = new;
        new
    }

    /// Recomputes the model-bit sum from the raw counters (the deferred
    /// half of [`VarCounterArray::increment_raw`]): the result is exactly
    /// the value incremental maintenance would have reached. O(len), so
    /// callers amortize it over a batch of raw increments.
    pub fn resync_model_bits(&mut self) {
        self.model_bit_sum = self.counts.iter().map(|&c| gamma_bits(c)).sum();
    }

    /// Adds `delta` to counter `i` and returns the new value.
    #[inline]
    pub fn add(&mut self, i: usize, delta: u64) -> u64 {
        let old = self.counts[i];
        let new = old + delta;
        self.counts[i] = new;
        self.model_bit_sum += gamma_bits(new);
        self.model_bit_sum -= gamma_bits(old);
        new
    }

    /// Sets counter `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        let old = self.counts[i];
        self.counts[i] = value;
        self.model_bit_sum += gamma_bits(value);
        self.model_bit_sum -= gamma_bits(old);
    }

    /// Sets counter `i` to `min(current, cap)`; used for the truncated
    /// counters of Algorithm 3 ("Truncate counters of S3 at
    /// 2·log⁷(2/εδ)").
    #[inline]
    pub fn truncate_at(&mut self, i: usize, cap: u64) {
        if self.counts[i] > cap {
            self.set(i, cap);
        }
    }

    /// Appends a new counter initialized to `value` and returns its index.
    pub fn push(&mut self, value: u64) -> usize {
        self.counts.push(value);
        self.model_bit_sum += gamma_bits(value);
        self.counts.len() - 1
    }

    /// Iterator over counter values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.iter().copied()
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the minimum counter (first on ties).
    pub fn argmin(&self) -> Option<usize> {
        (0..self.counts.len()).min_by_key(|&i| self.counts[i])
    }

    /// Index of the maximum counter (first on ties).
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for i in 0..self.counts.len() {
            if best.is_none_or(|b| self.counts[i] > self.counts[b]) {
                best = Some(i);
            }
        }
        best
    }

    /// Materializes the gamma encoding of the current values, demonstrating
    /// that `model_bits` is the length of an actual code word sequence.
    pub fn to_gamma(&self) -> GammaVec {
        self.counts.iter().copied().collect()
    }

    /// Space cost of a *sparse* encoding: gamma-coded gaps between nonzero
    /// positions plus gamma-coded values, plus a terminator. This is the
    /// accounting for mostly-empty tables such as Algorithm 2's `T3`
    /// ("These are upper bounds; not all the allowed cells will actually
    /// be used"), where charging a bit per empty cell would overstate the
    /// cost by orders of magnitude.
    pub fn sparse_model_bits(&self) -> u64 {
        crate::space::sparse_slice_bits(&self.counts)
    }

    /// Number of nonzero counters.
    pub fn nonzero(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Adds `other`'s counters cell-wise (the merge primitive for
    /// seed-aligned sketch rows), resyncing the gamma accounting once at
    /// the end — exactly the merged cost
    /// [`crate::space::merged_gamma_sum_bits`] predicts. Cells saturate
    /// rather than wrap, so counter values restored from an adversarial
    /// snapshot cannot panic the merge under overflow checks.
    ///
    /// # Panics
    /// If the arrays have different lengths; callers must pre-check the
    /// shapes (every sketch `merge_from` rejects mismatched dimensions
    /// with a `MergeError` before reaching this point).
    pub fn merge_add(&mut self, other: &Self) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merged counter arrays must share their shape"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(o);
        }
        self.resync_model_bits();
    }
}

impl SpaceUsage for VarCounterArray {
    fn model_bits(&self) -> u64 {
        self.model_bit_sum
    }
    fn heap_bytes(&self) -> usize {
        self.counts.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_increments_resync_to_incremental_accounting() {
        let mut incremental = VarCounterArray::new(8);
        let mut raw = VarCounterArray::new(8);
        for i in 0..200usize {
            incremental.increment(i % 8);
            raw.increment_raw(i % 8);
        }
        raw.resync_model_bits();
        assert_eq!(incremental, raw);
        assert_eq!(incremental.model_bits(), raw.model_bits());
    }

    #[test]
    fn model_bits_tracks_gamma_sum() {
        let mut a = VarCounterArray::new(4);
        assert_eq!(a.model_bits(), 4);
        a.add(0, 100);
        a.add(1, 7);
        a.increment(2);
        let expected: u64 = [100u64, 7, 1, 0].iter().map(|&c| gamma_bits(c)).sum();
        assert_eq!(a.model_bits(), expected);
        // And it equals the length of the real encoding.
        assert_eq!(a.model_bits(), a.to_gamma().bit_len() as u64);
    }

    #[test]
    fn set_and_truncate() {
        let mut a = VarCounterArray::new(2);
        a.set(0, 1000);
        a.truncate_at(0, 50);
        assert_eq!(a.get(0), 50);
        a.truncate_at(1, 50); // no-op on small counter
        assert_eq!(a.get(1), 0);
        assert_eq!(
            a.model_bits(),
            gamma_bits(50) + gamma_bits(0),
            "accounting follows truncation"
        );
    }

    #[test]
    fn push_grows_array() {
        let mut a = VarCounterArray::new(0);
        assert_eq!(a.push(9), 0);
        assert_eq!(a.push(0), 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a.model_bits(), gamma_bits(9) + gamma_bits(0));
    }

    #[test]
    fn argmin_argmax_total() {
        let mut a = VarCounterArray::new(3);
        a.set(0, 5);
        a.set(1, 2);
        a.set(2, 8);
        assert_eq!(a.argmin(), Some(1));
        assert_eq!(a.argmax(), Some(2));
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn sparse_accounting_ignores_empty_runs() {
        let mut a = VarCounterArray::new(10_000);
        a.set(17, 3);
        a.set(9_000, 1);
        assert_eq!(a.nonzero(), 2);
        let expected = gamma_bits(17) + gamma_bits(3) + gamma_bits(9_000 - 18) + gamma_bits(1) + 1;
        assert_eq!(a.sparse_model_bits(), expected);
        // Sparse is far below dense for a nearly-empty table.
        assert!(a.sparse_model_bits() < a.model_bits() / 50);
    }

    #[test]
    fn sparse_accounting_empty_table() {
        let a = VarCounterArray::new(1000);
        assert_eq!(a.sparse_model_bits(), 1);
        assert_eq!(a.nonzero(), 0);
    }

    #[test]
    fn increment_fast_path_tracks_gamma_boundaries() {
        // Walk one counter across several power-of-two boundaries and
        // check the incremental sum against a recompute at every step.
        let mut a = VarCounterArray::new(2);
        for expected in 1..=200u64 {
            a.increment(0);
            assert_eq!(a.get(0), expected);
            assert_eq!(
                a.model_bits(),
                gamma_bits(expected) + gamma_bits(0),
                "at value {expected}"
            );
        }
    }

    #[test]
    fn incremental_accounting_matches_recompute_after_many_ops() {
        let mut a = VarCounterArray::new(16);
        let mut x = 12345u64;
        for step in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % 16;
            match step % 3 {
                0 => {
                    a.increment(i);
                }
                1 => {
                    a.add(i, x % 100);
                }
                _ => a.truncate_at(i, 1 << 20),
            }
        }
        let recomputed: u64 = a.iter().map(gamma_bits).sum();
        assert_eq!(a.model_bits(), recomputed);
    }
}
