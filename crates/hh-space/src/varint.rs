//! LEB128 varint slice codecs for snapshot payloads.
//!
//! The snapshot format serializes Algorithm 2's counter tables — tens
//! of thousands of `u64` cells whose values are almost all tiny (the
//! deferred-accounting analysis prices them at `O(1)` expected bits
//! each; that is the whole point of the Theorem-2 space bound). Writing
//! them as fixed 8-byte words costs 8× the information content *and*
//! one codec trait call per cell. These helpers instead encode a whole
//! slice into a contiguous byte block — preallocated once, written
//! once — that travels through the codec's bulk byte channel
//! (`Serializer::write_byte_seq`) as a single length-prefixed `memcpy`.
//!
//! Two encodings:
//!
//! * [`encode_uvarints`] — plain LEB128 per value: 1 byte for values
//!   below 128, which covers essentially every live T2/T3 cell.
//! * [`encode_deltas`] — first value plus LEB128 *gaps*, for
//!   **non-decreasing** slices (epoch threshold tables, offset arrays),
//!   where the gaps are small even when the values are not.
//!
//! Decoders validate exhaustively (truncation, overlong > 10-byte runs,
//! unconsumed trailing bytes, element-count mismatch, delta overflow)
//! so a corrupted snapshot fails loudly instead of deserializing into a
//! structurally broken table.

/// Appends the LEB128 encoding of `v` to `out`.
#[inline]
pub fn push_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// The encoded length of `v` in bytes (1 for values below 128).
#[inline]
pub fn uvarint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Reads one LEB128 value from `buf` starting at `*pos`, advancing
/// `*pos` past it. `None` on truncation or an overlong (> 10 byte /
/// > 64 bit) run.
#[inline]
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = buf.get(*pos)?;
        *pos += 1;
        let payload = u64::from(b & 0x7F);
        // The 10th byte may only carry the single top bit of a u64.
        if shift >= 64 || (shift == 63 && payload > 1) {
            return None;
        }
        v |= payload << shift;
        if b < 0x80 {
            return Some(v);
        }
        shift += 7;
    }
}

/// SWAR lane width of the bulk encode/decode fast paths: 8 values (or
/// bytes) per step, tested with one OR-fold / one masked `u64` load.
const LANES: usize = 8;

/// High bit of every byte in a `u64` — the LEB128 continuation bits of
/// 8 packed single-byte values.
const CONT_BITS: u64 = 0x8080_8080_8080_8080;

/// Encodes `values` as back-to-back LEB128 varints.
///
/// Counter slices are almost entirely sub-128 values (1 encoded byte),
/// so the encoder runs 8 values per step: one OR-fold proves the whole
/// lane is single-byte and writes it as one 8-byte block; lanes with a
/// wide value fall back to per-value encoding. The output is
/// preallocated for the all-small common case and grows only when wide
/// values appear.
pub fn encode_uvarints(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() + values.len() / 8 + 16);
    let lanes = values.len() / LANES * LANES;
    for chunk in values[..lanes].chunks_exact(LANES) {
        if chunk.iter().fold(0, |a, &v| a | v) < 0x80 {
            let mut packed = [0u8; LANES];
            for (b, &v) in packed.iter_mut().zip(chunk) {
                *b = v as u8;
            }
            out.extend_from_slice(&packed);
        } else {
            for &v in chunk {
                push_uvarint(&mut out, v);
            }
        }
    }
    for &v in &values[lanes..] {
        push_uvarint(&mut out, v);
    }
    out
}

/// Decodes exactly `n` values written by [`encode_uvarints`]. `None` if
/// the block truncates early, carries an invalid run, or has leftover
/// bytes after the `n`-th value.
///
/// Mirror of the encoder's fast path: while at least 8 encoded bytes
/// remain and none of them carries a continuation bit (one masked
/// `u64` test), they are 8 complete values and unpack without the
/// per-byte loop.
pub fn decode_uvarints(buf: &[u8], n: usize) -> Option<Vec<u64>> {
    // A varint takes at least one byte, so `n` can never exceed the
    // block length — reject before allocating anything attacker-sized.
    if n > buf.len() {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 0usize;
    let mut left = n;
    while left >= LANES && pos + LANES <= buf.len() {
        let word = u64::from_le_bytes(buf[pos..pos + LANES].try_into().expect("lane width"));
        if word & CONT_BITS == 0 {
            // 8 complete one-byte values: unpack into a fixed array and
            // append in one bounds-checked copy.
            let mut vals = [0u64; LANES];
            for (i, v) in vals.iter_mut().enumerate() {
                *v = (word >> (8 * i)) & 0x7F;
            }
            out.extend_from_slice(&vals);
            pos += LANES;
            left -= LANES;
        } else {
            // One wide (or boundary-straddling) value the slow way,
            // then back to the lane test.
            out.push(read_uvarint(buf, &mut pos)?);
            left -= 1;
        }
    }
    for _ in 0..left {
        out.push(read_uvarint(buf, &mut pos)?);
    }
    (pos == buf.len()).then_some(out)
}

/// Encodes a **non-decreasing** slice as its first value followed by
/// LEB128 gaps. Returns `None` if the slice decreases anywhere (callers
/// fall back to [`encode_uvarints`]); the empty slice encodes to an
/// empty block.
pub fn encode_deltas(values: &[u64]) -> Option<Vec<u8>> {
    let Some(&first) = values.first() else {
        return Some(Vec::new());
    };
    let mut out = Vec::with_capacity(values.len() + uvarint_len(first));
    push_uvarint(&mut out, first);
    let mut prev = first;
    for &v in &values[1..] {
        push_uvarint(&mut out, v.checked_sub(prev)?);
        prev = v;
    }
    Some(out)
}

/// Decodes exactly `n` values written by [`encode_deltas`]; `None` on
/// any malformation, including a cumulative sum overflowing `u64`.
pub fn decode_deltas(buf: &[u8], n: usize) -> Option<Vec<u64>> {
    if n == 0 {
        return buf.is_empty().then_some(Vec::new());
    }
    if n > buf.len() {
        return None;
    }
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(n);
    let mut acc = read_uvarint(buf, &mut pos)?;
    out.push(acc);
    for _ in 1..n {
        acc = acc.checked_add(read_uvarint(buf, &mut pos)?)?;
        out.push(acc);
    }
    (pos == buf.len()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_values_round_trip_at_every_width() {
        let mut probes = vec![0u64, 1, 127, 128, 300, u32::MAX as u64];
        probes.extend((0..64).map(|s| 1u64 << s));
        probes.push(u64::MAX);
        for v in probes {
            let mut buf = Vec::new();
            push_uvarint(&mut buf, v);
            assert_eq!(buf.len(), uvarint_len(v), "len of {v}");
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn slices_round_trip_and_compress_small_values() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i % 7).collect();
        let block = encode_uvarints(&values);
        assert_eq!(block.len(), values.len(), "small values take 1 byte");
        assert_eq!(decode_uvarints(&block, values.len()).unwrap(), values);
        // Mixed widths too.
        let wide = vec![0, u64::MAX, 1, 1 << 40, 127, 128];
        let block = encode_uvarints(&wide);
        assert_eq!(decode_uvarints(&block, wide.len()).unwrap(), wide);
    }

    #[test]
    fn decode_rejects_malformed_blocks() {
        let values = vec![5u64, 300, 7];
        let block = encode_uvarints(&values);
        // Truncation, wrong element count, trailing garbage.
        assert_eq!(decode_uvarints(&block[..block.len() - 1], 3), None);
        assert_eq!(decode_uvarints(&block, 2), None);
        assert_eq!(decode_uvarints(&block, 4), None);
        let mut trailing = block.clone();
        trailing.push(0);
        assert_eq!(decode_uvarints(&trailing, 3), None);
        // Overlong run: 11 continuation bytes can encode nothing valid.
        let overlong = vec![0x80u8; 11];
        assert_eq!(decode_uvarints(&overlong, 1), None);
        // A 10th byte carrying more than the top bit overflows u64.
        let mut too_wide = vec![0xFFu8; 9];
        too_wide.push(0x02);
        assert_eq!(decode_uvarints(&too_wide, 1), None);
        // An absurd count cannot trigger a huge allocation.
        assert_eq!(decode_uvarints(&block, usize::MAX), None);
    }

    #[test]
    fn deltas_round_trip_monotone_slices() {
        let thresholds = vec![51u64, 71, 100, 142, 200, 283, 400];
        let block = encode_deltas(&thresholds).unwrap();
        assert!(block.len() < 8 * thresholds.len());
        assert_eq!(decode_deltas(&block, thresholds.len()).unwrap(), thresholds);
        // Plateaus are fine (gap 0); decreases are not.
        assert!(encode_deltas(&[3, 3, 4]).is_some());
        assert_eq!(encode_deltas(&[3, 2]), None);
        // Empty slice.
        assert_eq!(encode_deltas(&[]).unwrap(), Vec::<u8>::new());
        assert_eq!(decode_deltas(&[], 0), Some(Vec::new()));
    }

    #[test]
    fn delta_decode_rejects_overflow_and_truncation() {
        let block = encode_deltas(&[u64::MAX - 1, u64::MAX]).unwrap();
        assert_eq!(
            decode_deltas(&block, 2).unwrap(),
            vec![u64::MAX - 1, u64::MAX]
        );
        // Crafted gaps that overflow the running sum must fail.
        let mut bad = Vec::new();
        push_uvarint(&mut bad, u64::MAX);
        push_uvarint(&mut bad, 1);
        assert_eq!(decode_deltas(&bad, 2), None);
        assert_eq!(decode_deltas(&block[..1], 2), None);
    }
}
