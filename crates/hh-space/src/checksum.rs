//! Vendored integrity checksums for the snapshot wire format.
//!
//! Snapshot buffers travel between processes (checkpoint files today, a
//! network daemon next), so restore must be able to tell *corrupt* from
//! *well-formed* before interpreting a single length prefix. Two
//! classic, dependency-free checksums are vendored here:
//!
//! * [`fnv1a64`] — Fowler–Noll–Vo 1a, 64-bit. One multiply and one
//!   xor per byte, 8-byte digest; the textbook serial form, kept for
//!   reference and for tail bytes.
//! * [`fnv1a64x4`] — four interleaved FNV-1a chains over 8-byte words,
//!   folded into one 8-byte digest. Same error-detection role at
//!   multiplier-throughput speed; this is the trailer the snapshot
//!   codec appends (see `hh-core`'s `snapshot` module).
//! * [`crc32`] — CRC-32 (IEEE 802.3 polynomial, reflected), via a
//!   const-built 256-entry table. Provided for wire formats that need
//!   the conventional 4-byte digest; same error-detection role.
//!
//! Neither is cryptographic: they detect *accidents* (truncation, bit
//! rot, interleaved writes), not forgery. That is the right contract
//! for a checkpoint codec — authenticity, when needed, belongs to the
//! transport.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a digest of `bytes`.
///
/// ```
/// use hh_space::checksum::fnv1a64;
/// // Classic published vectors.
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
/// // Any flipped bit moves the digest.
/// assert_ne!(fnv1a64(b"hh.algo2.v3"), fnv1a64(b"hh.algo2.v2"));
/// ```
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The striped FNV-1a/64 digest of `bytes`: four independent FNV-1a
/// chains over interleaved 8-byte words, folded together (with the
/// scalar digest of the tail and the input length) through one final
/// FNV chain.
///
/// This is the snapshot codec's trailer digest. Plain [`fnv1a64`] is a
/// strictly serial multiply chain — one 64-bit multiply *per byte*,
/// each depending on the last — which caps it near 0.25 bytes/cycle
/// and made checksumming dominate snapshot round-trips. The striped
/// variant issues four independent multiplies per 32-byte block, so
/// the chains pipeline and throughput is bounded by multiplier issue
/// rate instead of latency (~30× on large buffers). Error detection is
/// inherited: every FNV-1a step is a bijection on the lane state (xor,
/// then multiply by an odd prime), so any single-bit flip changes its
/// lane's digest, and the final fold mixes every lane and the length.
///
/// Not FNV-1a of the reference distribution (no published vectors) and
/// not cryptographic — same accidents-only contract as [`fnv1a64`].
///
/// ```
/// use hh_space::checksum::fnv1a64x4;
/// assert_ne!(fnv1a64x4(b"hh.algo2.v3"), fnv1a64x4(b"hh.algo2.v2"));
/// assert_ne!(fnv1a64x4(b"ab"), fnv1a64x4(b"ba"));
/// ```
#[must_use]
pub fn fnv1a64x4(bytes: &[u8]) -> u64 {
    // Distinct lane seeds so a block permutation cannot cancel out.
    let mut lanes = [
        FNV_OFFSET,
        FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        FNV_OFFSET ^ 0xc2b2_ae3d_27d4_eb4f,
        FNV_OFFSET ^ 0x1656_67b1_9e37_79f9,
    ];
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (lane, word) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().expect("8-byte word"));
            *lane = lane.wrapping_mul(FNV_PRIME);
        }
    }
    let tail = fnv1a64(chunks.remainder());
    let mut h = FNV_OFFSET ^ (bytes.len() as u64);
    h = h.wrapping_mul(FNV_PRIME);
    for lane in lanes {
        h ^= lane;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= tail;
    h.wrapping_mul(FNV_PRIME)
}

/// Reflected CRC-32 (IEEE) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE 802.3) digest of `bytes`.
///
/// ```
/// use hh_space::checksum::crc32;
/// // The canonical check value for this polynomial.
/// assert_eq!(crc32(b"123456789"), 0xCBF43926);
/// assert_eq!(crc32(b""), 0);
/// ```
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_published_vectors() {
        // Vectors from the FNV reference distribution.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc32_matches_published_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn single_bit_flips_always_change_every_digest() {
        // 259 bytes: exercises full 32-byte blocks AND a 3-byte tail.
        let base: Vec<u8> = (0..=255u8).chain(0..3u8).collect();
        let f0 = fnv1a64(&base);
        let s0 = fnv1a64x4(&base);
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a64(&flipped), f0, "fnv missed flip at {i}:{bit}");
                assert_ne!(fnv1a64x4(&flipped), s0, "fnv x4 missed flip at {i}:{bit}");
                assert_ne!(crc32(&flipped), c0, "crc missed flip at {i}:{bit}");
            }
        }
    }

    #[test]
    fn truncation_changes_the_digest() {
        let base: Vec<u8> = (0..96u8).collect();
        let f0 = fnv1a64(&base);
        let s0 = fnv1a64x4(&base);
        for cut in 0..base.len() {
            assert_ne!(fnv1a64(&base[..cut]), f0, "fnv missed truncation at {cut}");
            assert_ne!(
                fnv1a64x4(&base[..cut]),
                s0,
                "fnv x4 missed truncation at {cut}"
            );
        }
    }

    #[test]
    fn striped_digest_distinguishes_block_permutations() {
        // Swapping two 8-byte words inside one block, or two whole
        // blocks, must move the digest: lanes are seeded distinctly and
        // each chain is position-sensitive.
        fn swap_words(buf: &mut [u8], a: usize, b: usize) {
            for i in 0..8 {
                buf.swap(a + i, b + i);
            }
        }
        let base: Vec<u8> = (0..64u8).collect();
        let s0 = fnv1a64x4(&base);
        let mut word_swapped = base.clone();
        swap_words(&mut word_swapped, 0, 8);
        assert_ne!(fnv1a64x4(&word_swapped), s0);
        let mut block_swapped = base.clone();
        swap_words(&mut block_swapped, 0, 32);
        assert_ne!(fnv1a64x4(&block_swapped), s0);
    }
}
