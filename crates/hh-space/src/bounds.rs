//! The bound formulas of Table 1, used by the experiment harness.
//!
//! Each function returns the bound expression evaluated with base-2
//! logarithms, in "bound units" — i.e. the Θ(·) argument with constant 1.
//! The Table-1 reproduction (experiments E1–E5) plots
//! `measured_model_bits / bound_units` across parameter sweeps; the paper's
//! claim is reproduced when that ratio stays flat (bounded above and below
//! by constants) along every axis.
//!
//! All formulas take ε, φ ∈ (0,1], universe size `n` and stream length `m`.

/// `log₂(x)` clamped below at 1, so products never vanish for tiny
/// arguments (the paper's bounds all hold "for n sufficiently large").
fn lg(x: f64) -> f64 {
    x.log2().max(1.0)
}

/// `log₂ log₂ (x)` clamped below at 1.
fn lglg(x: f64) -> f64 {
    lg(x.log2().max(2.0))
}

/// Table 1, row "(ε, φ)-Heavy Hitters", upper and lower bound (they match):
/// `ε⁻¹ log φ⁻¹ + φ⁻¹ log n + log log m` (Theorems 2/7 and 9/14).
pub fn heavy_hitters(eps: f64, phi: f64, n: u64, m: u64) -> f64 {
    (1.0 / eps) * lg(1.0 / phi) + (1.0 / phi) * lg(n as f64) + lglg(m as f64)
}

/// Theorem 1 (Algorithm 1, the simple near-optimal algorithm):
/// `ε⁻¹(log ε⁻¹ + log log δ⁻¹) + φ⁻¹ log n + log log m`.
pub fn heavy_hitters_simple(eps: f64, phi: f64, delta: f64, n: u64, m: u64) -> f64 {
    (1.0 / eps) * (lg(1.0 / eps) + lglg(1.0 / delta).max(1.0))
        + (1.0 / phi) * lg(n as f64)
        + lglg(m as f64)
}

/// Table 1, row "ε-Maximum and ℓ∞-approximation":
/// `ε⁻¹ log ε⁻¹ + log n + log log m` (Theorems 1/7 and 9/14).
pub fn maximum(eps: f64, n: u64, m: u64) -> f64 {
    (1.0 / eps) * lg(1.0 / eps) + lg(n as f64) + lglg(m as f64)
}

/// Table 1, row "ε-Minimum", upper bound:
/// `ε⁻¹ log log ε⁻¹ + log log m` (Theorems 4 and 8).
pub fn minimum_upper(eps: f64, m: u64) -> f64 {
    (1.0 / eps) * lglg(1.0 / eps) + lglg(m as f64)
}

/// Table 1, row "ε-Minimum", lower bound:
/// `ε⁻¹ + log log m` (Theorems 11 and 14).
pub fn minimum_lower(eps: f64, m: u64) -> f64 {
    1.0 / eps + lglg(m as f64)
}

/// Table 1, row "ε-Borda":
/// `n(log ε⁻¹ + log n) + log log m` (Theorems 5/8 and 12/14).
pub fn borda(eps: f64, n: u64, m: u64) -> f64 {
    n as f64 * (lg(1.0 / eps) + lg(n as f64)) + lglg(m as f64)
}

/// Table 1, row "ε-Maximin", upper bound:
/// `n ε⁻² log² n + log log m` (Theorems 6 and 8).
pub fn maximin_upper(eps: f64, n: u64, m: u64) -> f64 {
    n as f64 * (1.0 / (eps * eps)) * lg(n as f64) * lg(n as f64) + lglg(m as f64)
}

/// Table 1, row "ε-Maximin", lower bound:
/// `n(ε⁻² + log n) + log log m` (Theorem 13).
pub fn maximin_lower(eps: f64, n: u64, m: u64) -> f64 {
    n as f64 * (1.0 / (eps * eps) + lg(n as f64)) + lglg(m as f64)
}

/// The pre-existing upper bound the paper improves on (Misra–Gries \[MG82\],
/// rediscovered by \[DLOM02\] and \[KSP03\]): `ε⁻¹ (log n + log m)` bits.
pub fn misra_gries(eps: f64, n: u64, m: u64) -> f64 {
    (1.0 / eps) * (lg(n as f64) + lg(m as f64))
}

/// The pre-paper lower bound for (ε,φ)-heavy hitters quoted in §1:
/// `φ⁻¹ log(φn) + ε⁻¹`.
pub fn heavy_hitters_old_lower(eps: f64, phi: f64, n: u64) -> f64 {
    (1.0 / phi) * lg(phi * n as f64) + 1.0 / eps
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: u64 = 1 << 30;

    #[test]
    fn heavy_hitters_has_three_regimes() {
        // ε-dominated regime: halving ε roughly doubles the bound.
        let b1 = heavy_hitters(0.01, 0.5, 1 << 10, M);
        let b2 = heavy_hitters(0.005, 0.5, 1 << 10, M);
        assert!(b2 / b1 > 1.6 && b2 / b1 < 2.4, "ratio {}", b2 / b1);

        // n-dominated regime: squaring n doubles the φ⁻¹ log n term.
        let b3 = heavy_hitters(0.25, 0.01, 1 << 15, M);
        let b4 = heavy_hitters(0.25, 0.01, 1 << 30, M);
        assert!(b4 / b3 > 1.6 && b4 / b3 < 2.2, "ratio {}", b4 / b3);
    }

    #[test]
    fn optimal_beats_simple_and_misra_gries() {
        // At log n >> log(1/ε), the new bound is far below Misra–Gries.
        let eps = 1.0 / 64.0;
        let phi = 0.25;
        let n = 1u64 << 40;
        let ours = heavy_hitters(eps, phi, n, M);
        let simple = heavy_hitters_simple(eps, phi, 0.1, n, M);
        let mg = misra_gries(eps, n, M);
        assert!(ours <= simple * 1.5, "optimal {ours} vs simple {simple}");
        assert!(mg > 4.0 * ours, "mg {mg} should dwarf ours {ours}");
    }

    #[test]
    fn maximum_example_from_intro() {
        // §1.1: with ε⁻¹ = Θ(log n) and log log m = O(log n), the bound is
        // O(log n log log n), beating the previous Ω(log² n).
        let n = 1u64 << 20; // log n = 20
        let eps = 1.0 / 20.0;
        let ours = maximum(eps, n, M);
        let lgn = (n as f64).log2();
        let previous = (1.0 / eps) * lgn; // ε⁻¹ log n = log² n
        assert!(ours < previous, "ours {ours} previous {previous}");
        // Shape check: ours ~ log n * log log n + log n.
        let shape = lgn * lgn.log2() + lgn;
        assert!(ours / shape < 3.0 && ours / shape > 0.3);
    }

    #[test]
    fn minimum_upper_is_tighter_than_eps_heavy_hitters() {
        // §1.1: solving ε-Minimum via (ε,ε)-HH would pay ε⁻¹ log ε⁻¹.
        let eps = 1.0 / 256.0;
        let via_hh = (1.0 / eps) * (1.0f64 / eps).log2();
        let direct = minimum_upper(eps, M);
        assert!(direct < via_hh / 2.0);
        // And LB ≤ UB.
        assert!(minimum_lower(eps, M) <= direct);
    }

    #[test]
    fn maximin_upper_dominates_lower() {
        for &n in &[8u64, 64, 1024] {
            for &e in &[0.5, 0.25, 0.125] {
                assert!(maximin_upper(e, n, M) >= maximin_lower(e, n, M));
            }
        }
    }

    #[test]
    fn borda_linear_in_n_up_to_logs() {
        let b1 = borda(0.1, 100, M);
        let b2 = borda(0.1, 200, M);
        // Doubling n slightly more than doubles the bound (the log n term).
        assert!(b2 / b1 > 2.0 && b2 / b1 < 2.5, "ratio {}", b2 / b1);
    }

    #[test]
    fn loglogm_term_present_but_small() {
        let small = heavy_hitters(0.1, 0.5, 1 << 10, 1 << 8);
        let large = heavy_hitters(0.1, 0.5, 1 << 10, 1 << 60);
        assert!(large > small);
        assert!(large - small < 4.0, "log log m grows very slowly");
    }
}
