//! Fixed-width packed integer vector.
//!
//! Stores `len` integers of `width` bits each, contiguously. This is the
//! natural store for the tables of Algorithm 1 and 2, where every entry has
//! a compile-time-unknown but run-time-fixed bit budget (e.g. each value
//! entry of table `T1` in Algorithm 1 "can store an integer in `[0, 11ℓ]`",
//! i.e. `⌈log₂(11ℓ+1)⌉` bits).

use crate::bits::BitVec;
use crate::space::SpaceUsage;
use serde::{Deserialize, Serialize};

/// A vector of `len` unsigned integers, each stored in exactly `width` bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedIntVec {
    bits: BitVec,
    width: u32,
    len: usize,
}

impl PackedIntVec {
    /// Creates a packed vector of `len` zeros with `width` bits per entry.
    ///
    /// # Panics
    /// If `width` is 0 or exceeds 64.
    pub fn new(len: usize, width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        Self {
            bits: BitVec::zeros(len * width as usize),
            width,
            len,
        }
    }

    /// Creates a packed vector wide enough to hold values up to `max_value`.
    pub fn with_max_value(len: usize, max_value: u64) -> Self {
        Self::new(len, crate::space::id_bits(max_value + 1).max(1) as u32)
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per entry.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Largest storable value, `2^width − 1`.
    #[inline]
    pub fn max_value(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Reads entry `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.bits.get_bits(i * self.width as usize, self.width)
    }

    /// Writes entry `i`. Panics if `v` does not fit in `width` bits.
    #[inline]
    pub fn set(&mut self, i: usize, v: u64) {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        assert!(
            v <= self.max_value(),
            "value {v} does not fit in {} bits",
            self.width
        );
        self.bits.set_bits(i * self.width as usize, v, self.width);
    }

    /// Adds `delta` to entry `i`, saturating at the maximum storable value.
    #[inline]
    pub fn saturating_add(&mut self, i: usize, delta: u64) -> u64 {
        let v = self.get(i).saturating_add(delta).min(self.max_value());
        self.set(i, v);
        v
    }

    /// Iterator over entries.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Index of the minimum entry (first on ties), or `None` when empty.
    pub fn argmin(&self) -> Option<usize> {
        (0..self.len).min_by_key(|&i| self.get(i))
    }

    /// Index of the maximum entry (first on ties), or `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        (0..self.len).max_by_key(|&i| (self.get(i), core::cmp::Reverse(i)))
    }
}

impl SpaceUsage for PackedIntVec {
    fn model_bits(&self) -> u64 {
        self.len as u64 * self.width as u64
    }
    fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_various_widths() {
        for width in [1u32, 3, 7, 13, 31, 64] {
            let mut pv = PackedIntVec::new(50, width);
            let max = pv.max_value();
            for i in 0..50 {
                pv.set(i, (i as u64 * 2_654_435_761) & max);
            }
            for i in 0..50 {
                assert_eq!(
                    pv.get(i),
                    (i as u64 * 2_654_435_761) & max,
                    "w={width} i={i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_value_panics() {
        let mut pv = PackedIntVec::new(4, 3);
        pv.set(0, 8);
    }

    #[test]
    fn with_max_value_sizes_width() {
        let pv = PackedIntVec::with_max_value(10, 11);
        assert_eq!(pv.width(), 4); // 0..=11 needs 4 bits
        let pv = PackedIntVec::with_max_value(10, 15);
        assert_eq!(pv.width(), 4);
        let pv = PackedIntVec::with_max_value(10, 16);
        assert_eq!(pv.width(), 5);
        let pv = PackedIntVec::with_max_value(10, 0);
        assert_eq!(pv.width(), 1);
    }

    #[test]
    fn saturating_add_caps() {
        let mut pv = PackedIntVec::new(2, 4);
        assert_eq!(pv.saturating_add(0, 10), 10);
        assert_eq!(pv.saturating_add(0, 10), 15);
        assert_eq!(pv.get(0), 15);
        assert_eq!(pv.get(1), 0);
    }

    #[test]
    fn argmin_argmax() {
        let mut pv = PackedIntVec::new(5, 8);
        for (i, v) in [9u64, 4, 17, 4, 12].into_iter().enumerate() {
            pv.set(i, v);
        }
        assert_eq!(pv.argmin(), Some(1));
        assert_eq!(pv.argmax(), Some(2));
        let empty = PackedIntVec::new(0, 8);
        assert_eq!(empty.argmin(), None);
        assert_eq!(empty.argmax(), None);
    }

    #[test]
    fn model_bits_is_len_times_width() {
        let pv = PackedIntVec::new(100, 13);
        assert_eq!(pv.model_bits(), 1300);
    }
}
