//! Persistent shard workers: the ingestion substrate behind
//! [`crate::ShardedPipeline`], [`crate::PartitionedPipeline`], and
//! [`crate::partition_and_merge`].
//!
//! The previous generation of these pipelines spawned scoped threads
//! *per ingest call*. One spawn per shard per batch is invisible for
//! whole-stream calls but dominates batch-oriented ingestion — BENCH_4
//! measured the key-sharded pipeline *losing* to its own sequential
//! fallback on exactly that overhead. [`ShardRuntime`] makes the
//! regression structurally impossible: worker threads are spawned
//! **once**, at construction, and batches travel through bounded
//! per-worker queues for the runtime's whole life.
//!
//! # Shape
//!
//! Each shard pairs a worker thread with a [`std::sync::mpsc`] channel
//! of [`QUEUE_DEPTH`] batch slots. The worker owns its summary behind
//! an `Arc<Mutex<_>>` — the mutex is uncontended in steady state (the
//! worker is the only writer; readers lock only after a
//! [`ShardRuntime::flush`] barrier has drained the queues) and exists
//! so quiescent reads need no channel round-trip. Drained batch buffers
//! recycle through a free list back to the dispatcher, so steady-state
//! ingestion allocates nothing: about `QUEUE_DEPTH + 2` buffers per
//! shard circulate forever.
//!
//! The queue bound is deliberate back-pressure: a dispatcher that runs
//! ahead of a slow shard blocks on that shard's queue instead of
//! buffering the overflow, which caps in-flight memory at
//! `shards × QUEUE_DEPTH` batches and keeps the partition pass from
//! racing unboundedly ahead of ingestion. [`Backpressure::Shed`] trades
//! that completeness for bounded latency: a full queue drops the batch
//! and counts it in [`RuntimeHealth::shed_items`] instead of blocking.
//!
//! # Sequential fallback
//!
//! On a single-core host (or a single-shard configuration) the fan-out
//! cannot win — the OS serializes the work anyway, after paying the
//! queue hops. [`IngestMode::Auto`] therefore degrades to inline
//! sequential ingestion: same cells, same per-shard state, no threads.
//! Every caller inherits the guard by construction; DESIGN.md §10
//! records the measured crossover. [`IngestMode::Parallel`] /
//! [`IngestMode::Sequential`] force a mode, which is how the
//! equivalence suite pins both paths on one host.
//!
//! # Failure model: propagate or quarantine
//!
//! Under the default [`FailurePolicy::Propagate`], a worker that panics
//! mid-batch drops its receiver as it unwinds, so the next dispatch to
//! it fails fast — the runtime joins the dead worker and re-raises its
//! payload — and an in-progress [`ShardRuntime::flush`] reports the
//! death instead of waiting on an acknowledgement that will never
//! come. Nothing deadlocks on a dead shard, and the panic is never
//! swallowed: shutdown joins every worker and re-raises the first
//! payload it finds.
//!
//! [`FailurePolicy::Quarantine`] degrades gracefully instead: the dead
//! shard is marked *poisoned* (its panic message recorded in
//! [`RuntimeHealth`]), subsequent dispatches to it are shed and
//! counted, and **every other shard keeps ingesting and serving
//! reads**. A poisoned shard is rebuilt by [`ShardRuntime::recover`]
//! from the bytes laid down by the last [`ShardRuntime::checkpoint`] —
//! the snapshot/restore half of the mergeable-summary contract doing
//! double duty as a crash-recovery log. What the rebuilt shard loses is
//! exactly the batches dispatched after that checkpoint, all of them
//! counted in [`RuntimeHealth::shed_items`]; DESIGN.md §11 walks
//! through the accounting.

use bytes::Bytes;
use hh_core::{MergeableSummary, RestoreReport, SnapshotError, StreamSummary};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batch slots per worker queue. Two slots give double-buffering — the
/// dispatcher partitions batch `n + 1` while the worker drains batch
/// `n` — and anything deeper only adds in-flight memory: the dispatcher
/// and worker advance in lockstep once the pipe is full, so extra slots
/// never fill except ahead of a stall they merely postpone.
pub const QUEUE_DEPTH: usize = 2;

/// How a [`ShardRuntime`] drives its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Persistent workers iff the host has more than one core *and*
    /// there is more than one shard; inline otherwise. The right choice
    /// everywhere outside of mode-equivalence tests.
    Auto,
    /// Inline ingestion on the calling thread, always.
    Sequential,
    /// Persistent workers, even on a single core (the equivalence suite
    /// pins this against [`IngestMode::Sequential`] on one host).
    Parallel,
}

/// What a [`ShardRuntime`] does when a shard worker panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Re-raise the worker's panic at the next dispatch/flush that
    /// touches the dead shard (the default — a worker panic is a bug
    /// and should fail the run loudly).
    #[default]
    Propagate,
    /// Mark the shard poisoned, shed its traffic, and keep every other
    /// shard ingesting and serving reads; [`ShardRuntime::recover`]
    /// rebuilds the shard from its last checkpoint.
    Quarantine,
}

/// What [`ShardRuntime::dispatch`] does when a shard's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the dispatcher until a slot frees (the default: bounded
    /// memory, no data loss).
    #[default]
    Block,
    /// Drop the batch and count its items in
    /// [`RuntimeHealth::shed_items`] (bounded latency for ingest loops
    /// that must not stall behind a slow shard).
    Shed,
}

/// A point-in-time health snapshot of a [`ShardRuntime`]; see
/// [`ShardRuntime::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeHealth {
    /// Total number of shards.
    pub shards: usize,
    /// Whether persistent workers are running (false on the sequential
    /// fallback).
    pub parallel: bool,
    /// Quarantined shards as `(index, panic message)` pairs, in shard
    /// order. Empty under [`FailurePolicy::Propagate`] (a panic there
    /// never survives long enough to be recorded).
    pub poisoned: Vec<(usize, String)>,
    /// Stream items dropped instead of ingested: batches shed on a full
    /// queue under [`Backpressure::Shed`], plus batches bound for a
    /// dead or quarantined shard.
    pub shed_items: u64,
    /// Shards holding checkpoint bytes a [`ShardRuntime::recover`]
    /// could rebuild from.
    pub checkpointed: usize,
}

impl RuntimeHealth {
    /// Whether every shard is live and nothing has been dropped.
    pub fn all_healthy(&self) -> bool {
        self.poisoned.is_empty() && self.shed_items == 0
    }
}

/// Why a [`ShardRuntime::flush_timeout`] barrier did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlushError {
    /// Shards that had not acknowledged the barrier when the deadline
    /// hit. The shards are alive — just slow or stalled; their batches
    /// remain queued and a later flush can still succeed.
    TimedOut {
        /// Indices of shards still owing an acknowledgement.
        pending: Vec<usize>,
    },
    /// Shards whose worker died before acknowledging. Returned (rather
    /// than panicking) only under [`FailurePolicy::Quarantine`], after
    /// the shards have been quarantined.
    WorkerPanicked {
        /// Indices of the shards whose workers died.
        shards: Vec<usize>,
    },
}

impl std::fmt::Display for FlushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TimedOut { pending } => {
                write!(f, "flush timed out waiting on shards {pending:?}")
            }
            Self::WorkerPanicked { shards } => {
                write!(f, "shard workers {shards:?} panicked before the barrier")
            }
        }
    }
}

impl std::error::Error for FlushError {}

/// Why [`ShardRuntime::recover`] could not rebuild a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The shard is live; there is nothing to recover.
    NotQuarantined,
    /// No [`ShardRuntime::checkpoint`] has captured this shard, so
    /// there are no bytes to rebuild from.
    NoCheckpoint,
    /// The checkpoint bytes failed to restore (they are kept verbatim
    /// in memory, so this indicates corruption outside the runtime).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotQuarantined => write!(f, "shard is not quarantined"),
            Self::NoCheckpoint => write!(f, "no checkpoint to rebuild the shard from"),
            Self::Snapshot(e) => write!(f, "checkpoint failed to restore: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Work sent to a shard worker.
enum Job {
    /// Ingest one batch (the buffer returns through the free list).
    Batch(Vec<u64>),
    /// Barrier acknowledgement: by channel FIFO, every batch enqueued
    /// before this job has been fully ingested when the shard's index
    /// comes back on the ack channel.
    Flush(Sender<usize>, usize),
}

struct Worker {
    tx: SyncSender<Job>,
    /// Behind a mutex so the `&self` flush path can join a dead worker
    /// when quarantining it.
    handle: Mutex<Option<JoinHandle<()>>>,
}

/// Mutable failure-tracking state, interior-mutable so the `&self`
/// read/flush paths can record deaths they discover.
struct HealthState {
    /// Panic message per quarantined shard (`None` = live).
    poisoned: Vec<Option<String>>,
    /// Items dropped instead of ingested; see
    /// [`RuntimeHealth::shed_items`].
    shed_items: u64,
}

/// A fixed bank of summaries, each driven by its own persistent worker
/// thread (or inline, in sequential mode). See the module docs for the
/// design; see [`crate::ShardedPipeline`] for the primary consumer.
pub struct ShardRuntime<S> {
    cells: Vec<Arc<Mutex<S>>>,
    /// Empty in sequential mode.
    workers: Vec<Worker>,
    /// Recycled batch buffers, refilled by workers after each drain
    /// (always disconnected-empty on the sequential fallback, which
    /// never allocates batch buffers at all).
    free_rx: Receiver<Vec<u64>>,
    /// Kept alive so [`ShardRuntime::recover`] can plumb the free list
    /// into a respawned worker.
    free_tx: Sender<Vec<u64>>,
    policy: FailurePolicy,
    backpressure: Backpressure,
    health: Mutex<HealthState>,
    /// Last checkpoint bytes per shard; see [`ShardRuntime::checkpoint`].
    checkpoints: Vec<Option<Bytes>>,
}

impl<S> std::fmt::Debug for ShardRuntime<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("shards", &self.cells.len())
            .field("parallel", &!self.workers.is_empty())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// Single-writer locks cannot poison each other, but a reader callback
/// (or a quarantined worker) may panic while holding the lock; the
/// state it saw is still consistent for readers, and writers only
/// reach a recovered cell through [`ShardRuntime::recover`], which
/// replaces the value wholesale.
fn lock<S>(cell: &Mutex<S>) -> std::sync::MutexGuard<'_, S> {
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a joined worker's panic payload for [`RuntimeHealth`].
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

impl<S: StreamSummary + Send + 'static> ShardRuntime<S> {
    /// A runtime over `summaries` (one shard each, in order) in the
    /// given mode, with the default [`FailurePolicy::Propagate`] and
    /// [`Backpressure::Block`].
    ///
    /// # Panics
    /// If `summaries` is empty, or a worker thread cannot be spawned.
    pub fn new(summaries: Vec<S>, mode: IngestMode) -> Self {
        assert!(!summaries.is_empty(), "need at least one shard");
        let parallel = match mode {
            IngestMode::Sequential => false,
            // Unconditional, even for one shard: the mode exists so the
            // equivalence and panic-propagation suites can force the
            // worker path onto any host.
            IngestMode::Parallel => true,
            IngestMode::Auto => {
                summaries.len() > 1
                    && std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        > 1
            }
        };
        let cells: Vec<Arc<Mutex<S>>> = summaries
            .into_iter()
            .map(|s| Arc::new(Mutex::new(s)))
            .collect();
        let (free_tx, free_rx) = channel();
        let workers = if parallel {
            cells
                .iter()
                .enumerate()
                .map(|(j, cell)| spawn_worker(j, Arc::clone(cell), free_tx.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let shards = cells.len();
        Self {
            cells,
            workers,
            free_rx,
            free_tx,
            policy: FailurePolicy::default(),
            backpressure: Backpressure::default(),
            health: Mutex::new(HealthState {
                poisoned: vec![None; shards],
                shed_items: 0,
            }),
            checkpoints: vec![None; shards],
        }
    }

    /// Sets what happens when a shard worker panics. Takes effect for
    /// deaths discovered from this call on; see [`FailurePolicy`].
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// Sets the full-queue dispatch behavior; see [`Backpressure`].
    pub fn set_backpressure(&mut self, backpressure: Backpressure) {
        self.backpressure = backpressure;
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the runtime holds no shards (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether persistent workers are running (false on the sequential
    /// fallback).
    pub fn is_parallel(&self) -> bool {
        !self.workers.is_empty()
    }

    /// A point-in-time health snapshot: which shards are quarantined
    /// (and why), how many items have been shed, and how many shards a
    /// [`ShardRuntime::recover`] could rebuild.
    pub fn health(&self) -> RuntimeHealth {
        let state = lock(&self.health);
        RuntimeHealth {
            shards: self.cells.len(),
            parallel: self.is_parallel(),
            poisoned: state
                .poisoned
                .iter()
                .enumerate()
                .filter_map(|(j, p)| p.as_ref().map(|msg| (j, msg.clone())))
                .collect(),
            shed_items: state.shed_items,
            checkpointed: self.checkpoints.iter().filter(|c| c.is_some()).count(),
        }
    }

    /// A recycled batch buffer from the free list, or a fresh one.
    fn recycled(&mut self) -> Vec<u64> {
        let mut buf = self.free_rx.try_recv().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Enqueues `batch` on shard `j`'s worker, leaving a recycled empty
    /// buffer (with warm capacity) in its place — the caller's scratch
    /// vector and the runtime's free list form one circulating pool. In
    /// sequential mode the batch is ingested inline and left untouched.
    ///
    /// Under [`Backpressure::Block`] (default) this blocks while shard
    /// `j`'s queue is full; under [`Backpressure::Shed`] it drops the
    /// batch instead and counts the items. A dead worker follows the
    /// failure policy: [`FailurePolicy::Propagate`] re-raises its panic
    /// here, [`FailurePolicy::Quarantine`] poisons the shard and sheds.
    pub fn dispatch(&mut self, j: usize, batch: &mut Vec<u64>) {
        if batch.is_empty() {
            return;
        }
        if self.shed_if_poisoned(j, batch.len() as u64) {
            batch.clear();
            return;
        }
        if self.workers.is_empty() {
            self.ingest_inline(j, batch);
            return;
        }
        let mut owned = self.recycled();
        std::mem::swap(batch, &mut owned);
        self.send_batch(j, owned);
    }

    /// Like [`ShardRuntime::dispatch`] for borrowed batches: copies
    /// `items` into a recycled buffer in parallel mode, ingests inline
    /// (zero-copy) in sequential mode.
    pub fn dispatch_ref(&mut self, j: usize, items: &[u64]) {
        if items.is_empty() {
            return;
        }
        if self.shed_if_poisoned(j, items.len() as u64) {
            return;
        }
        if self.workers.is_empty() {
            self.ingest_inline(j, items);
            return;
        }
        let mut owned = self.recycled();
        owned.extend_from_slice(items);
        self.send_batch(j, owned);
    }

    /// Whether shard `j` is quarantined; if so, charges `items` to the
    /// shed counter (a poisoned shard's traffic is dropped, not queued
    /// behind a worker that will never drain it).
    fn shed_if_poisoned(&self, j: usize, items: u64) -> bool {
        let mut state = lock(&self.health);
        if state.poisoned[j].is_some() {
            state.shed_items += items;
            true
        } else {
            false
        }
    }

    /// Sequential-mode ingestion. Under [`FailurePolicy::Quarantine`]
    /// a panicking summary poisons its shard exactly like a dead
    /// worker would (the panic is caught; reads on other shards keep
    /// working); under the default policy it propagates to the caller.
    fn ingest_inline(&self, j: usize, items: &[u64]) {
        match self.policy {
            FailurePolicy::Propagate => lock(&self.cells[j]).insert_batch(items),
            FailurePolicy::Quarantine => {
                let cell = &self.cells[j];
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    lock(cell).insert_batch(items)
                }));
                if let Err(payload) = outcome {
                    let mut state = lock(&self.health);
                    state.poisoned[j] = Some(payload_message(payload.as_ref()));
                    state.shed_items += items.len() as u64;
                }
            }
        }
    }

    /// Queues one owned batch on worker `j`, applying the backpressure
    /// policy and the failure policy.
    fn send_batch(&mut self, j: usize, owned: Vec<u64>) {
        use std::sync::mpsc::TrySendError;
        let send_result = match self.backpressure {
            Backpressure::Block => self.workers[j].tx.send(Job::Batch(owned)).map_err(|e| e.0),
            Backpressure::Shed => match self.workers[j].tx.try_send(Job::Batch(owned)) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(Job::Batch(buf))) => {
                    lock(&self.health).shed_items += buf.len() as u64;
                    // The buffer stays in circulation.
                    let _ = self.free_tx.send(buf);
                    Ok(())
                }
                Err(TrySendError::Full(job)) => {
                    drop(job);
                    unreachable!("only batches are dispatched here");
                }
                Err(TrySendError::Disconnected(job)) => Err(job),
            },
        };
        if let Err(job) = send_result {
            let lost = match job {
                Job::Batch(buf) => buf.len() as u64,
                Job::Flush(..) => 0,
            };
            self.worker_died(j, lost);
        }
    }

    /// Handles a discovered worker death per the failure policy.
    fn worker_died(&self, j: usize, lost_items: u64) {
        match self.policy {
            FailurePolicy::Propagate => self.join_dead_worker(j),
            FailurePolicy::Quarantine => self.quarantine(j, lost_items),
        }
    }

    /// Barrier: returns once every batch dispatched so far has been
    /// fully ingested. A no-op on the sequential fallback (ingestion is
    /// synchronous there).
    ///
    /// # Panics
    /// Under [`FailurePolicy::Propagate`], if any worker died — the
    /// queues of a dead shard would otherwise hold batches no one will
    /// ever drain. Under [`FailurePolicy::Quarantine`] the dead shards
    /// are quarantined instead and the live shards' barrier holds.
    pub fn flush(&self) {
        // Dead workers were already handled per policy inside the
        // barrier; a timeout is impossible with no deadline.
        let _ = self.barrier(None);
    }

    /// [`ShardRuntime::flush`] with a deadline: waits at most `timeout`
    /// for the barrier acknowledgements.
    ///
    /// # Errors
    /// [`FlushError::TimedOut`] with the still-pending shards if the
    /// deadline hits (their batches remain queued; the barrier can be
    /// retried), or [`FlushError::WorkerPanicked`] (quarantine policy
    /// only) naming shards whose workers died.
    ///
    /// # Panics
    /// Under [`FailurePolicy::Propagate`], if any worker died.
    pub fn flush_timeout(&self, timeout: Duration) -> Result<(), FlushError> {
        self.barrier(Some(timeout))
    }

    /// The shared barrier behind [`ShardRuntime::flush`] and
    /// [`ShardRuntime::flush_timeout`].
    fn barrier(&self, timeout: Option<Duration>) -> Result<(), FlushError> {
        if self.workers.is_empty() {
            return Ok(());
        }
        let (ack_tx, ack_rx) = channel();
        let mut awaiting = vec![false; self.workers.len()];
        let mut skipped_dead = Vec::new();
        {
            let state = lock(&self.health);
            for (j, w) in self.workers.iter().enumerate() {
                if state.poisoned[j].is_some() {
                    continue; // already quarantined: nothing to drain
                }
                // A send error means the worker's receiver is gone — it
                // panicked and unwound. Keep flushing the live shards so
                // their state is quiescent before we report.
                if w.tx.send(Job::Flush(ack_tx.clone(), j)).is_ok() {
                    awaiting[j] = true;
                } else {
                    skipped_dead.push(j);
                }
            }
        }
        drop(ack_tx);
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut pending = awaiting.iter().filter(|&&a| a).count();
        while pending > 0 {
            let ack = match deadline {
                None => ack_rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    ack_rx.recv_timeout(left)
                }
            };
            match ack {
                Ok(j) => {
                    awaiting[j] = false;
                    pending -= 1;
                }
                // Every remaining ack sender sat in a dead worker's
                // queue and was dropped with it: the shards still
                // marked awaiting are dead.
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(FlushError::TimedOut {
                        pending: (0..awaiting.len()).filter(|&j| awaiting[j]).collect(),
                    });
                }
            }
        }
        let mut dead = skipped_dead;
        dead.extend((0..awaiting.len()).filter(|&j| awaiting[j]));
        if dead.is_empty() {
            return Ok(());
        }
        match self.policy {
            FailurePolicy::Propagate => {
                panic!("shard worker panicked; its batches cannot be recovered")
            }
            FailurePolicy::Quarantine => {
                for &j in &dead {
                    self.quarantine(j, 0);
                }
                Err(FlushError::WorkerPanicked { shards: dead })
            }
        }
    }

    /// Read access to shard `j`'s summary. Callers that need to observe
    /// all prior dispatches must [`ShardRuntime::flush`] first; the lock
    /// alone only guarantees a consistent (not necessarily current)
    /// view.
    pub fn with_summary<T>(&self, j: usize, f: impl FnOnce(&S) -> T) -> T {
        f(&lock(&self.cells[j]))
    }

    /// Maps a read over every shard's summary, in shard order. Same
    /// flush caveat as [`ShardRuntime::with_summary`].
    pub fn map_summaries<T>(&self, mut f: impl FnMut(&S) -> T) -> Vec<T> {
        self.cells.iter().map(|c| f(&lock(c))).collect()
    }

    /// Shuts the workers down and returns the summaries (flushing
    /// implicitly: shutdown drains every queue before the worker
    /// exits). Propagates the first worker panic found, unless the
    /// policy is [`FailurePolicy::Quarantine`] (those deaths are
    /// recorded state, not new information).
    pub fn into_summaries(mut self) -> Vec<S> {
        self.shutdown();
        self.cells
            .drain(..)
            .map(|c| {
                Arc::try_unwrap(c)
                    .ok()
                    .expect("workers joined; no other Arc holders remain")
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
            })
            .collect()
    }

    /// Quarantines shard `j`: joins its dead worker, records the panic
    /// message, and charges any lost items. Idempotent.
    fn quarantine(&self, j: usize, lost_items: u64) {
        let message = match lock(&self.workers[j].handle).take() {
            Some(handle) => match handle.join() {
                Err(payload) => payload_message(payload.as_ref()),
                Ok(()) => "worker exited unexpectedly".to_string(),
            },
            // Already joined (e.g. flush and dispatch both saw the
            // death): keep the first recorded message.
            None => return,
        };
        let mut state = lock(&self.health);
        state.poisoned[j] = Some(message);
        state.shed_items += lost_items;
    }

    /// Joins worker `j` after its channel disconnected, re-raising its
    /// panic payload.
    fn join_dead_worker(&self, j: usize) -> ! {
        let handle = lock(&self.workers[j].handle)
            .take()
            .expect("dead worker joined twice");
        match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            // The worker loop only exits when the sender drops, and the
            // sender is alive in `self` — reaching this is a runtime
            // invariant violation, not a summary failure.
            Ok(()) => unreachable!("shard worker exited while its queue was live"),
        }
    }

    /// Drops every queue sender (workers drain and exit) and joins the
    /// threads, re-raising the first panic payload found (propagate
    /// policy only).
    fn shutdown(&mut self) {
        if let Some(payload) = join_all(&mut self.workers) {
            if self.policy == FailurePolicy::Propagate {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl<S: MergeableSummary + Send + 'static> ShardRuntime<S> {
    /// Checkpoints every live shard: flushes, then snapshots each
    /// summary ([`MergeableSummary::to_bytes`]) into the runtime's
    /// recovery slots. Returns the number of shards captured.
    /// Quarantined shards keep their previous checkpoint (their
    /// current state is whatever the panic left behind).
    ///
    /// The stored bytes are exactly what [`ShardRuntime::recover`]
    /// rebuilds from; callers wanting durability can persist the same
    /// bytes externally — the format is the tagged, checksummed
    /// snapshot codec.
    pub fn checkpoint(&mut self) -> usize {
        self.flush();
        self.capture_checkpoints(&[]).len()
    }

    /// [`ShardRuntime::checkpoint`] with a bounded flush barrier.
    /// Shards still pending when `timeout` hits are skipped entirely —
    /// their queued batches stay queued, their recovery slot keeps its
    /// previous bytes, and (crucially) their cell lock is never taken,
    /// so a worker wedged mid-batch cannot stall the caller. Returns
    /// the `(shard, bytes)` pairs actually captured.
    pub fn checkpoint_timeout(&mut self, timeout: Duration) -> Vec<(usize, Bytes)> {
        let pending = match self.flush_timeout(timeout) {
            Ok(()) => Vec::new(),
            Err(FlushError::TimedOut { pending }) => pending,
            // Dead workers were quarantined by the barrier; the
            // poisoned filter below already excludes them.
            Err(FlushError::WorkerPanicked { .. }) => Vec::new(),
        };
        self.capture_checkpoints(&pending)
    }

    /// Snapshots every shard except poisoned ones and `skip` into the
    /// recovery slots, returning what was captured.
    fn capture_checkpoints(&mut self, skip: &[usize]) -> Vec<(usize, Bytes)> {
        let poisoned: Vec<bool> = {
            let state = lock(&self.health);
            state.poisoned.iter().map(|p| p.is_some()).collect()
        };
        let mut captured = Vec::new();
        for (j, cell) in self.cells.iter().enumerate() {
            if poisoned[j] || skip.contains(&j) {
                continue;
            }
            let bytes = lock(cell).to_bytes();
            self.checkpoints[j] = Some(bytes.clone());
            captured.push((j, bytes));
        }
        captured
    }

    /// Rebuilds quarantined shard `j` from its last checkpoint: the
    /// snapshot bytes restore to a summary, the shard's cell is
    /// replaced wholesale, a fresh worker is spawned (in parallel
    /// mode), and the shard rejoins dispatch. Returns the snapshot
    /// verification report.
    ///
    /// Everything ingested on shard `j` after the checkpoint is gone —
    /// by then it was either drained into the poisoned state being
    /// discarded here, or shed and counted. [`RuntimeHealth`] keeps
    /// the score honest.
    pub fn recover(&mut self, j: usize) -> Result<RestoreReport, RecoverError> {
        {
            let state = lock(&self.health);
            if state.poisoned[j].is_none() {
                return Err(RecoverError::NotQuarantined);
            }
        }
        let bytes = self.checkpoints[j]
            .as_ref()
            .ok_or(RecoverError::NoCheckpoint)?;
        let (restored, report) = S::from_bytes_report(bytes).map_err(RecoverError::Snapshot)?;
        // The cell's mutex may still carry the poison flag from the
        // worker's panic; every lock in this module recovers through
        // `into_inner`, so the flag is harmless once the value is
        // replaced wholesale.
        *lock(&self.cells[j]) = restored;
        if !self.workers.is_empty() {
            self.workers[j] = spawn_worker(j, Arc::clone(&self.cells[j]), self.free_tx.clone());
        }
        lock(&self.health).poisoned[j] = None;
        Ok(report)
    }
}

/// Spawns the persistent worker thread for shard `j` over `cell`,
/// returning batch buffers through `free`.
fn spawn_worker<S: StreamSummary + Send + 'static>(
    j: usize,
    cell: Arc<Mutex<S>>,
    free: Sender<Vec<u64>>,
) -> Worker {
    let (tx, rx) = sync_channel::<Job>(QUEUE_DEPTH);
    let handle = std::thread::Builder::new()
        .name(format!("hh-shard-{j}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                match job {
                    Job::Batch(buf) => {
                        lock(&cell).insert_batch(&buf);
                        // Free-list send fails only after the runtime
                        // dropped; then the buffer just deallocates
                        // here.
                        let _ = free.send(buf);
                    }
                    Job::Flush(ack, shard) => {
                        let _ = ack.send(shard);
                    }
                }
            }
        })
        .expect("spawn shard worker");
    Worker {
        tx,
        handle: Mutex::new(Some(handle)),
    }
}

/// Drains `workers`, dropping each queue sender **before** joining its
/// thread (the worker's `recv` loop ends when the last sender
/// disappears; joining first would deadlock). Returns the first panic
/// payload found, if any.
fn join_all(workers: &mut Vec<Worker>) -> Option<Box<dyn std::any::Any + Send>> {
    let mut panicked = None;
    for w in workers.drain(..) {
        let Worker { tx, handle } = w;
        drop(tx);
        let handle = handle.into_inner().unwrap_or_else(PoisonError::into_inner);
        if let Some(handle) = handle {
            if let Err(payload) = handle.join() {
                panicked.get_or_insert(payload);
            }
        }
    }
    panicked
}

impl<S> Drop for ShardRuntime<S> {
    fn drop(&mut self) {
        // Re-raise a worker's panic unless we are already unwinding (a
        // double panic would abort and mask the original) or the
        // policy treats deaths as recorded state.
        if let Some(payload) = join_all(&mut self.workers) {
            if !std::thread::panicking() && self.policy == FailurePolicy::Propagate {
                std::panic::resume_unwind(payload);
            }
        }
    }
}
