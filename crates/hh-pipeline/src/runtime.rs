//! Persistent shard workers: the ingestion substrate behind
//! [`crate::ShardedPipeline`], [`crate::PartitionedPipeline`], and
//! [`crate::partition_and_merge`].
//!
//! The previous generation of these pipelines spawned scoped threads
//! *per ingest call*. One spawn per shard per batch is invisible for
//! whole-stream calls but dominates batch-oriented ingestion — BENCH_4
//! measured the key-sharded pipeline *losing* to its own sequential
//! fallback on exactly that overhead. [`ShardRuntime`] makes the
//! regression structurally impossible: worker threads are spawned
//! **once**, at construction, and batches travel through bounded
//! per-worker queues for the runtime's whole life.
//!
//! # Shape
//!
//! Each shard pairs a worker thread with a [`std::sync::mpsc`] channel
//! of [`QUEUE_DEPTH`] batch slots. The worker owns its summary behind
//! an `Arc<Mutex<_>>` — the mutex is uncontended in steady state (the
//! worker is the only writer; readers lock only after a
//! [`ShardRuntime::flush`] barrier has drained the queues) and exists
//! so quiescent reads need no channel round-trip. Drained batch buffers
//! recycle through a free list back to the dispatcher, so steady-state
//! ingestion allocates nothing: about `QUEUE_DEPTH + 2` buffers per
//! shard circulate forever.
//!
//! The queue bound is deliberate back-pressure: a dispatcher that runs
//! ahead of a slow shard blocks on that shard's queue instead of
//! buffering the overflow, which caps in-flight memory at
//! `shards × QUEUE_DEPTH` batches and keeps the partition pass from
//! racing unboundedly ahead of ingestion.
//!
//! # Sequential fallback
//!
//! On a single-core host (or a single-shard configuration) the fan-out
//! cannot win — the OS serializes the work anyway, after paying the
//! queue hops. [`IngestMode::Auto`] therefore degrades to inline
//! sequential ingestion: same cells, same per-shard state, no threads.
//! Every caller inherits the guard by construction; DESIGN.md §10
//! records the measured crossover. [`IngestMode::Parallel`] /
//! [`IngestMode::Sequential`] force a mode, which is how the
//! equivalence suite pins both paths on one host.
//!
//! # Panics propagate
//!
//! A worker that panics mid-batch drops its receiver as it unwinds, so
//! the next dispatch to it fails fast — the runtime joins the dead
//! worker and re-raises its payload — and an in-progress
//! [`ShardRuntime::flush`] reports the death instead of waiting on an
//! acknowledgement that will never come. Nothing deadlocks on a dead
//! shard, and the panic is never swallowed: shutdown joins every worker
//! and re-raises the first payload it finds.

use hh_core::StreamSummary;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Batch slots per worker queue. Two slots give double-buffering — the
/// dispatcher partitions batch `n + 1` while the worker drains batch
/// `n` — and anything deeper only adds in-flight memory: the dispatcher
/// and worker advance in lockstep once the pipe is full, so extra slots
/// never fill except ahead of a stall they merely postpone.
pub const QUEUE_DEPTH: usize = 2;

/// How a [`ShardRuntime`] drives its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Persistent workers iff the host has more than one core *and*
    /// there is more than one shard; inline otherwise. The right choice
    /// everywhere outside of mode-equivalence tests.
    Auto,
    /// Inline ingestion on the calling thread, always.
    Sequential,
    /// Persistent workers, even on a single core (the equivalence suite
    /// pins this against [`IngestMode::Sequential`] on one host).
    Parallel,
}

/// Work sent to a shard worker.
enum Job {
    /// Ingest one batch (the buffer returns through the free list).
    Batch(Vec<u64>),
    /// Barrier acknowledgement: by channel FIFO, every batch enqueued
    /// before this job has been fully ingested when the ack arrives.
    Flush(Sender<()>),
}

struct Worker {
    tx: SyncSender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed bank of summaries, each driven by its own persistent worker
/// thread (or inline, in sequential mode). See the module docs for the
/// design; see [`crate::ShardedPipeline`] for the primary consumer.
pub struct ShardRuntime<S> {
    cells: Vec<Arc<Mutex<S>>>,
    /// Empty in sequential mode.
    workers: Vec<Worker>,
    /// Recycled batch buffers, refilled by workers after each drain
    /// (always disconnected-empty on the sequential fallback, which
    /// never allocates batch buffers at all).
    free_rx: Receiver<Vec<u64>>,
}

impl<S> std::fmt::Debug for ShardRuntime<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("shards", &self.cells.len())
            .field("parallel", &!self.workers.is_empty())
            .finish_non_exhaustive()
    }
}

/// Single-writer locks cannot poison each other, but a reader callback
/// may panic while holding the lock; the state it saw is still
/// consistent (readers do not mutate), so recovery is always sound.
fn lock<S>(cell: &Mutex<S>) -> std::sync::MutexGuard<'_, S> {
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<S: StreamSummary + Send + 'static> ShardRuntime<S> {
    /// A runtime over `summaries` (one shard each, in order) in the
    /// given mode.
    ///
    /// # Panics
    /// If `summaries` is empty, or a worker thread cannot be spawned.
    pub fn new(summaries: Vec<S>, mode: IngestMode) -> Self {
        assert!(!summaries.is_empty(), "need at least one shard");
        let parallel = match mode {
            IngestMode::Sequential => false,
            // Unconditional, even for one shard: the mode exists so the
            // equivalence and panic-propagation suites can force the
            // worker path onto any host.
            IngestMode::Parallel => true,
            IngestMode::Auto => {
                summaries.len() > 1
                    && std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        > 1
            }
        };
        let cells: Vec<Arc<Mutex<S>>> = summaries
            .into_iter()
            .map(|s| Arc::new(Mutex::new(s)))
            .collect();
        let (free_tx, free_rx) = channel();
        let workers = if parallel {
            cells
                .iter()
                .enumerate()
                .map(|(j, cell)| {
                    let (tx, rx) = sync_channel::<Job>(QUEUE_DEPTH);
                    let cell = Arc::clone(cell);
                    let free = free_tx.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("hh-shard-{j}"))
                        .spawn(move || {
                            while let Ok(job) = rx.recv() {
                                match job {
                                    Job::Batch(buf) => {
                                        lock(&cell).insert_batch(&buf);
                                        // Free-list send fails only after
                                        // the runtime dropped; then the
                                        // buffer just deallocates here.
                                        let _ = free.send(buf);
                                    }
                                    Job::Flush(ack) => {
                                        let _ = ack.send(());
                                    }
                                }
                            }
                        })
                        .expect("spawn shard worker");
                    Worker {
                        tx,
                        handle: Some(handle),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        drop(free_tx); // workers hold the only senders
        Self {
            cells,
            workers,
            free_rx,
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the runtime holds no shards (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether persistent workers are running (false on the sequential
    /// fallback).
    pub fn is_parallel(&self) -> bool {
        !self.workers.is_empty()
    }

    /// A recycled batch buffer from the free list, or a fresh one.
    fn recycled(&mut self) -> Vec<u64> {
        let mut buf = self.free_rx.try_recv().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Enqueues `batch` on shard `j`'s worker, leaving a recycled empty
    /// buffer (with warm capacity) in its place — the caller's scratch
    /// vector and the runtime's free list form one circulating pool. In
    /// sequential mode the batch is ingested inline and left untouched.
    ///
    /// Blocks when shard `j`'s queue is full (back-pressure), and
    /// propagates the worker's panic if it died.
    pub fn dispatch(&mut self, j: usize, batch: &mut Vec<u64>) {
        if batch.is_empty() {
            return;
        }
        if self.workers.is_empty() {
            lock(&self.cells[j]).insert_batch(batch);
            return;
        }
        let mut owned = self.recycled();
        std::mem::swap(batch, &mut owned);
        if self.workers[j].tx.send(Job::Batch(owned)).is_err() {
            self.join_dead_worker(j);
        }
    }

    /// Like [`ShardRuntime::dispatch`] for borrowed batches: copies
    /// `items` into a recycled buffer in parallel mode, ingests inline
    /// (zero-copy) in sequential mode.
    pub fn dispatch_ref(&mut self, j: usize, items: &[u64]) {
        if items.is_empty() {
            return;
        }
        if self.workers.is_empty() {
            lock(&self.cells[j]).insert_batch(items);
            return;
        }
        let mut owned = self.recycled();
        owned.extend_from_slice(items);
        if self.workers[j].tx.send(Job::Batch(owned)).is_err() {
            self.join_dead_worker(j);
        }
    }

    /// Barrier: returns once every batch dispatched so far has been
    /// fully ingested. A no-op on the sequential fallback (ingestion is
    /// synchronous there).
    ///
    /// # Panics
    /// If any worker died — the queues of a dead shard would otherwise
    /// hold batches no one will ever drain.
    pub fn flush(&self) {
        if self.workers.is_empty() {
            return;
        }
        let (ack_tx, ack_rx) = channel();
        let mut pending = 0usize;
        let mut dead = false;
        for w in &self.workers {
            // A send error means the worker's receiver is gone — it
            // panicked and unwound. Keep flushing the live shards so
            // their state is quiescent before we report.
            if w.tx.send(Job::Flush(ack_tx.clone())).is_ok() {
                pending += 1;
            } else {
                dead = true;
            }
        }
        drop(ack_tx);
        for _ in 0..pending {
            if ack_rx.recv().is_err() {
                dead = true;
                break;
            }
        }
        assert!(
            !dead,
            "shard worker panicked; its batches cannot be recovered"
        );
    }

    /// Read access to shard `j`'s summary. Callers that need to observe
    /// all prior dispatches must [`ShardRuntime::flush`] first; the lock
    /// alone only guarantees a consistent (not necessarily current)
    /// view.
    pub fn with_summary<T>(&self, j: usize, f: impl FnOnce(&S) -> T) -> T {
        f(&lock(&self.cells[j]))
    }

    /// Maps a read over every shard's summary, in shard order. Same
    /// flush caveat as [`ShardRuntime::with_summary`].
    pub fn map_summaries<T>(&self, mut f: impl FnMut(&S) -> T) -> Vec<T> {
        self.cells.iter().map(|c| f(&lock(c))).collect()
    }

    /// Shuts the workers down and returns the summaries (flushing
    /// implicitly: shutdown drains every queue before the worker
    /// exits). Propagates the first worker panic found.
    pub fn into_summaries(mut self) -> Vec<S> {
        self.shutdown();
        self.cells
            .drain(..)
            .map(|c| {
                Arc::try_unwrap(c)
                    .ok()
                    .expect("workers joined; no other Arc holders remain")
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
            })
            .collect()
    }

    /// Joins worker `j` after its channel disconnected, re-raising its
    /// panic payload.
    fn join_dead_worker(&mut self, j: usize) -> ! {
        let handle = self.workers[j]
            .handle
            .take()
            .expect("dead worker joined twice");
        match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            // The worker loop only exits when the sender drops, and the
            // sender is alive in `self` — reaching this is a runtime
            // invariant violation, not a summary failure.
            Ok(()) => unreachable!("shard worker exited while its queue was live"),
        }
    }

    /// Drops every queue sender (workers drain and exit) and joins the
    /// threads, re-raising the first panic payload found.
    fn shutdown(&mut self) {
        if let Some(payload) = join_all(&mut self.workers) {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Drains `workers`, dropping each queue sender **before** joining its
/// thread (the worker's `recv` loop ends when the last sender
/// disappears; joining first would deadlock). Returns the first panic
/// payload found, if any.
fn join_all(workers: &mut Vec<Worker>) -> Option<Box<dyn std::any::Any + Send>> {
    let mut panicked = None;
    for w in workers.drain(..) {
        let Worker { tx, handle } = w;
        drop(tx);
        if let Some(handle) = handle {
            if let Err(payload) = handle.join() {
                panicked.get_or_insert(payload);
            }
        }
    }
    panicked
}

impl<S> Drop for ShardRuntime<S> {
    fn drop(&mut self) {
        // Re-raise a worker's panic unless we are already unwinding (a
        // double panic would abort and mask the original).
        if let Some(payload) = join_all(&mut self.workers) {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}
