//! Key-sharded parallel ingestion: one summary per shard, whole keys per
//! shard, union-of-reports at query time.
//!
//! The workspace's summaries are single-threaded by construction (the
//! paper's model is one pass, one machine word at a time). To saturate
//! more than one core the pipeline shards the stream **by key**, not by
//! position: a shared universal hash routes every occurrence of an item
//! to the same shard, so each shard's summary sees a complete substream
//! — every key's entire count lands on exactly one summary. That choice
//! buys two things a position-sharded split (summarize chunks, merge)
//! cannot:
//!
//! * **No merge semantics.** The global report is the union of per-shard
//!   reports re-thresholded against the *global* stream length. Nothing
//!   is ever combined across summaries, so summaries without a sound
//!   merge (Algorithm 2's sampled, hashed, epoch-coupled tables) shard
//!   as-is.
//! * **Per-shard analyses survive verbatim.** Each shard runs the
//!   unmodified algorithm on the substream of its keys; sampling,
//!   collision, and Misra–Gries error arguments apply per shard with the
//!   shard's (smaller) sample and stream counts, which only tightens
//!   them. See DESIGN.md §"Key-sharded parallel pipeline" for the full
//!   (φ, ε) argument.
//!
//! Ingestion is batch-oriented: [`ShardedPipeline::ingest`] partitions a
//! batch into per-shard scratch buffers with a fast-range over the shared
//! hash, then drives every shard's
//! [`StreamSummary::insert_batch`] on its own scoped thread
//! (`std::thread::scope` — no detached state, panics propagate).
//!
//! # Example
//!
//! ```
//! use hh_core::{HeavyHitters, HhParams};
//! use hh_pipeline::sharded_algo2;
//!
//! let params = HhParams::new(0.05, 0.2).unwrap();
//! let m = 200_000u64;
//! let mut pipe = sharded_algo2(params, 1 << 30, m, 4, 42).unwrap();
//! let batch: Vec<u64> = (0..m).map(|i| if i % 2 == 0 { 7 } else { i }).collect();
//! pipe.ingest(&batch);
//! assert!(pipe.report().contains(7)); // 50% item at phi = 20%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hh_core::{HeavyHitters, HhParams, ItemEstimate, OptimalListHh, ParamError, Report};
use hh_core::{SimpleListHh, StreamSummary};

/// SplitMix64 finalizer: turns any seed (including 0) into a well-mixed
/// word for the router multiplier and per-shard summary seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A key-sharded bank of summaries behind a batch ingestion front end.
///
/// `S` is any [`StreamSummary`]; reporting additionally needs
/// [`HeavyHitters`]. Construction takes a factory so each shard gets its
/// own (independently seeded) summary.
#[derive(Debug)]
pub struct ShardedPipeline<S> {
    shards: Vec<S>,
    /// Per-shard partition buffers, reused across `ingest` calls.
    scratch: Vec<Vec<u64>>,
    /// Odd multiplier of the shared routing hash (Dietzfelbinger's
    /// plain-universal multiply: `h(x) = a·x mod 2⁶⁴`, then a fast-range
    /// of the full word onto the shard count).
    multiplier: u64,
    /// Union-report threshold as a fraction of the total ingested stream
    /// (callers pass the `φ − ε/2` of their summary's reporting rule).
    threshold: f64,
    total: u64,
}

impl<S: StreamSummary + Send> ShardedPipeline<S> {
    /// A pipeline of `num_shards ≥ 1` summaries built by `make(shard)`,
    /// routing keys with a universal hash drawn from `seed`. The final
    /// report keeps union entries with at least `threshold · total`
    /// estimated occurrences.
    pub fn new(
        num_shards: usize,
        seed: u64,
        threshold: f64,
        mut make: impl FnMut(usize) -> S,
    ) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        Self::from_summaries((0..num_shards).map(&mut make).collect(), seed, threshold)
    }

    /// A pipeline over prebuilt shard summaries (one per shard, in shard
    /// order); see [`ShardedPipeline::new`] for the routing and
    /// threshold conventions.
    pub fn from_summaries(shards: Vec<S>, seed: u64, threshold: f64) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(threshold >= 0.0, "threshold is a fraction of the stream");
        let scratch = vec![Vec::new(); shards.len()];
        Self {
            shards,
            scratch,
            multiplier: mix64(seed) | 1,
            threshold,
            total: 0,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Items ingested so far (across all shards).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The shard that owns `item` — every occurrence routes here.
    #[inline]
    pub fn shard_of(&self, item: u64) -> usize {
        let h = self.multiplier.wrapping_mul(item);
        // Lemire fast-range of the full hashed word onto the shard count:
        // the same near-equal preimage classes as `h % shards` without
        // the division, and universality is inherited from the multiply.
        ((h as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// The per-shard summaries (read-only; shard `j` holds exactly the
    /// keys with `shard_of(key) == j`).
    pub fn summaries(&self) -> &[S] {
        &self.shards
    }

    /// Ingests one batch: a partition pass scatters the batch into
    /// per-shard buffers, then every shard with work runs its
    /// [`StreamSummary::insert_batch`] on its own scoped thread. Calls
    /// may be any size; summaries see their keys in stream order across
    /// calls.
    pub fn ingest(&mut self, batch: &[u64]) {
        self.total += batch.len() as u64;
        if self.shards.len() == 1 {
            // Single shard: the partition pass would be a copy.
            self.shards[0].insert_batch(batch);
            return;
        }
        let k = self.shards.len();
        for buf in &mut self.scratch {
            buf.clear();
            buf.reserve(batch.len() / k + batch.len() / (4 * k) + 16);
        }
        let mul = self.multiplier;
        for &x in batch {
            let s = ((mul.wrapping_mul(x) as u128 * k as u128) >> 64) as usize;
            self.scratch[s].push(x);
        }
        std::thread::scope(|scope| {
            for (shard, buf) in self.shards.iter_mut().zip(&self.scratch) {
                if !buf.is_empty() {
                    scope.spawn(move || shard.insert_batch(buf));
                }
            }
        });
    }
}

impl<S: StreamSummary + HeavyHitters + Send> ShardedPipeline<S> {
    /// The global report: the union of per-shard reports, re-thresholded
    /// against the global stream length. Shard reports threshold against
    /// their *own* (shorter) substreams, so they may include keys that
    /// are shard-heavy but globally light; the global cut removes them.
    /// Keys are disjoint across shards, so the union needs no combining.
    pub fn report(&self) -> Report {
        let bar = self.threshold * self.total as f64;
        self.shards
            .iter()
            .flat_map(|s| s.report().entries().to_vec())
            .filter(|e| e.count >= bar)
            .collect::<Vec<ItemEstimate>>()
            .into_iter()
            .collect()
    }

    /// The raw per-shard reports (before the global threshold), for
    /// diagnostics and tests.
    pub fn shard_reports(&self) -> Vec<Report> {
        self.shards.iter().map(HeavyHitters::report).collect()
    }
}

/// A key-sharded bank of Algorithm 1 instances ([`SimpleListHh`]).
///
/// Every shard advertises the **full** stream length `m`, so each keeps
/// the unsharded sampling rate `p = Θ(ℓ/m)`: the sampled work of the
/// whole pipeline equals one unsharded run, split across shards. The
/// union report thresholds at the algorithm's own `(φ − ε/2)` rule
/// against the global stream.
pub fn sharded_algo1(
    params: HhParams,
    universe: u64,
    m: u64,
    shards: usize,
    seed: u64,
) -> Result<ShardedPipeline<SimpleListHh>, ParamError> {
    let summaries = (0..shards)
        .map(|j| SimpleListHh::new(params, universe, m, mix64(seed).wrapping_add(j as u64)))
        .collect::<Result<Vec<_>, _>>()?;
    let threshold = params.phi() - params.eps() / 2.0;
    Ok(ShardedPipeline::from_summaries(
        summaries,
        mix64(seed ^ 0xA1),
        threshold,
    ))
}

/// A key-sharded bank of Algorithm 2 instances ([`OptimalListHh`]); see
/// [`sharded_algo1`] for the advertised-length and threshold conventions.
pub fn sharded_algo2(
    params: HhParams,
    universe: u64,
    m: u64,
    shards: usize,
    seed: u64,
) -> Result<ShardedPipeline<OptimalListHh>, ParamError> {
    let summaries = (0..shards)
        .map(|j| OptimalListHh::new(params, universe, m, mix64(seed).wrapping_add(j as u64)))
        .collect::<Result<Vec<_>, _>>()?;
    let threshold = params.phi() - params.eps() / 2.0;
    Ok(ShardedPipeline::from_summaries(
        summaries,
        mix64(seed ^ 0xA2),
        threshold,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_baselines::{MisraGriesBaseline, SpaceSaving};
    use hh_core::FrequencyEstimator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(m: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream = Vec::with_capacity(m as usize);
        for &(id, frac) in heavy {
            stream.extend(std::iter::repeat_n(id, (frac * m as f64) as usize));
        }
        while stream.len() < m as usize {
            stream.push(1_000_000 + rng.gen_range(0..4096u64));
        }
        use rand::seq::SliceRandom;
        stream.shuffle(&mut rng);
        stream
    }

    #[test]
    fn keys_route_to_exactly_one_shard() {
        let pipe = ShardedPipeline::new(4, 7, 0.0, |_| MisraGriesBaseline::new(0.1, 0.3, 1 << 20));
        for x in 0..10_000u64 {
            let s = pipe.shard_of(x);
            assert!(s < 4);
            assert_eq!(s, pipe.shard_of(x), "routing must be stable");
        }
    }

    #[test]
    fn routing_spreads_keys_roughly_evenly() {
        let pipe = ShardedPipeline::new(4, 3, 0.0, |_| MisraGriesBaseline::new(0.1, 0.3, 1 << 20));
        let mut loads = [0usize; 4];
        for x in 0..40_000u64 {
            loads[pipe.shard_of(x)] += 1;
        }
        for (s, &l) in loads.iter().enumerate() {
            assert!((6_000..14_000).contains(&l), "shard {s} load {l}");
        }
    }

    #[test]
    fn single_shard_pipeline_equals_direct_summary() {
        let stream = planted(50_000, &[(7, 0.4)], 1);
        let mut pipe =
            ShardedPipeline::new(1, 9, 0.0, |_| MisraGriesBaseline::new(0.05, 0.2, 1 << 21));
        for chunk in stream.chunks(4096) {
            pipe.ingest(chunk);
        }
        let mut direct = MisraGriesBaseline::new(0.05, 0.2, 1 << 21);
        direct.insert_all(&stream);
        for probe in [7u64, 1_000_001, 1_002_222] {
            assert_eq!(pipe.summaries()[0].estimate(probe), direct.estimate(probe));
        }
        assert_eq!(pipe.total(), 50_000);
    }

    #[test]
    fn shards_see_complete_per_key_substreams() {
        // Deterministic summaries: a key's count in its shard must be its
        // full stream count (never split), so the exact MG guarantee
        // applies to the shard substream.
        let stream = planted(60_000, &[(7, 0.3), (8, 0.2)], 2);
        let mut pipe = ShardedPipeline::new(4, 11, 0.15, |_| {
            SpaceSaving::with_capacity(64, 0.2, 1 << 21)
        });
        for chunk in stream.chunks(8192) {
            pipe.ingest(chunk);
        }
        for item in [7u64, 8] {
            let shard = pipe.shard_of(item);
            let truth = stream.iter().filter(|&&x| x == item).count() as f64;
            let est = pipe.summaries()[shard].estimate(item);
            // Space-Saving never undercounts and its overshoot is bounded
            // by the SHARD substream length over capacity.
            assert!(est >= truth, "item {item}: {est} < {truth}");
            assert!(est <= truth + 60_000.0 / 64.0, "item {item}: {est}");
            // Other shards know nothing about the key.
            for (j, s) in pipe.summaries().iter().enumerate() {
                if j != shard {
                    assert_eq!(s.estimate(item), 0.0, "key leaked to shard {j}");
                }
            }
        }
    }

    #[test]
    fn union_report_finds_heavy_and_drops_shard_local_noise() {
        let m = 120_000u64;
        let stream = planted(m, &[(7, 0.35), (8, 0.22)], 3);
        for shards in [1usize, 2, 4] {
            let mut pipe = ShardedPipeline::new(shards, 13, 0.15, |_| {
                SpaceSaving::with_capacity(64, 0.2, 1 << 21)
            });
            for chunk in stream.chunks(4096) {
                pipe.ingest(chunk);
            }
            let r = pipe.report();
            assert!(r.contains(7), "{shards} shards: missing 35% item");
            assert!(r.contains(8), "{shards} shards: missing 22% item");
            // Background ids are ~0.03% each: nothing below the global
            // threshold survives the union cut.
            for e in r.entries() {
                assert!(e.count >= 0.15 * m as f64);
                assert!([7, 8].contains(&e.item), "spurious item {}", e.item);
            }
        }
    }

    #[test]
    fn algo2_preset_reports_planted_heavy_hitters() {
        let m = 400_000u64;
        let stream = planted(m, &[(7, 0.30), (8, 0.16)], 4);
        let params = HhParams::with_delta(0.05, 0.1, 0.1).unwrap();
        let mut pipe = sharded_algo2(params, 1 << 40, m, 4, 99).unwrap();
        for chunk in stream.chunks(16 * 1024) {
            pipe.ingest(chunk);
        }
        let r = pipe.report();
        for (item, frac) in [(7u64, 0.30), (8, 0.16)] {
            assert!(r.contains(item), "missing heavy item {item}");
            let est = r.estimate(item).unwrap();
            assert!(
                (est - frac * m as f64).abs() <= 0.05 * m as f64,
                "item {item}: est {est}"
            );
        }
    }

    #[test]
    fn algo1_preset_reports_planted_heavy_hitters() {
        let m = 300_000u64;
        let stream = planted(m, &[(7, 0.30)], 5);
        let params = HhParams::with_delta(0.04, 0.12, 0.1).unwrap();
        let mut pipe = sharded_algo1(params, 1 << 40, m, 2, 17).unwrap();
        for chunk in stream.chunks(16 * 1024) {
            pipe.ingest(chunk);
        }
        assert!(pipe.report().contains(7));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedPipeline::new(0, 1, 0.1, |_| MisraGriesBaseline::new(0.1, 0.3, 16));
    }
}
